//! D6 clean fixture: library output goes through a log the caller owns.

pub fn report(cost: f64, log: &mut Vec<String>) {
    log.push(format!("cost = {cost}"));
}

//! D8 clean fixture: guards die before the risky call, and `Vec::append`
//! under a guard is not a WAL append.

pub fn flush(&self) {
    let pending = { self.state.plock().take_pending() };
    self.durable.append(pending);
}

pub fn survive(m: &std::sync::Mutex<u32>) {
    {
        let g = m.plock();
        touch(&g);
    }
    let r = std::panic::catch_unwind(|| step());
    use_it(r);
}

pub fn collect(m: &std::sync::Mutex<Vec<u32>>, out: &mut Vec<u32>) {
    let mut g = m.plock();
    out.append(&mut g);
}

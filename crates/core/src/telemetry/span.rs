//! Per-trial spans on the virtual clock, exportable as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` and Perfetto).

use super::{OptEvent, Subscriber};
use crate::executor::{TrialEvent, TrialOutcome};
use crate::TrialStatus;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One phase of a trial's lifetime, in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanSegment {
    /// Between suggestion and execution start (slot/barrier wait).
    Queued {
        /// Segment bounds, virtual seconds.
        begin_s: f64,
        /// End of the wait.
        end_s: f64,
    },
    /// One measurement attempt running on the target.
    Attempt {
        /// Attempt index (0 = first try).
        attempt: u32,
        /// Attempt start, virtual seconds.
        begin_s: f64,
        /// Attempt end.
        end_s: f64,
    },
    /// Retry backoff between two attempts; `end_s` is the backoff
    /// deadline at which the next attempt starts.
    Backoff {
        /// The attempt the backoff precedes (1 = first retry).
        attempt: u32,
        /// Backoff start, virtual seconds.
        begin_s: f64,
        /// Backoff deadline.
        end_s: f64,
    },
    /// Between the trial's virtual finish and the moment the source
    /// observed it (batch barriers delay observation).
    ObserveWait {
        /// Finish time, virtual seconds.
        begin_s: f64,
        /// Observation time.
        end_s: f64,
    },
}

impl SpanSegment {
    fn bounds(&self) -> (f64, f64) {
        match *self {
            SpanSegment::Queued { begin_s, end_s }
            | SpanSegment::Attempt { begin_s, end_s, .. }
            | SpanSegment::Backoff { begin_s, end_s, .. }
            | SpanSegment::ObserveWait { begin_s, end_s } => (begin_s, end_s),
        }
    }

    fn trace_name(&self) -> String {
        match self {
            SpanSegment::Queued { .. } => "queued".into(),
            SpanSegment::Attempt { attempt, .. } => format!("run a{attempt}"),
            SpanSegment::Backoff { attempt, .. } => format!("backoff→a{attempt}"),
            SpanSegment::ObserveWait { .. } => "await observe".into(),
        }
    }

    fn trace_cat(&self) -> &'static str {
        match self {
            SpanSegment::Queued { .. } => "queue",
            SpanSegment::Attempt { .. } => "run",
            SpanSegment::Backoff { .. } => "retry",
            SpanSegment::ObserveWait { .. } => "observe",
        }
    }
}

/// A finalized trial span: suggest → queued → running attempts (with
/// retry backoffs) → observed, all on the virtual clock.
#[derive(Debug, Clone)]
pub struct TrialSpan {
    /// Trial id.
    pub id: u64,
    /// Rendered configuration.
    pub label: String,
    /// Virtual time the source proposed the configuration.
    pub suggested_at: f64,
    /// Virtual time the first attempt started.
    pub started_at: f64,
    /// Virtual time the trial's charged duration ended.
    pub finished_at: f64,
    /// Virtual time the source observed the outcome.
    pub observed_at: f64,
    /// Machine of the final attempt, if a fleet is attached.
    pub machine_id: Option<usize>,
    /// Ordered lifecycle segments.
    pub segments: Vec<SpanSegment>,
    /// Final status.
    pub status: TrialStatus,
    /// Recorded cost.
    pub cost: f64,
    /// Retry attempts consumed.
    pub retries: u32,
}

impl TrialSpan {
    /// Checks the span's internal consistency: bounds ordered, segments
    /// contiguous and non-overlapping, attempts/backoffs alternating, and
    /// the observation never preceding the finish.
    pub fn validate(&self) -> Result<(), String> {
        let err = |msg: String| Err(format!("trial {}: {msg}", self.id));
        if self.suggested_at > self.started_at + 1e-9 {
            return err(format!(
                "suggested at {} after start {}",
                self.suggested_at, self.started_at
            ));
        }
        if self.finished_at > self.observed_at + 1e-9 {
            return err(format!(
                "finished {} after observed {}",
                self.finished_at, self.observed_at
            ));
        }
        if self.segments.is_empty() {
            return err("no segments".into());
        }
        let mut cursor = self.suggested_at;
        for seg in &self.segments {
            let (b, e) = seg.bounds();
            if b > e + 1e-9 {
                return err(format!("segment {seg:?} ends before it begins"));
            }
            if b + 1e-9 < cursor {
                return err(format!(
                    "segment {seg:?} overlaps previous (cursor {cursor})"
                ));
            }
            cursor = e;
        }
        let n_attempts = self
            .segments
            .iter()
            .filter(|s| matches!(s, SpanSegment::Attempt { .. }))
            .count();
        if n_attempts != self.retries as usize + 1 {
            return err(format!(
                "{} attempt segments vs {} retries",
                n_attempts, self.retries
            ));
        }
        Ok(())
    }
}

/// A fleet lifecycle marker (quarantine entry / probation release).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineMark {
    /// Virtual time of the transition.
    pub at_s: f64,
    /// The machine.
    pub machine_id: usize,
    /// True for quarantine entry, false for probation release.
    pub quarantined: bool,
}

/// In-flight bookkeeping for one trial.
#[derive(Debug, Clone)]
struct OpenSpan {
    label: String,
    suggested_at: f64,
    started_at: f64,
    machine_id: Option<usize>,
    attempt_start: f64,
    segments: Vec<SpanSegment>,
}

/// A [`Subscriber`] reconstructing per-trial spans from the event stream
/// and exporting them as Chrome `trace_event` JSON.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    open: BTreeMap<u64, OpenSpan>,
    spans: Vec<TrialSpan>,
    marks: Vec<MachineMark>,
    /// Opt-phase begin/end pairing check: open suggest/observe ids.
    open_phases: Vec<(u64, bool)>,
    /// Begin/end pairs that never matched (should stay 0).
    unbalanced: usize,
    end_s: f64,
}

impl SpanRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Finalized spans, in completion order.
    pub fn spans(&self) -> &[TrialSpan] {
        &self.spans
    }

    /// Fleet quarantine/release markers, in emission order.
    pub fn machine_marks(&self) -> &[MachineMark] {
        &self.marks
    }

    /// Optimizer-side begin events that never saw their end (plus ends
    /// without a begin). Non-zero means the executor mis-paired events.
    pub fn unbalanced_opt_events(&self) -> usize {
        self.unbalanced + self.open_phases.len()
    }

    /// Validates every finalized span; `Ok` when all are well-formed.
    pub fn validate_all(&self) -> Result<(), String> {
        for s in &self.spans {
            s.validate()?;
        }
        if self.unbalanced_opt_events() != 0 {
            return Err(format!(
                "{} unbalanced optimizer begin/end events",
                self.unbalanced_opt_events()
            ));
        }
        Ok(())
    }

    /// Exports the recorded campaign as Chrome `trace_event` JSON: open
    /// the string (saved as a `.json` file) directly in `chrome://tracing`
    /// or <https://ui.perfetto.dev>. Virtual seconds map to trace
    /// microseconds, trials are packed onto the smallest set of
    /// non-overlapping lanes, and fleet quarantine/release transitions
    /// appear as instant events on a second process.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let us = |s: f64| (s * 1e6).max(0.0);

        // Greedy interval packing: lane i is free once its last span ends.
        let mut order: Vec<&TrialSpan> = self.spans.iter().collect();
        order.sort_by(|a, b| {
            a.suggested_at
                .total_cmp(&b.suggested_at)
                .then_with(|| a.id.cmp(&b.id))
        });
        let mut lane_free: Vec<f64> = Vec::new();
        events.push(meta_name(
            "process_name",
            1,
            None,
            "campaign (virtual time)",
        ));
        events.push(meta_name("process_name", 2, None, "fleet"));
        for span in order {
            let lane = lane_free
                .iter()
                .position(|f| *f <= span.suggested_at + 1e-9)
                .unwrap_or_else(|| {
                    lane_free.push(0.0);
                    events.push(meta_name(
                        "thread_name",
                        1,
                        Some(lane_free.len() - 1),
                        &format!("lane {}", lane_free.len() - 1),
                    ));
                    lane_free.len() - 1
                });
            lane_free[lane] = span.observed_at;
            let machine = span
                .machine_id
                .map_or("null".to_string(), |m| m.to_string());
            let args = format!(
                "{{\"cost\":{},\"status\":\"{:?}\",\"machine\":{},\"retries\":{},\"config\":\"{}\"}}",
                json_f64(span.cost),
                span.status,
                machine,
                span.retries,
                escape(&span.label),
            );
            events.push(format!(
                "{{\"name\":\"trial {}\",\"cat\":\"trial\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{}}}",
                span.id,
                json_f64(us(span.suggested_at)),
                json_f64(us(span.observed_at) - us(span.suggested_at)),
                lane,
                args,
            ));
            for seg in &span.segments {
                let (b, e) = seg.bounds();
                if e - b <= 0.0 && !matches!(seg, SpanSegment::Attempt { .. }) {
                    continue; // zero-width waits add nothing but clutter
                }
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{}}}",
                    escape(&seg.trace_name()),
                    seg.trace_cat(),
                    json_f64(us(b)),
                    json_f64(us(e) - us(b)),
                    lane,
                ));
            }
        }
        for mark in &self.marks {
            events.push(meta_name(
                "thread_name",
                2,
                Some(mark.machine_id),
                &format!("machine {}", mark.machine_id),
            ));
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"fleet\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\
                 \"pid\":2,\"tid\":{}}}",
                if mark.quarantined {
                    "quarantined"
                } else {
                    "released (probation)"
                },
                json_f64(us(mark.at_s)),
                mark.machine_id,
            ));
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// A Chrome-trace metadata event naming a process or thread.
fn meta_name(kind: &str, pid: usize, tid: Option<usize>, name: &str) -> String {
    let mut s = format!("{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid}");
    if let Some(t) = tid {
        let _ = write!(s, ",\"tid\":{t}");
    }
    let _ = write!(s, ",\"args\":{{\"name\":\"{}\"}}}}", escape(name));
    s
}

/// JSON-safe float rendering (`NaN`/`inf` are not JSON numbers).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Subscriber for SpanRecorder {
    fn name(&self) -> &str {
        "spans"
    }

    fn on_trial_event(&mut self, at_s: f64, event: &TrialEvent) {
        self.end_s = self.end_s.max(at_s);
        match event {
            TrialEvent::Suggested { id, config } => {
                self.open.insert(
                    *id,
                    OpenSpan {
                        label: config.render(),
                        suggested_at: at_s,
                        started_at: at_s,
                        machine_id: None,
                        attempt_start: at_s,
                        segments: Vec::new(),
                    },
                );
            }
            TrialEvent::Started {
                id,
                at_s: start,
                machine_id,
            } => {
                if let Some(open) = self.open.get_mut(id) {
                    open.started_at = *start;
                    open.machine_id = *machine_id;
                    open.attempt_start = *start;
                    if *start > open.suggested_at {
                        open.segments.push(SpanSegment::Queued {
                            begin_s: open.suggested_at,
                            end_s: *start,
                        });
                    }
                }
            }
            TrialEvent::Retried {
                id,
                attempt,
                backoff_s,
                at_s: resume,
            } => {
                if let Some(open) = self.open.get_mut(id) {
                    let failed_end = resume - backoff_s;
                    open.segments.push(SpanSegment::Attempt {
                        attempt: attempt - 1,
                        begin_s: open.attempt_start,
                        end_s: failed_end,
                    });
                    open.segments.push(SpanSegment::Backoff {
                        attempt: *attempt,
                        begin_s: failed_end,
                        end_s: *resume,
                    });
                    open.attempt_start = *resume;
                }
            }
            TrialEvent::Quarantined { machine_id } => self.marks.push(MachineMark {
                at_s,
                machine_id: *machine_id,
                quarantined: true,
            }),
            TrialEvent::Released { machine_id } => self.marks.push(MachineMark {
                at_s,
                machine_id: *machine_id,
                quarantined: false,
            }),
            _ => {}
        }
    }

    fn on_opt_event(&mut self, _at_s: f64, event: &OptEvent) {
        match event {
            OptEvent::SuggestBegin { id } => self.open_phases.push((*id, true)),
            OptEvent::ObserveBegin { id } => self.open_phases.push((*id, false)),
            OptEvent::SuggestEnd { id, .. } => {
                match self.open_phases.pop() {
                    Some((open_id, true)) if open_id == *id => {}
                    _ => self.unbalanced += 1,
                };
            }
            OptEvent::ObserveEnd { id, .. } => {
                match self.open_phases.pop() {
                    Some((open_id, false)) if open_id == *id => {}
                    _ => self.unbalanced += 1,
                };
            }
            OptEvent::SurrogateRefit { .. } | OptEvent::ModelUpdate { .. } => {}
        }
    }

    fn on_outcome(&mut self, at_s: f64, outcome: &TrialOutcome) {
        self.end_s = self.end_s.max(at_s);
        let Some(mut open) = self.open.remove(&outcome.id) else {
            return;
        };
        let finished = open.started_at + outcome.elapsed_s;
        open.segments.push(SpanSegment::Attempt {
            attempt: outcome.retries,
            begin_s: open.attempt_start,
            end_s: finished,
        });
        if at_s > finished + 1e-12 {
            open.segments.push(SpanSegment::ObserveWait {
                begin_s: finished,
                end_s: at_s,
            });
        }
        self.spans.push(TrialSpan {
            id: outcome.id,
            label: open.label,
            suggested_at: open.suggested_at,
            started_at: open.started_at,
            finished_at: finished,
            observed_at: at_s,
            machine_id: outcome.machine_id.or(open.machine_id),
            segments: open.segments,
            status: outcome.status,
            cost: outcome.cost,
            retries: outcome.retries,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn json_f64_rejects_nonfinite() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn validate_flags_overlapping_segments() {
        let span = TrialSpan {
            id: 0,
            label: String::new(),
            suggested_at: 0.0,
            started_at: 0.0,
            finished_at: 2.0,
            observed_at: 2.0,
            machine_id: None,
            segments: vec![
                SpanSegment::Attempt {
                    attempt: 0,
                    begin_s: 0.0,
                    end_s: 1.5,
                },
                SpanSegment::Attempt {
                    attempt: 1,
                    begin_s: 1.0,
                    end_s: 2.0,
                },
            ],
            status: TrialStatus::Complete,
            cost: 1.0,
            retries: 1,
        };
        assert!(span.validate().is_err());
    }
}

//! The invariant diagnostics, matched over the token stream and the
//! statement-flow pass.
//!
//! | code | invariant | exempt |
//! |------|-----------|--------|
//! | D1 | no wall-clock reads (`Instant::now`, `SystemTime::now`) — time enters through an injected `WallTimer` | bench, tests |
//! | D2 | no `HashMap`/`HashSet` — hash iteration order leaks into RNG-consuming paths; use `BTreeMap`/`BTreeSet` | bench, tests |
//! | D3 | no unseeded randomness (`thread_rng`, `from_entropy`, `rand::random`, `OsRng`) | bench, tests |
//! | D4 | no NaN-panicking float comparisons (`partial_cmp(..).unwrap()/expect()/unwrap_or(..)`) — use `total_cmp` | tests |
//! | D5 | no `.unwrap()`/`.expect()`/`panic!`-family in library paths — return `Result` or allow with a reason | bench, tests |
//! | D6 | no `println!`/`eprintln!`/`dbg!` in library crates — route through telemetry | bench, tests |
//! | D7 | consistent lock order — nested acquisitions feed a cross-crate graph that must stay acyclic; re-acquiring a held lock is flagged at the site | bench, tests |
//! | D8 | no lock guard held across `catch_unwind`, `par_map*`, or WAL `append`/`append_aux` | bench, tests |
//! | D9 | no `Ordering::Relaxed` on non-counter atomics (`fetch_add`/`fetch_sub` are counters) without a happens-before argument | bench, tests |
//! | D10 | in `crates/serve`, every durable-state ack (`Response::{Registered,Stopped,CacheHit,CacheMiss}`) must be dominated by a durable append/journal call | library, bench, tests |
//! | D11 | no non-associative float reductions (`.sum()`, captured `+=`) inside `par_map*` closures — use the ordered-reduction helpers | bench, tests |
//! | D12 | no poison-panicking `.lock()/.read()/.write()` adapters in library paths — go through `autotune::sync::PoisonFree` | bench, tests |
//!
//! Each rule reports at the line of its anchor token and honours the
//! `// lint: allow(Dx) <reason>` escape hatch on that exact line. D7's
//! graph half is special: an allow on a nested-acquisition line drops
//! that *edge* from the global graph (see [`crate::graph`]).

use crate::allow::Allows;
use crate::flow::{self, EventKind, LockMode};
use crate::graph::LockEdge;
use crate::lexer::{Tok, TokKind};
use crate::report::Violation;

/// How a crate is classified for exemption purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// A library crate that feeds deterministic campaigns; all rules on
    /// except the serve-only D10.
    Library,
    /// `crates/serve`: everything a library gets, plus the D10
    /// append-before-ack protocol check.
    Serve,
    /// The bench/experiment crate: wall-clock, randomness, panics and
    /// stdout are its job. Only D4 (NaN-safe comparisons) applies.
    Bench,
}

/// Static description of one diagnostic.
struct Rule {
    code: &'static str,
    applies_to_bench: bool,
}

const RULES: [Rule; 12] = [
    Rule {
        code: "D1",
        applies_to_bench: false,
    },
    Rule {
        code: "D2",
        applies_to_bench: false,
    },
    Rule {
        code: "D3",
        applies_to_bench: false,
    },
    Rule {
        code: "D4",
        applies_to_bench: true,
    },
    Rule {
        code: "D5",
        applies_to_bench: false,
    },
    Rule {
        code: "D6",
        applies_to_bench: false,
    },
    Rule {
        code: "D7",
        applies_to_bench: false,
    },
    Rule {
        code: "D8",
        applies_to_bench: false,
    },
    Rule {
        code: "D9",
        applies_to_bench: false,
    },
    Rule {
        code: "D10",
        applies_to_bench: false,
    },
    Rule {
        code: "D11",
        applies_to_bench: false,
    },
    Rule {
        code: "D12",
        applies_to_bench: false,
    },
];

/// Durable-state acks: the server must not send these before the
/// corresponding WAL append. Read-only and terminal responses
/// (`Stepped`, `Snapshot`, `Stats`, `Fleet`, `Error`, `Overloaded`,
/// `Bye`) carry no new durable state.
const ACK_VARIANTS: [&str; 4] = ["Registered", "Stopped", "CacheHit", "CacheMiss"];

/// Receivers that make a bare `append(..)` a WAL call rather than
/// `Vec::append`.
const WAL_RECEIVERS: [&str; 4] = ["durable", "wal", "journal", "log"];

/// Violation sink: routes findings through the allow table.
struct Sink<'a> {
    file: &'a str,
    allows: &'a mut Allows,
    violations: Vec<Violation>,
    allowed: Vec<(&'static str, u32)>,
}

impl Sink<'_> {
    fn emit(&mut self, code: &'static str, line: u32, message: String) {
        if self.permits(code, line) {
            return;
        }
        self.violations.push(Violation {
            file: self.file.to_string(),
            line,
            code,
            message,
        });
    }

    /// True (recording the use) when `code` is allowed on `line`.
    fn permits(&mut self, code: &'static str, line: u32) -> bool {
        if self.allows.permits(code, line) {
            self.allowed.push((code, line));
            return true;
        }
        false
    }
}

/// Runs every applicable rule over a lexed file.
///
/// `mask[i]` is the in-test flag for `toks[i]` (see [`crate::scope`]);
/// `allows` records which findings were suppressed. The third return is
/// the file's contribution to the global lock-order graph (D7 edges not
/// suppressed by an allow).
pub fn check(
    file: &str,
    kind: CrateKind,
    toks: &[Tok],
    mask: &[bool],
    allows: &mut Allows,
) -> (Vec<Violation>, Vec<(&'static str, u32)>, Vec<LockEdge>) {
    // Dense index of non-comment tokens for sequence matching.
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut sink = Sink {
        file,
        allows,
        violations: Vec::new(),
        allowed: Vec::new(),
    };

    for (si, &ti) in sig.iter().enumerate() {
        if mask[ti] {
            continue; // test code is exempt from every rule
        }
        let t = &toks[ti];
        let enabled = |code: &str| match kind {
            CrateKind::Bench => RULES.iter().any(|r| r.code == code && r.applies_to_bench),
            CrateKind::Serve => true,
            CrateKind::Library => code != "D10",
        };

        // D1: wall-clock reads.
        if enabled("D1")
            && (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && seq_is(toks, &sig, si + 1, &[":", ":", "now"])
        {
            sink.emit(
                "D1",
                t.line,
                format!(
                    "wall-clock read `{}::now()` — inject a WallTimer (core::telemetry) instead",
                    t.text
                ),
            );
        }

        // D2: hash-ordered containers.
        if enabled("D2") && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            sink.emit(
                "D2",
                t.line,
                format!(
                    "`{}` in a deterministic crate — hash iteration order leaks into \
                     RNG-consuming paths; use BTreeMap/BTreeSet or a sorted drain",
                    t.text
                ),
            );
        }

        // D3: unseeded randomness.
        if enabled("D3") {
            if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("OsRng") {
                sink.emit(
                    "D3",
                    t.line,
                    format!(
                        "unseeded randomness `{}` — derive every stream from the campaign seed",
                        t.text
                    ),
                );
            } else if t.is_ident("rand") && seq_is(toks, &sig, si + 1, &[":", ":", "random"]) {
                sink.emit(
                    "D3",
                    t.line,
                    "unseeded randomness `rand::random` — derive every stream from the campaign \
                     seed"
                        .to_string(),
                );
            }
        }

        // D4: NaN-panicking (or NaN-inconsistent) float comparisons.
        if enabled("D4") && t.is_ident("partial_cmp") {
            if let Some(method) = panicky_suffix(toks, &sig, si) {
                sink.emit(
                    "D4",
                    t.line,
                    format!(
                        "`partial_cmp(..).{method}(..)` is NaN-unsafe — use `f64::total_cmp` \
                         (or filter non-finite values first)"
                    ),
                );
            }
        }

        // D5: panicking calls in library paths. Sites already owned by a
        // more specific diagnostic stay quiet: D4 owns
        // `partial_cmp(..).unwrap()`, D12 owns `.lock().unwrap()`.
        if enabled("D5") {
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && si > 0
                && toks[sig[si - 1]].is_punct('.')
                && seq_is(toks, &sig, si + 1, &["("])
                && !follows_partial_cmp(toks, &sig, si)
                && !follows_lock_acquire(toks, &sig, si)
            {
                sink.emit(
                    "D5",
                    t.line,
                    format!(
                        "`.{}()` in a library code path — return a Result, or allow with a \
                         proven-infallible reason",
                        t.text
                    ),
                );
            }
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && seq_is(toks, &sig, si + 1, &["!"])
            {
                sink.emit(
                    "D5",
                    t.line,
                    format!(
                        "`{}!` in a library code path — return a Result, or allow with a \
                         proven-infallible reason",
                        t.text
                    ),
                );
            }
        }

        // D6: stdout/stderr writes from library crates.
        if enabled("D6")
            && t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
            && seq_is(toks, &sig, si + 1, &["!"])
        {
            sink.emit(
                "D6",
                t.line,
                format!(
                    "`{}!` in a library crate — route output through telemetry",
                    t.text
                ),
            );
        }
    }

    // Pass 2: the statement-flow rules (D7–D12) over per-function
    // acquisitions and events.
    let mut edges: Vec<LockEdge> = Vec::new();
    if kind != CrateKind::Bench {
        let flows = flow::analyze(toks, &sig, mask);
        for f in &flows {
            // D7, local half: overlapping acquisitions. Same lock while
            // held is an immediate self-deadlock finding; distinct locks
            // become an order edge for the global graph.
            for (i, a) in f.acquires.iter().enumerate() {
                for b in f.acquires.iter().skip(i + 1) {
                    if b.di >= a.release {
                        continue;
                    }
                    if a.lock == b.lock && a.lock != "?" {
                        if a.mode == LockMode::Read && b.mode == LockMode::Read {
                            // Shared re-entry: still an edge-free hazard
                            // under writer-priority, but the repo's
                            // RwLocks are std (no priority policy); the
                            // graph stays quiet here.
                            continue;
                        }
                        sink.emit(
                            "D7",
                            b.line,
                            format!(
                                "lock `{}` (held since line {}) re-acquired in `{}` — \
                                 self-deadlock; drop the first guard before re-locking",
                                a.lock, a.line, f.name
                            ),
                        );
                    } else if a.lock != "?" && b.lock != "?" {
                        if sink.permits("D7", b.line) {
                            continue;
                        }
                        edges.push(LockEdge {
                            from: a.lock.clone(),
                            to: b.lock.clone(),
                            file: file.to_string(),
                            line: b.line,
                            func: f.name.clone(),
                        });
                    }
                }
            }
            // D8: risky calls under a live guard.
            for a in &f.acquires {
                for e in &f.events {
                    if e.di <= a.di || e.di >= a.release {
                        continue;
                    }
                    if let EventKind::Risky { callee, receiver } = &e.kind {
                        if callee == "append"
                            && !receiver
                                .as_deref()
                                .is_some_and(|r| WAL_RECEIVERS.contains(&r))
                        {
                            continue; // Vec::append etc., not the WAL
                        }
                        sink.emit(
                            "D8",
                            e.line,
                            format!(
                                "`{}` called while the guard on `{}` (line {}) is held in `{}` — \
                                 a panic or slow append poisons/blocks the lock; drop the guard \
                                 first",
                                callee, a.lock, a.line, f.name
                            ),
                        );
                    }
                }
            }
            for e in &f.events {
                match &e.kind {
                    // D9: Relaxed on non-counter atomics.
                    EventKind::RelaxedAtomic { method } => {
                        sink.emit(
                            "D9",
                            e.line,
                            format!(
                                "`{method}(Ordering::Relaxed)` on a non-counter atomic in `{}` — \
                                 upgrade to Acquire/Release or allow with a written \
                                 happens-before argument",
                                f.name
                            ),
                        );
                    }
                    // D11: non-associative reductions in par_map closures.
                    EventKind::Reduction { what } => {
                        sink.emit(
                            "D11",
                            e.line,
                            format!(
                                "non-associative float reduction ({what}) inside a `par_map*` \
                                 closure in `{}` — use the ordered helpers \
                                 (autotune_linalg::par::ordered_sum/ordered_mean)",
                                f.name
                            ),
                        );
                    }
                    // D12: poison-panicking lock adapters.
                    EventKind::PoisonUnwrap { method, lock } => {
                        sink.emit(
                            "D12",
                            e.line,
                            format!(
                                "`.{lock}().{method}(..)` panics (or hand-recovers) on poisoning \
                                 in `{}` — go through autotune::sync::PoisonFree \
                                 (`.p{lock}()`)",
                                f.name
                            ),
                        );
                    }
                    // D10: durable-state acks must follow a durable call.
                    EventKind::Ack { variant, end } if kind == CrateKind::Serve => {
                        if !ACK_VARIANTS.contains(&variant.as_str()) {
                            continue;
                        }
                        // A durable call anywhere before the construction
                        // closes dominates it — field expressions run
                        // before the Response value exists.
                        let dominated = f
                            .events
                            .iter()
                            .any(|d| matches!(d.kind, EventKind::Durable { .. }) && d.di < *end);
                        if !dominated {
                            sink.emit(
                                "D10",
                                e.line,
                                format!(
                                    "`Response::{variant}` built in `{}` with no durable \
                                     append/journal call before it — the ack must not outrun \
                                     the WAL (append-before-ack)",
                                    f.name
                                ),
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    let Sink {
        mut violations,
        allowed,
        ..
    } = sink;

    // Allow hygiene: malformed allows and allows that suppressed nothing
    // are violations themselves, so suppressions cannot rot in place.
    for m in &allows.malformed {
        violations.push(Violation {
            file: file.to_string(),
            line: m.line,
            code: "A1",
            message: format!("malformed lint allow: {}", m.problem),
        });
    }
    for (a, dead) in allows.unused() {
        violations.push(Violation {
            file: file.to_string(),
            line: a.line,
            code: "A2",
            message: format!(
                "unused lint allow({}) — the diagnostic no longer fires on this line",
                dead.join(", ")
            ),
        });
    }
    violations.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    violations.dedup_by(|a, b| a.line == b.line && a.code == b.code && a.message == b.message);
    (violations, allowed, edges)
}

/// True when the non-comment tokens starting at dense index `si` spell the
/// given texts (idents or single-char puncts).
fn seq_is(toks: &[Tok], sig: &[usize], si: usize, texts: &[&str]) -> bool {
    texts.iter().enumerate().all(|(k, want)| {
        sig.get(si + k).is_some_and(|&ti| {
            let t = &toks[ti];
            match t.kind {
                TokKind::Ident | TokKind::Punct => t.text == *want,
                _ => false,
            }
        })
    })
}

/// If `partial_cmp` at dense index `si` is followed by its argument list
/// and then `.unwrap/.expect/.unwrap_or/.unwrap_or_else`, returns that
/// method name.
fn panicky_suffix(toks: &[Tok], sig: &[usize], si: usize) -> Option<&'static str> {
    let mut j = si + 1;
    if !sig.get(j).is_some_and(|&ti| toks[ti].is_punct('(')) {
        return None;
    }
    let mut depth = 0usize;
    while let Some(&ti) = sig.get(j) {
        if toks[ti].is_punct('(') {
            depth += 1;
        } else if toks[ti].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    if !sig.get(j).is_some_and(|&ti| toks[ti].is_punct('.')) {
        return None;
    }
    let ti = *sig.get(j + 1)?;
    for m in ["unwrap_or_else", "unwrap_or", "unwrap", "expect"] {
        if toks[ti].is_ident(m) {
            return Some(match m {
                "unwrap_or_else" => "unwrap_or_else",
                "unwrap_or" => "unwrap_or",
                "unwrap" => "unwrap",
                _ => "expect",
            });
        }
    }
    None
}

/// Walks back from the `.unwrap`/`.expect` at dense index `si` to the
/// call whose result it adapts; returns the callee identifier's dense
/// index (the ident before the matching `(`), if the shape is
/// `ident(..).unwrap()`.
fn adapted_callee(toks: &[Tok], sig: &[usize], si: usize) -> Option<usize> {
    if si < 2 {
        return None;
    }
    let mut j = si - 2;
    if !toks[sig[j]].is_punct(')') {
        return None;
    }
    let mut depth = 0usize;
    loop {
        let t = &toks[sig[j]];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    j.checked_sub(1)
}

/// True when the `.unwrap`/`.expect` at dense index `si` terminates a
/// `partial_cmp(..)` chain — that site is already reported as D4 (the fix
/// is `total_cmp`, not a Result), so D5 stays quiet to avoid demanding two
/// allows for one defect.
fn follows_partial_cmp(toks: &[Tok], sig: &[usize], si: usize) -> bool {
    adapted_callee(toks, sig, si).is_some_and(|j| toks[sig[j]].is_ident("partial_cmp"))
}

/// True when the `.unwrap`/`.expect` at dense index `si` adapts an
/// empty-argument `.lock()/.read()/.write()` call — that site is already
/// reported as D12 (the fix is `PoisonFree`, not a Result), so D5 stays
/// quiet.
fn follows_lock_acquire(toks: &[Tok], sig: &[usize], si: usize) -> bool {
    let Some(j) = adapted_callee(toks, sig, si) else {
        return false;
    };
    let t = &toks[sig[j]];
    let is_lock = t.is_ident("lock") || t.is_ident("read") || t.is_ident("write");
    // Empty args: callee at j, `(` at j+1, `)` at j+2 == si-2, `.` at
    // j+3, adapter at j+4 == si.
    is_lock && j + 4 == si
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allow, lexer, scope};

    fn run(kind: CrateKind, src: &str) -> Vec<String> {
        let toks = lexer::lex(src);
        let mask = scope::test_mask(&toks);
        let mut allows = allow::collect(&toks);
        let (violations, _, _) = check("f.rs", kind, &toks, &mask, &mut allows);
        violations.into_iter().map(|v| format!("{v}")).collect()
    }

    fn codes(kind: CrateKind, src: &str) -> Vec<String> {
        run(kind, src)
            .iter()
            .map(|l| l.split(": ").nth(1).expect("code field").to_string())
            .collect()
    }

    fn edges_of(kind: CrateKind, src: &str) -> Vec<(String, String)> {
        let toks = lexer::lex(src);
        let mask = scope::test_mask(&toks);
        let mut allows = allow::collect(&toks);
        let (_, _, edges) = check("f.rs", kind, &toks, &mask, &mut allows);
        edges.into_iter().map(|e| (e.from, e.to)).collect()
    }

    #[test]
    fn d1_fires_outside_tests_only() {
        let src = "fn f() { let t = Instant::now(); }\n#[cfg(test)]\nmod tests { fn g() { let t = Instant::now(); } }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D1"]);
    }

    #[test]
    fn d4_applies_to_bench_but_d5_does_not() {
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); ys.last().unwrap(); }";
        assert_eq!(codes(CrateKind::Bench, src), vec!["D4"]);
        assert_eq!(codes(CrateKind::Library, src), vec!["D4", "D5"]);
    }

    #[test]
    fn d4_subsumes_the_trailing_unwrap() {
        // One defect, one diagnostic: the unwrap that terminates a
        // partial_cmp chain is not double-reported as D5.
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\")); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D4"]);
    }

    #[test]
    fn d4_catches_unwrap_or_equal() {
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D4"]);
    }

    #[test]
    fn allow_suppresses_only_its_line() {
        let src = "fn f() {\n a.unwrap(); // lint: allow(D5) proven nonempty\n b.unwrap();\n}";
        let out = run(CrateKind::Library, src);
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("f.rs:3: D5"), "{out:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "fn f() { x(); } // lint: allow(D5) nothing here\n";
        assert_eq!(codes(CrateKind::Library, src), vec!["A2"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src =
            "fn f() { let s = \"Instant::now() .unwrap() panic!\"; }\n// Instant::now() in prose\n";
        assert!(run(CrateKind::Library, src).is_empty());
    }

    #[test]
    fn d2_d3_d6_basics() {
        let src =
            "use std::collections::HashMap;\nfn f() { let r = thread_rng(); println!(\"x\"); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D2", "D3", "D6"]);
        assert!(run(CrateKind::Bench, src).is_empty());
    }

    #[test]
    fn d7_same_lock_reacquired() {
        let src = "fn f() { let g = m.plock(); let h = m.plock(); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D7"]);
    }

    #[test]
    fn d7_read_read_overlap_is_quiet() {
        let src = "fn f() { let g = m.pread(); let h = m.pread(); }";
        assert!(run(CrateKind::Library, src).is_empty());
    }

    #[test]
    fn d7_nested_distinct_locks_make_an_edge_not_a_violation() {
        let src = "fn f() { let g = a.plock(); let h = b.plock(); }";
        assert!(run(CrateKind::Library, src).is_empty());
        assert_eq!(
            edges_of(CrateKind::Library, src),
            vec![("a".to_string(), "b".to_string())]
        );
    }

    #[test]
    fn d7_released_guard_makes_no_edge() {
        let src = "fn f() { { let g = a.plock(); } let h = b.plock(); }";
        assert!(edges_of(CrateKind::Library, src).is_empty());
        let src2 = "fn f() { let g = a.plock(); drop(g); let h = b.plock(); }";
        assert!(edges_of(CrateKind::Library, src2).is_empty());
    }

    #[test]
    fn d7_allow_drops_the_edge_and_counts_used() {
        let src = "fn f() { let g = a.plock();\n let h = b.plock(); // lint: allow(D7) a before b is the blessed order here\n }";
        assert!(edges_of(CrateKind::Library, src).is_empty());
        // No A2: the allow was consumed by the edge.
        assert!(run(CrateKind::Library, src).is_empty());
    }

    #[test]
    fn d8_guard_across_catch_unwind() {
        let src = "fn f() { let g = m.plock(); let r = catch_unwind(|| work()); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D8"]);
        let ok = "fn f() { { let g = m.plock(); } let r = catch_unwind(|| work()); }";
        assert!(run(CrateKind::Library, ok).is_empty());
    }

    #[test]
    fn d8_vec_append_is_not_wal_append() {
        let src = "fn f() { let g = m.plock(); out.append(&mut xs); }";
        assert!(run(CrateKind::Library, src).is_empty());
        let bad = "fn f() { let g = m.plock(); self.durable.append(rec)?; }";
        assert_eq!(codes(CrateKind::Library, bad), vec!["D8"]);
    }

    #[test]
    fn d9_relaxed_store_flagged_counter_exempt() {
        let src =
            "fn f() { hits.fetch_add(1, Ordering::Relaxed); heat.store(t, Ordering::Relaxed); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D9"]);
        let allowed = "fn f() { heat.store(t, Ordering::Relaxed); // lint: allow(D9) heat is advisory; eviction re-reads under the shard write lock\n }";
        assert!(run(CrateKind::Library, allowed).is_empty());
    }

    #[test]
    fn d10_only_in_serve_and_wants_domination() {
        let bad = "fn f() -> Response { Response::Registered { id: 7 } }";
        assert_eq!(codes(CrateKind::Serve, bad), vec!["D10"]);
        assert!(run(CrateKind::Library, bad).is_empty());
        let ok = "fn f() -> R { self.durable.append_aux(op)?; Ok(Response::Registered { id: 7 }) }";
        assert!(run(CrateKind::Serve, ok).is_empty());
        let field_expr =
            "fn f() -> R { Ok(Response::Registered { id: self.admit_spec(&spec, rid)? }) }";
        assert!(run(CrateKind::Serve, field_expr).is_empty());
    }

    #[test]
    fn d10_patterns_are_not_acks() {
        let src =
            "fn f(r: Response) { match r { Response::Registered { id } => go(id), _ => {} } }";
        assert!(run(CrateKind::Serve, src).is_empty());
    }

    #[test]
    fn d11_captured_accumulator() {
        let src = "fn f() { par_map(&pool, xs, |x| { total += x; x }); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D11"]);
        let ok = "fn f() { par_map(&pool, xs, |x| { let mut acc = 0.0; acc += x; acc }); }";
        assert!(run(CrateKind::Library, ok).is_empty());
    }

    #[test]
    fn d12_subsumes_d5_on_lock_unwraps() {
        let src = "fn f() { let g = m.lock().unwrap(); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D12"]);
        let src2 = "fn f() { let g = m.read().unwrap_or_else(PoisonError::into_inner); }";
        assert_eq!(codes(CrateKind::Library, src2), vec!["D12"]);
    }

    #[test]
    fn new_rules_exempt_in_bench_and_tests() {
        let src = "fn f() { let g = m.lock().unwrap(); heat.store(t, Ordering::Relaxed); }";
        assert!(run(CrateKind::Bench, src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f() { let g = m.lock().unwrap(); } }";
        assert!(run(CrateKind::Library, test_src).is_empty());
    }
}

//! E7 (slides 47-48): acquisition functions — PI vs EI vs LCB on the Redis
//! example, plus the LCB β sweep that dials explore vs exploit.

use crate::experiments::{mean_curve, redis_target};
use crate::report::{f, Report};
use autotune_optimizer::{AcquisitionFunction, BayesianOptimizer, BoConfig, Optimizer};

fn bo_with(acq: AcquisitionFunction) -> Box<dyn Optimizer> {
    Box::new(BayesianOptimizer::new(
        redis_target().space().clone(),
        BoConfig {
            acquisition: acq,
            ..Default::default()
        },
    ))
}

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 20;
    let seeds = 0..15u64;
    let variants: Vec<(&str, AcquisitionFunction)> = vec![
        ("PI", AcquisitionFunction::ProbabilityOfImprovement),
        ("EI", AcquisitionFunction::ExpectedImprovement),
        (
            "LCB b=0",
            AcquisitionFunction::LowerConfidenceBound { beta: 0.0 },
        ),
        (
            "LCB b=1",
            AcquisitionFunction::LowerConfidenceBound { beta: 1.0 },
        ),
        (
            "LCB b=4",
            AcquisitionFunction::LowerConfidenceBound { beta: 4.0 },
        ),
        ("TS", AcquisitionFunction::ThompsonSample),
    ];
    let mut finals = Vec::new();
    let mut rows = Vec::new();
    for (name, acq) in &variants {
        let curve = mean_curve(|| bo_with(*acq), redis_target, budget, seeds.clone());
        rows.push(vec![
            name.to_string(),
            format!("{} ms", f(curve[9], 3)),
            format!("{} ms", f(curve[budget - 1], 3)),
        ]);
        finals.push((name.to_string(), curve[budget - 1]));
    }
    let get = |n: &str| {
        finals
            .iter()
            .find(|(name, _)| name == n)
            .expect("variant ran")
            .1
    };
    let ei = get("EI");
    let pi = get("PI");
    let lcb1 = get("LCB b=1");
    // EI/LCB(moderate beta) should not lose to pure-exploit PI; a huge beta
    // over-explores.
    let shape_holds = ei <= pi * 1.05 && lcb1 <= pi * 1.05;
    Report {
        id: "E7",
        title: "Acquisition functions (slides 47-48)",
        headers: vec!["acquisition", "best@10", "best@20"],
        rows,
        paper_claim: "EI weighs improvement magnitude and beats PI; beta trades explore/exploit",
        measured: format!(
            "final P95: EI {} / LCB(1) {} / PI {} ms",
            f(ei, 3),
            f(lcb1, 3),
            f(pi, 3)
        ),
        shape_holds,
    }
}

//! The configuration space: a validated set of parameters plus conditional
//! structure and constraints, with the encodings optimizers consume.

use crate::{Condition, Config, Constraint, Domain, Param, SpaceError, Value};
use rand::Rng;
use std::collections::BTreeMap;

/// A validated configuration space.
///
/// Construct through [`Space::builder`]. Parameter order is the insertion
/// order and defines the layout of the encoded vectors.
#[derive(Debug, Clone)]
pub struct Space {
    params: Vec<Param>,
    index: BTreeMap<String, usize>,
    conditions: Vec<Condition>,
    constraints: Vec<Constraint>,
    /// Parameter evaluation order such that parents precede children.
    topo_order: Vec<usize>,
}

/// Builder for [`Space`].
#[derive(Debug, Default)]
pub struct SpaceBuilder {
    params: Vec<Param>,
    conditions: Vec<Condition>,
    constraints: Vec<Constraint>,
}

impl SpaceBuilder {
    /// Adds a parameter.
    #[allow(clippy::should_implement_trait)] // builder verb, not arithmetic
    pub fn add(mut self, param: Param) -> Self {
        self.params.push(param);
        self
    }

    /// Adds a conditional-activation rule.
    pub fn condition(mut self, condition: Condition) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Adds a cross-parameter constraint.
    pub fn constraint(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Validates and builds the space.
    pub fn build(self) -> crate::Result<Space> {
        let mut index = BTreeMap::new();
        for (i, p) in self.params.iter().enumerate() {
            p.validate()?;
            if index.insert(p.name.clone(), i).is_some() {
                return Err(SpaceError::DuplicateParam(p.name.clone()));
            }
        }
        for c in &self.conditions {
            for name in [&c.child, &c.parent] {
                if !index.contains_key(name) {
                    return Err(SpaceError::UnknownParam(name.clone()));
                }
            }
            if c.child == c.parent {
                return Err(SpaceError::ConditionCycle(c.child.clone()));
            }
        }
        let topo_order = topo_sort(&self.params, &index, &self.conditions)?;
        Ok(Space {
            params: self.params,
            index,
            conditions: self.conditions,
            constraints: self.constraints,
            topo_order,
        })
    }
}

/// Kahn topological sort of parameters under parent→child condition edges.
fn topo_sort(
    params: &[Param],
    index: &BTreeMap<String, usize>,
    conditions: &[Condition],
) -> crate::Result<Vec<usize>> {
    let n = params.len();
    let mut indegree = vec![0usize; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in conditions {
        let child = index[&c.child];
        let parent = index[&c.parent];
        children[parent].push(child);
        indegree[child] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &ch in &children[i] {
            indegree[ch] -= 1;
            if indegree[ch] == 0 {
                queue.push(ch);
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(|i| params[i].name.clone())
            .unwrap_or_default();
        return Err(SpaceError::ConditionCycle(stuck));
    }
    Ok(order)
}

impl Space {
    /// Starts building a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder::default()
    }

    /// Parameters in declaration order (the encoding layout).
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Number of parameters (= unit-encoding dimensionality).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Looks a parameter up by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.index.get(name).map(|&i| &self.params[i])
    }

    /// Conditional-activation rules.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Cross-parameter constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Dimensionality of the one-hot encoding.
    pub fn onehot_dim(&self) -> usize {
        self.params.iter().map(|p| p.domain.onehot_width()).sum()
    }

    /// The all-defaults configuration (every parameter active).
    pub fn default_config(&self) -> Config {
        self.params
            .iter()
            .map(|p| (p.name.clone(), p.default.clone()))
            .collect()
    }

    /// Whether `name` is active under `config` per the conditional rules.
    /// Parameters without conditions are always active; conditional ones
    /// require *all* their conditions to hold (and, transitively, their
    /// parents to be active).
    pub fn is_active(&self, name: &str, config: &Config) -> bool {
        self.conditions
            .iter()
            .filter(|c| c.child == name)
            .all(|c| c.is_active(config) && self.is_active(&c.parent, config))
    }

    /// Names of the parameters active under `config`, in declaration order.
    pub fn active_params(&self, config: &Config) -> Vec<&Param> {
        self.params
            .iter()
            .filter(|p| self.is_active(&p.name, config))
            .collect()
    }

    /// Validates a configuration: every *active* parameter must be present
    /// and in range; inactive or unknown assignments are rejected.
    pub fn validate_config(&self, config: &Config) -> crate::Result<()> {
        for (name, value) in config.iter() {
            match self.param(name) {
                None => return Err(SpaceError::UnknownParam(name.clone())),
                Some(p) => p.check_value(value)?,
            }
        }
        for p in &self.params {
            if self.is_active(&p.name, config) && config.get(&p.name).is_none() {
                return Err(SpaceError::InvalidValue {
                    param: p.name.clone(),
                    reason: "active parameter missing from config".into(),
                });
            }
        }
        Ok(())
    }

    /// Whether `config` satisfies every constraint.
    pub fn is_feasible(&self, config: &Config) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(config))
    }

    /// Labels of the constraints `config` violates.
    pub fn violated_constraints(&self, config: &Config) -> Vec<String> {
        self.constraints
            .iter()
            .filter(|c| !c.is_satisfied(config))
            .map(|c| c.label())
            .collect()
    }

    /// Samples a random configuration respecting priors and conditional
    /// structure. Constraints are enforced by rejection (up to 1000
    /// attempts), after which the last sample is returned regardless — a
    /// pathological constraint should degrade, not deadlock, the tuner.
    pub fn sample(&self, rng: &mut impl Rng) -> Config {
        for _ in 0..1000 {
            let config = self.sample_unconstrained(rng);
            if self.is_feasible(&config) {
                return config;
            }
        }
        self.sample_unconstrained(rng)
    }

    /// Samples ignoring constraints (but honouring conditional structure:
    /// inactive parameters are simply absent).
    pub fn sample_unconstrained(&self, rng: &mut impl Rng) -> Config {
        let mut config = Config::new();
        for &i in &self.topo_order {
            let p = &self.params[i];
            if self.is_active(&p.name, &config) {
                config.set(p.name.clone(), p.sample(rng));
            }
        }
        config
    }

    /// Encodes a configuration into the unit cube, one dimension per
    /// parameter in declaration order. Inactive/missing parameters encode
    /// as their default's position (the standard "default imputation" used
    /// by SMAC for conditional spaces).
    pub fn encode_unit(&self, config: &Config) -> crate::Result<Vec<f64>> {
        self.params
            .iter()
            .map(|p| {
                let value = config.get(&p.name).unwrap_or(&p.default);
                p.to_unit(value)
            })
            .collect()
    }

    /// Decodes a unit-cube vector into a configuration, dropping parameters
    /// that the decoded parent values deactivate.
    pub fn decode_unit(&self, x: &[f64]) -> crate::Result<Config> {
        if x.len() != self.params.len() {
            return Err(SpaceError::EncodingLength {
                expected: self.params.len(),
                actual: x.len(),
            });
        }
        // Decode everything first, then strip inactive children using the
        // topological order so cascading deactivation is handled.
        let mut config: Config = self
            .params
            .iter()
            .zip(x)
            .map(|(p, &u)| (p.name.clone(), p.from_unit(u)))
            .collect();
        for &i in &self.topo_order {
            let name = &self.params[i].name;
            if !self.is_active(name, &config) {
                config.remove(name);
            }
        }
        Ok(config)
    }

    /// Encodes into the one-hot layout: numeric/bool parameters occupy one
    /// dimension, categorical parameters `k` indicator dimensions.
    pub fn encode_onehot(&self, config: &Config) -> crate::Result<Vec<f64>> {
        let mut out = Vec::with_capacity(self.onehot_dim());
        for p in &self.params {
            let value = config.get(&p.name).unwrap_or(&p.default);
            match &p.domain {
                Domain::Categorical { choices } => {
                    let chosen = value.as_str().ok_or_else(|| SpaceError::InvalidValue {
                        param: p.name.clone(),
                        reason: format!("expected categorical, got {value:?}"),
                    })?;
                    for c in choices {
                        out.push(if c == chosen { 1.0 } else { 0.0 });
                    }
                }
                _ => out.push(p.to_unit(value)?),
            }
        }
        Ok(out)
    }

    /// Decodes a one-hot vector (inverse of [`Space::encode_onehot`];
    /// categorical groups decode by argmax).
    pub fn decode_onehot(&self, x: &[f64]) -> crate::Result<Config> {
        if x.len() != self.onehot_dim() {
            return Err(SpaceError::EncodingLength {
                expected: self.onehot_dim(),
                actual: x.len(),
            });
        }
        let mut config = Config::new();
        let mut offset = 0;
        for p in &self.params {
            match &p.domain {
                Domain::Categorical { choices } => {
                    let group = &x[offset..offset + choices.len()];
                    let best = group
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    config.set(p.name.clone(), Value::Cat(choices[best].clone()));
                    offset += choices.len();
                }
                _ => {
                    config.set(p.name.clone(), p.from_unit(x[offset]));
                    offset += 1;
                }
            }
        }
        for &i in &self.topo_order {
            let name = &self.params[i].name;
            if !self.is_active(name, &config) {
                config.remove(name);
            }
        }
        Ok(config)
    }

    /// A full-factorial grid with `per_dim` points per parameter
    /// (categoricals/bools contribute their exact cardinality). The
    /// tutorial's "grid search" baseline. Returns configs in odometer order.
    ///
    /// The grid size grows as `per_dim^d`; callers cap the budget by
    /// choosing `per_dim` accordingly. As a safety valve against
    /// accidental combinatorial explosions (a 40-knob space at
    /// `per_dim = 3` is ~10^19 points), enumeration is hard-capped at
    /// 1,000,000 points: beyond that the sweep stops early rather than
    /// attempting an impossible allocation.
    pub fn grid(&self, per_dim: usize) -> Vec<Config> {
        const MAX_GRID_POINTS: usize = 1_000_000;
        let per_dim = per_dim.max(1);
        let axis_sizes: Vec<usize> = self
            .params
            .iter()
            .map(|p| match p.domain.cardinality() {
                Some(c) => (c as usize).min(per_dim),
                None => per_dim,
            })
            .collect();
        let total: usize = axis_sizes
            .iter()
            .try_fold(1usize, |acc, &n| acc.checked_mul(n))
            .unwrap_or(usize::MAX)
            .min(MAX_GRID_POINTS);
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; self.params.len()];
        for _ in 0..total {
            let x: Vec<f64> = idx
                .iter()
                .zip(&axis_sizes)
                .map(|(&i, &n)| {
                    if n == 1 {
                        0.5
                    } else {
                        i as f64 / (n - 1) as f64
                    }
                })
                .collect();
            if let Ok(cfg) = self.decode_unit(&x) {
                if self.is_feasible(&cfg) {
                    out.push(cfg);
                }
            }
            // Odometer increment.
            for d in (0..idx.len()).rev() {
                idx[d] += 1;
                if idx[d] < axis_sizes[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        // Grids over conditional spaces collapse deactivated children onto
        // the same config; dedup preserves the "try each distinct config
        // once" contract.
        let mut seen = std::collections::BTreeSet::new();
        out.retain(|c| seen.insert(c.render()));
        out
    }

    /// Produces a neighbouring configuration by perturbing each active
    /// parameter with probability `1/d` (at least one), moving numeric
    /// values by a Gaussian step of `scale` in unit space and resampling
    /// categoricals. This is the mutation kernel shared by simulated
    /// annealing and the genetic algorithm.
    pub fn neighbor(&self, config: &Config, scale: f64, rng: &mut impl Rng) -> Config {
        let x = self
            .encode_unit(config)
            .expect("config produced by this space must encode"); // lint: allow(D5) documented precondition on config origin
        for _ in 0..100 {
            let mut y = x.clone();
            let d = y.len().max(1);
            let mut changed = false;
            for (i, yi) in y.iter_mut().enumerate() {
                if rng.gen::<f64>() < 1.0 / d as f64 {
                    changed = true;
                    match &self.params[i].domain {
                        Domain::Categorical { .. } | Domain::Bool => {
                            *yi = rng.gen::<f64>();
                        }
                        _ => {
                            let u1: f64 = rng.gen::<f64>().max(1e-12);
                            let u2: f64 = rng.gen();
                            let z =
                                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                            *yi = (*yi + scale * z).clamp(0.0, 1.0);
                        }
                    }
                }
            }
            if !changed {
                let i = rng.gen_range(0..d);
                y[i] = rng.gen::<f64>();
            }
            let cfg = self
                .decode_unit(&y)
                .expect("vector of correct length must decode"); // lint: allow(D5) perturbed vector keeps the space dimension
            if self.is_feasible(&cfg) {
                return cfg;
            }
        }
        config.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pg_like_space() -> Space {
        Space::builder()
            .add(Param::float("shared_buffers_gb", 0.25, 8.0).log_scale())
            .add(Param::bool("jit"))
            .add(Param::float("jit_above_cost", 1e3, 1e6).log_scale())
            .add(Param::categorical(
                "wal_sync",
                &["fsync", "fdatasync", "open_sync"],
            ))
            .condition(Condition::equals("jit_above_cost", "jit", true))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_duplicates_and_unknowns() {
        let dup = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .add(Param::float("x", 0.0, 2.0))
            .build();
        assert!(matches!(dup, Err(SpaceError::DuplicateParam(_))));

        let unknown = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .condition(Condition::equals("ghost", "x", 1.0))
            .build();
        assert!(matches!(unknown, Err(SpaceError::UnknownParam(_))));
    }

    #[test]
    fn builder_rejects_condition_cycles() {
        let cyc = Space::builder()
            .add(Param::bool("a"))
            .add(Param::bool("b"))
            .condition(Condition::equals("a", "b", true))
            .condition(Condition::equals("b", "a", true))
            .build();
        assert!(matches!(cyc, Err(SpaceError::ConditionCycle(_))));

        let self_ref = Space::builder()
            .add(Param::bool("a"))
            .condition(Condition::equals("a", "a", true))
            .build();
        assert!(matches!(self_ref, Err(SpaceError::ConditionCycle(_))));
    }

    #[test]
    fn conditional_sampling_omits_inactive() {
        let space = pg_like_space();
        let mut rng = StdRng::seed_from_u64(11);
        let mut saw_active = false;
        let mut saw_inactive = false;
        for _ in 0..100 {
            let c = space.sample(&mut rng);
            let jit = c.get_bool("jit").unwrap();
            let has_cost = c.get("jit_above_cost").is_some();
            assert_eq!(jit, has_cost, "jit_above_cost present iff jit=true: {c}");
            saw_active |= jit;
            saw_inactive |= !jit;
        }
        assert!(saw_active && saw_inactive);
    }

    #[test]
    fn encode_decode_unit_roundtrip_preserves_values() {
        let space = pg_like_space();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            let x = space.encode_unit(&c).unwrap();
            assert_eq!(x.len(), 4);
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let back = space.decode_unit(&x).unwrap();
            // Categorical and bool decode exactly; floats within tolerance.
            assert_eq!(c.get_str("wal_sync"), back.get_str("wal_sync"));
            assert_eq!(c.get_bool("jit"), back.get_bool("jit"));
            let a = c.get_f64("shared_buffers_gb").unwrap();
            let b = back.get_f64("shared_buffers_gb").unwrap();
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        }
    }

    #[test]
    fn onehot_layout_and_roundtrip() {
        let space = pg_like_space();
        assert_eq!(space.onehot_dim(), 3 + 3); // 3 scalars + 3 categories
        let c = space
            .default_config()
            .with("wal_sync", "open_sync")
            .with("jit", true)
            .with("jit_above_cost", 5e4);
        let x = space.encode_onehot(&c).unwrap();
        assert_eq!(x.len(), 6);
        assert_eq!(&x[3..], &[0.0, 0.0, 1.0]);
        let back = space.decode_onehot(&x).unwrap();
        assert_eq!(back.get_str("wal_sync"), Some("open_sync"));
        assert_eq!(back.get_bool("jit"), Some(true));
    }

    #[test]
    fn validate_config_checks_active_presence() {
        let space = pg_like_space();
        // jit=true but jit_above_cost missing -> invalid.
        let c = Config::new()
            .with("shared_buffers_gb", 1.0)
            .with("jit", true)
            .with("wal_sync", "fsync");
        assert!(space.validate_config(&c).is_err());
        // jit=false, cost absent -> fine.
        let c2 = Config::new()
            .with("shared_buffers_gb", 1.0)
            .with("jit", false)
            .with("wal_sync", "fsync");
        assert!(space.validate_config(&c2).is_ok());
        // Unknown key -> error.
        let c3 = c2.clone().with("bogus", 1.0);
        assert!(matches!(
            space.validate_config(&c3),
            Err(SpaceError::UnknownParam(_))
        ));
    }

    #[test]
    fn constraints_respected_by_sampler() {
        let space = Space::builder()
            .add(Param::float("chunk", 0.0, 10.0))
            .add(Param::float("pool", 0.0, 10.0))
            .constraint(Constraint::ratio_le("chunk", "pool", 0.5))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let c = space.sample(&mut rng);
            assert!(
                c.get_f64("chunk").unwrap() <= 0.5 * c.get_f64("pool").unwrap() + 1e-9,
                "sampler produced infeasible {c}"
            );
        }
    }

    #[test]
    fn grid_covers_endpoints_and_dedups() {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .add(Param::bool("b"))
            .build()
            .unwrap();
        let grid = space.grid(3);
        assert_eq!(grid.len(), 6); // 3 x-values x 2 bools
        assert!(grid
            .iter()
            .any(|c| c.get_f64("x") == Some(0.0) && c.get_bool("b") == Some(false)));
        assert!(grid
            .iter()
            .any(|c| c.get_f64("x") == Some(1.0) && c.get_bool("b") == Some(true)));
    }

    #[test]
    fn grid_respects_cardinality_cap() {
        let space = Space::builder()
            .add(Param::int("n", 1, 2)) // only 2 distinct values
            .build()
            .unwrap();
        let grid = space.grid(10);
        assert_eq!(grid.len(), 2);
    }

    #[test]
    fn neighbor_changes_something_and_stays_feasible() {
        let space = pg_like_space();
        let mut rng = StdRng::seed_from_u64(9);
        let base = space.sample(&mut rng);
        let mut changed = 0;
        for _ in 0..20 {
            let n = space.neighbor(&base, 0.2, &mut rng);
            assert!(space.validate_config(&n).is_ok(), "neighbor invalid: {n}");
            if n != base {
                changed += 1;
            }
        }
        assert!(changed > 10, "neighbor almost never changes the config");
    }

    #[test]
    fn default_config_is_valid_when_unconditional() {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .add(Param::categorical("c", &["a", "b"]))
            .build()
            .unwrap();
        let d = space.default_config();
        assert!(space.validate_config(&d).is_ok());
    }

    #[test]
    fn encoding_length_errors() {
        let space = pg_like_space();
        assert!(matches!(
            space.decode_unit(&[0.5]),
            Err(SpaceError::EncodingLength { .. })
        ));
        assert!(matches!(
            space.decode_onehot(&[0.5; 2]),
            Err(SpaceError::EncodingLength { .. })
        ));
    }

    #[test]
    fn transitive_deactivation() {
        // c depends on b, b depends on a: a=false must deactivate both.
        let space = Space::builder()
            .add(Param::bool("a"))
            .add(Param::bool("b"))
            .add(Param::float("c", 0.0, 1.0))
            .condition(Condition::equals("b", "a", true))
            .condition(Condition::equals("c", "b", true))
            .build()
            .unwrap();
        let cfg = space.decode_unit(&[0.0, 1.0, 0.5]).unwrap(); // a=false
        assert!(cfg.get("b").is_none());
        assert!(cfg.get("c").is_none());
        let cfg2 = space.decode_unit(&[1.0, 1.0, 0.5]).unwrap();
        assert!(cfg2.get("b").is_some());
        assert!(cfg2.get("c").is_some());
    }
}

//! `autotune-lint` — static determinism & panic-safety analysis for the
//! autotune workspace.
//!
//! The repo's trustworthiness rests on invariants no type system checks:
//! trials replay byte-identically, every random draw derives from the
//! campaign seed, time flows only through the virtual clock, and the
//! tuner never panics mid-campaign. This crate machine-checks those
//! invariants as twelve named diagnostics (see [`rules`]) over every
//! `crates/*/src` file, with an inline `// lint: allow(Dx) <reason>`
//! escape hatch for the sites that are proven safe. D1–D6 are per-token
//! determinism/panic-safety rules; D7–D12 are the concurrency and
//! crash-safety pack, driven by a second pass ([`flow`]) that recovers
//! per-function lock acquisitions, guard lifetimes, and protocol events,
//! and by a cross-crate lock-order graph ([`graph`]).
//!
//! Run it from anywhere in the workspace:
//!
//! ```text
//! cargo run -p autotune-lint -- --deny-all
//! ```
//!
//! The analyzer is self-contained (a hand-rolled lexer plus an item-scope
//! tracker) because the build environment is offline and cannot vendor
//! `syn`; the lexer handles the full literal/comment syntax so rules
//! never misfire inside strings or docs.

pub mod allow;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

pub use graph::LockEdge;
pub use report::{Report, Violation};
pub use rules::CrateKind;

use std::path::{Path, PathBuf};

/// Lints one source file's text without the global graph pass; `file` is
/// used only for reporting. Returns the file's report plus its
/// contribution to the cross-crate lock-order graph.
pub fn analyze_source(file: &str, kind: CrateKind, src: &str) -> (Report, Vec<LockEdge>) {
    let toks = lexer::lex(src);
    let mask = scope::test_mask(&toks);
    let mut allows = allow::collect(&toks);
    let (violations, allowed, edges) = rules::check(file, kind, &toks, &mask, &mut allows);
    let mut report = Report {
        files: 1,
        ..Report::default()
    };
    report.violations = violations;
    for (code, _line) in allowed {
        *report.allowed.entry(code).or_insert(0) += 1;
    }
    (report, edges)
}

/// Lints one source file's text, including a lock-order cycle check over
/// the file's own edges (the workspace walk runs that check globally
/// instead, so cross-file cycles are seen).
pub fn lint_source(file: &str, kind: CrateKind, src: &str) -> Report {
    let (mut report, edges) = analyze_source(file, kind, src);
    report.violations.extend(graph::cycle_violations(&edges));
    report
        .violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code)));
    report
}

/// Classifies a crate directory name.
pub fn crate_kind(name: &str) -> CrateKind {
    match name {
        "bench" => CrateKind::Bench,
        "serve" => CrateKind::Serve,
        _ => CrateKind::Library,
    }
}

/// Walks `<root>/crates/*/src` and lints every `.rs` file.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    lint_workspace_graph(root).map(|(report, _)| report)
}

/// Walks `<root>/crates/*/src`, lints every `.rs` file, and runs the
/// lock-order cycle check over the union of all files' edges. The edge
/// union is returned too (for `--lock-graph` DOT output).
///
/// Paths in the returned report are workspace-relative. Read failures on
/// individual files surface as `A1` violations rather than aborting the
/// run, so CI output always shows everything it could check.
pub fn lint_workspace_graph(root: &Path) -> std::io::Result<(Report, Vec<LockEdge>)> {
    let mut report = Report::default();
    let mut edges: Vec<LockEdge> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let kind = crate_kind(&name);
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .into_owned();
            match std::fs::read_to_string(&f) {
                Ok(src) => {
                    let (r, mut e) = analyze_source(&rel, kind, &src);
                    report.absorb(r);
                    edges.append(&mut e);
                }
                Err(e) => report.violations.push(Violation {
                    file: rel,
                    line: 0,
                    code: "A1",
                    message: format!("unreadable source file: {e}"),
                }),
            }
        }
    }
    let mut cycle = graph::cycle_violations(&edges);
    report.violations.append(&mut cycle);
    Ok((report, edges))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

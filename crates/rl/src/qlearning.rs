//! Tabular Q-learning and SARSA (tutorial slides 79-80).
//!
//! `Q(s,a)` estimates the expected discounted reward of taking action `a`
//! in state `s`. Q-learning bootstraps off the greedy next action
//! (off-policy); SARSA off the action actually taken (on-policy, more
//! conservative — relevant for production tuning where exploratory
//! disasters are real).

use crate::{Result, RlError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters shared by [`QLearning`] and [`Sarsa`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QLearningConfig {
    /// Learning rate α ∈ (0, 1].
    pub alpha: f64,
    /// Discount factor γ ∈ [0, 1).
    pub gamma: f64,
    /// Exploration probability ε ∈ [0, 1].
    pub epsilon: f64,
    /// Multiplicative ε decay applied after each update.
    pub epsilon_decay: f64,
    /// Floor for ε.
    pub epsilon_min: f64,
}

impl Default for QLearningConfig {
    fn default() -> Self {
        QLearningConfig {
            alpha: 0.2,
            gamma: 0.9,
            epsilon: 0.3,
            epsilon_decay: 0.995,
            epsilon_min: 0.02,
        }
    }
}

/// Shared table + ε-greedy machinery.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Table {
    n_states: usize,
    n_actions: usize,
    q: Vec<f64>,
    config: QLearningConfig,
}

impl Table {
    fn new(n_states: usize, n_actions: usize, config: QLearningConfig) -> Self {
        assert!(n_states > 0 && n_actions > 0, "table must be non-empty");
        assert!((0.0..1.0).contains(&config.gamma), "gamma must be in [0,1)");
        Table {
            n_states,
            n_actions,
            q: vec![0.0; n_states * n_actions],
            config,
        }
    }

    fn check(&self, state: usize, action: usize) -> Result<()> {
        if state >= self.n_states {
            return Err(RlError::IndexOutOfRange {
                what: "state",
                index: state,
                bound: self.n_states,
            });
        }
        if action >= self.n_actions {
            return Err(RlError::IndexOutOfRange {
                what: "action",
                index: action,
                bound: self.n_actions,
            });
        }
        Ok(())
    }

    #[inline]
    fn q(&self, s: usize, a: usize) -> f64 {
        self.q[s * self.n_actions + a]
    }

    #[inline]
    fn q_mut(&mut self, s: usize, a: usize) -> &mut f64 {
        &mut self.q[s * self.n_actions + a]
    }

    fn greedy(&self, s: usize) -> usize {
        (0..self.n_actions)
            .max_by(|&a, &b| self.q(s, a).total_cmp(&self.q(s, b)))
            .expect("n_actions > 0") // lint: allow(D5) n_actions asserted nonzero at construction
    }

    fn select(&self, s: usize, rng: &mut impl Rng) -> usize {
        if rng.gen::<f64>() < self.config.epsilon {
            rng.gen_range(0..self.n_actions)
        } else {
            self.greedy(s)
        }
    }

    fn decay_epsilon(&mut self) {
        self.config.epsilon =
            (self.config.epsilon * self.config.epsilon_decay).max(self.config.epsilon_min);
    }

    fn max_q(&self, s: usize) -> f64 {
        (0..self.n_actions)
            .map(|a| self.q(s, a))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Off-policy tabular Q-learning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QLearning {
    table: Table,
}

impl QLearning {
    /// Creates an agent over `n_states x n_actions`.
    pub fn new(n_states: usize, n_actions: usize, config: QLearningConfig) -> Self {
        QLearning {
            table: Table::new(n_states, n_actions, config),
        }
    }

    /// ε-greedy action selection.
    pub fn select_action(&self, state: usize, rng: &mut impl Rng) -> usize {
        self.table.select(state, rng)
    }

    /// Greedy (deployment) action.
    pub fn greedy_action(&self, state: usize) -> usize {
        self.table.greedy(state)
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.table.config.epsilon
    }

    /// Q-value accessor.
    pub fn q_value(&self, state: usize, action: usize) -> f64 {
        self.table.q(state, action)
    }

    /// Q-learning update:
    /// `Q(s,a) += α (r + γ max_a' Q(s',a') − Q(s,a))`.
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
    ) -> Result<()> {
        self.table.check(state, action)?;
        self.table.check(next_state, 0)?;
        // A crashed trial reports a NaN reward; folding it into the table
        // would poison Q(s,a) (and every value bootstrapped from it) and
        // leave greedy() undefined. Skip the update, matching the
        // contextual-bandit convention.
        if reward.is_nan() {
            self.table.decay_epsilon();
            return Ok(());
        }
        let target = reward + self.table.config.gamma * self.table.max_q(next_state);
        let alpha = self.table.config.alpha;
        let q = self.table.q_mut(state, action);
        *q += alpha * (target - *q);
        self.table.decay_epsilon();
        Ok(())
    }
}

/// On-policy SARSA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sarsa {
    table: Table,
}

impl Sarsa {
    /// Creates an agent over `n_states x n_actions`.
    pub fn new(n_states: usize, n_actions: usize, config: QLearningConfig) -> Self {
        Sarsa {
            table: Table::new(n_states, n_actions, config),
        }
    }

    /// ε-greedy action selection.
    pub fn select_action(&self, state: usize, rng: &mut impl Rng) -> usize {
        self.table.select(state, rng)
    }

    /// Greedy (deployment) action.
    pub fn greedy_action(&self, state: usize) -> usize {
        self.table.greedy(state)
    }

    /// Q-value accessor.
    pub fn q_value(&self, state: usize, action: usize) -> f64 {
        self.table.q(state, action)
    }

    /// SARSA update:
    /// `Q(s,a) += α (r + γ Q(s',a') − Q(s,a))` where `a'` is the action the
    /// policy actually chose next.
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        next_action: usize,
    ) -> Result<()> {
        self.table.check(state, action)?;
        self.table.check(next_state, next_action)?;
        // Same NaN guard as Q-learning: crashed-trial rewards must not
        // poison the table.
        if reward.is_nan() {
            self.table.decay_epsilon();
            return Ok(());
        }
        let target = reward + self.table.config.gamma * self.table.q(next_state, next_action);
        let alpha = self.table.config.alpha;
        let q = self.table.q_mut(state, action);
        *q += alpha * (target - *q);
        self.table.decay_epsilon();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 5-state chain: action 1 moves right (+reward at the end), action 0
    /// moves left. Optimal policy: always right.
    fn run_chain_qlearning(episodes: usize, seed: u64) -> QLearning {
        let mut agent = QLearning::new(5, 2, QLearningConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..episodes {
            let mut s = 0usize;
            for _ in 0..20 {
                let a = agent.select_action(s, &mut rng);
                let s2 = if a == 1 {
                    (s + 1).min(4)
                } else {
                    s.saturating_sub(1)
                };
                let r = if s2 == 4 { 1.0 } else { 0.0 };
                agent.update(s, a, r, s2).unwrap();
                s = s2;
                if s == 4 {
                    break;
                }
            }
        }
        agent
    }

    #[test]
    fn qlearning_learns_chain_policy() {
        let agent = run_chain_qlearning(300, 1);
        for s in 0..4 {
            assert_eq!(agent.greedy_action(s), 1, "state {s} should move right");
        }
    }

    #[test]
    fn q_values_respect_discounting() {
        let agent = run_chain_qlearning(500, 2);
        // Value of "right" grows as we approach the goal.
        let q: Vec<f64> = (0..4).map(|s| agent.q_value(s, 1)).collect();
        for w in q.windows(2) {
            assert!(w[0] < w[1] + 1e-9, "Q should increase toward goal: {q:?}");
        }
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let agent = run_chain_qlearning(2000, 3);
        assert!((agent.epsilon() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn sarsa_learns_chain_policy() {
        let mut agent = Sarsa::new(5, 2, QLearningConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..400 {
            let mut s = 0usize;
            let mut a = agent.select_action(s, &mut rng);
            for _ in 0..20 {
                let s2 = if a == 1 {
                    (s + 1).min(4)
                } else {
                    s.saturating_sub(1)
                };
                let r = if s2 == 4 { 1.0 } else { 0.0 };
                let a2 = agent.select_action(s2, &mut rng);
                agent.update(s, a, r, s2, a2).unwrap();
                s = s2;
                a = a2;
                if s == 4 {
                    break;
                }
            }
        }
        for s in 0..4 {
            assert_eq!(agent.greedy_action(s), 1, "state {s} should move right");
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let mut agent = QLearning::new(3, 2, QLearningConfig::default());
        assert!(matches!(
            agent.update(5, 0, 0.0, 0),
            Err(RlError::IndexOutOfRange { what: "state", .. })
        ));
        assert!(matches!(
            agent.update(0, 7, 0.0, 0),
            Err(RlError::IndexOutOfRange { what: "action", .. })
        ));
    }

    #[test]
    fn serde_roundtrip_preserves_policy() {
        let agent = run_chain_qlearning(300, 5);
        let json = serde_json::to_string(&agent).unwrap();
        let back: QLearning = serde_json::from_str(&json).unwrap();
        for s in 0..5 {
            assert_eq!(agent.greedy_action(s), back.greedy_action(s));
        }
    }

    #[test]
    fn nan_reward_does_not_poison_the_table() {
        // Regression (lint D4/D5 satellite): a crashed trial reports its
        // objective as NaN. Before the guard, one such reward made Q(s,a)
        // NaN, every later target bootstrapped the poison across the
        // table, and greedy()'s argmax — then `partial_cmp(..).expect()` —
        // panicked. The NaN update must be a no-op on the policy.
        let mut agent = run_chain_qlearning(300, 1);
        let before: Vec<usize> = (0..5).map(|s| agent.greedy_action(s)).collect();
        agent.update(2, 1, f64::NAN, 3).expect("indices in range");
        let after: Vec<usize> = (0..5).map(|s| agent.greedy_action(s)).collect();
        assert_eq!(before, after, "NaN reward must not change the policy");
        assert!(
            (0..5).all(|s| (0..2).all(|a| agent.q_value(s, a).is_finite())),
            "Q table must stay finite after a NaN reward"
        );
    }

    #[test]
    fn nan_reward_is_noop_for_sarsa() {
        let mut agent = Sarsa::new(5, 2, QLearningConfig::default());
        agent.update(0, 1, 1.0, 1, 1).expect("indices in range");
        let q = agent.q_value(0, 1);
        agent
            .update(0, 1, f64::NAN, 1, 1)
            .expect("indices in range");
        assert_eq!(agent.q_value(0, 1), q);
        assert_eq!(agent.greedy_action(0), 1);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_rejected() {
        let _ = QLearning::new(
            2,
            2,
            QLearningConfig {
                gamma: 1.0,
                ..Default::default()
            },
        );
    }
}

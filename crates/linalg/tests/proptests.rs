//! Property-based tests for the linear-algebra kernels.

use autotune_linalg::{stats, symmetric_eigen, Cholesky, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a random SPD matrix built as `A A^T + n I`.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |a| {
        let mut spd = a.matmul(&a.transpose()).unwrap();
        spd.add_diag(n as f64); // guarantee strict positive-definiteness
        spd
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs(a in spd_strategy(4)) {
        let c = Cholesky::new(&a).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-6 * a.max_abs().max(1.0)));
    }

    #[test]
    fn cholesky_solve_is_inverse_of_matvec(a in spd_strategy(4), x in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let b = a.matvec(&x).unwrap();
        let c = Cholesky::new(&a).unwrap();
        let got = c.solve_vec(&b);
        for (g, w) in got.iter().zip(&x) {
            prop_assert!((g - w).abs() < 1e-6, "got {g}, want {w}");
        }
    }

    #[test]
    fn cholesky_log_det_matches_lu_det(a in spd_strategy(3)) {
        let c = Cholesky::new(&a).unwrap();
        let lu = Lu::new(&a).unwrap();
        let det = lu.det();
        prop_assert!(det > 0.0);
        prop_assert!((c.log_det() - det.ln()).abs() < 1e-6);
    }

    #[test]
    fn transpose_preserves_frobenius(a in matrix_strategy(3, 5)) {
        prop_assert!((a.frobenius_norm() - a.transpose().frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let scale = a.max_abs() * b.max_abs() * c.max_abs() + 1.0;
        prop_assert!(left.approx_eq(&right, 1e-9 * scale));
    }

    #[test]
    fn eigen_trace_and_reconstruction(a in spd_strategy(4)) {
        let e = symmetric_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-6 * a.trace().abs().max(1.0));
        // Eigenvalues of an SPD matrix are positive and sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(e.values.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn lu_solve_roundtrip(a in spd_strategy(4), x in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let b = a.matvec(&x).unwrap();
        let lu = Lu::new(&a).unwrap();
        let got = lu.solve(&b).unwrap();
        for (g, w) in got.iter().zip(&x) {
            prop_assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn quantile_monotone(mut xs in proptest::collection::vec(-100.0..100.0f64, 1..50), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::quantile(&xs, lo) <= stats::quantile(&xs, hi) + 1e-9);
    }

    #[test]
    fn quantile_within_range(xs in proptest::collection::vec(-100.0..100.0f64, 1..50), q in 0.0..1.0f64) {
        let v = stats::quantile(&xs, q);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(z1 in -5.0..5.0f64, z2 in -5.0..5.0f64) {
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(stats::normal_cdf(lo) <= stats::normal_cdf(hi) + 1e-9);
    }

    #[test]
    fn running_stats_matches_batch(xs in proptest::collection::vec(-100.0..100.0f64, 2..60)) {
        let mut rs = stats::RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        prop_assert!((rs.mean() - stats::mean(&xs)).abs() < 1e-8);
        prop_assert!((rs.variance() - stats::variance(&xs)).abs() < 1e-6);
    }
}

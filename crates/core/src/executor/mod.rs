//! The one true trial loop: an event-driven executor behind every
//! execution path in the framework (tutorial slides 33, 57, 65-66).
//!
//! A campaign is a [`TrialSource`] (where configurations come from), a
//! [`SchedulePolicy`] (how many run at once and where the barriers sit),
//! and a [`Middleware`] chain (cross-cutting machinery: early abort,
//! crash penalties, machine assignment). The [`Executor`] drives them
//! with a virtual-clock slot pool: trials are measured on real crossbeam
//! worker threads the moment they are dispatched, but their *results* are
//! sealed until the virtual clock reaches each trial's finish time, so
//! observation order matches what a real cluster would deliver —
//! including out-of-order completion under asynchronous policies.
//!
//! Determinism contract: the suggestion stream (`StdRng` from the
//! campaign seed) is consumed only by the source and `before_dispatch`
//! middleware; every trial's measurement draws from its own stream
//! derived from `(seed, trial_id)`. Thread scheduling therefore cannot
//! perturb results, and `Sequential`, `SyncBatch{k:1}` and
//! `AsyncSlots{k:1}` produce byte-identical trial histories.

mod campaign;
mod event;
mod middleware;
mod policy;
mod source;

pub use campaign::{
    Campaign, CampaignError, CampaignEvent, CampaignSnapshot, ResumeReport, WorkItem,
    SNAPSHOT_VERSION,
};
pub use event::{Measurement, TrialEvent, TrialOutcome, TrialRequest};
pub use middleware::{
    CrashPenaltyMw, EarlyAbortMw, MachineAssignMw, Middleware, QuarantineMw, RetryMw, TimeoutMw,
};
pub use policy::SchedulePolicy;
pub use source::{OptimizerSource, OwnedOptimizerSource, RungSource, SourceStep, TrialSource};

use crate::telemetry::{
    MetricsCollector, MetricsSnapshot, NullTimer, OptEvent, Subscriber, WallTimer,
};
use crate::{NoiseStrategy, Objective, Target, TrialStorage};
use autotune_sim::{FailureKind, Fault};
use campaign::CampaignState;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Derives a trial's private evaluation seed from the campaign seed and
/// the trial id (SplitMix64-style finalizer: adjacent ids land far apart).
fn trial_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Accounting and event log of one executor run. Trials themselves land
/// in the caller-provided [`TrialStorage`].
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Lifecycle event stream, in emission order.
    pub events: Vec<TrialEvent>,
    /// Virtual wall-clock of the campaign, seconds.
    pub wall_clock_s: f64,
    /// Total machine-seconds consumed (the bill).
    pub machine_seconds: f64,
    /// Trials executed in this run.
    pub n_trials: usize,
    /// Trials cut short by censoring middleware.
    pub n_aborted: usize,
    /// Trials lost to infrastructure with retries exhausted.
    pub n_transient: usize,
    /// Retry attempts consumed across all trials.
    pub n_retried: usize,
    /// Distinct machines quarantined at least once during the run.
    pub n_quarantined_machines: usize,
    /// Benchmark seconds saved by censoring middleware.
    pub saved_s: f64,
    /// Rolled-up telemetry of the run (counters, latency/queue/overhead
    /// histograms, per-machine utilization) — collected by the always-on
    /// internal [`MetricsCollector`].
    pub metrics: MetricsSnapshot,
}

/// The event-driven trial executor.
///
/// ```
/// use autotune::executor::{Executor, OptimizerSource, SchedulePolicy};
/// use autotune::{Objective, Target, TrialStorage};
/// use autotune_optimizer::RandomSearch;
/// use autotune_sim::{Environment, RedisSim, Workload};
///
/// let target = Target::simulated(
///     Box::new(RedisSim::new()),
///     Workload::kv_cache(10_000.0),
///     Environment::medium(),
///     Objective::MinimizeLatencyP95,
/// );
/// let mut opt = RandomSearch::new(target.space().clone());
/// let mut source = OptimizerSource::new(&mut opt, 8);
/// let mut storage = TrialStorage::new();
/// let report = Executor::new(&target, SchedulePolicy::AsyncSlots { k: 4 })
///     .run(&mut source, &mut storage, 1);
/// assert_eq!(report.n_trials, 8);
/// assert!(report.wall_clock_s < report.machine_seconds);
/// ```
pub struct Executor<'a> {
    target: &'a Target,
    policy: SchedulePolicy,
    noise_strategy: NoiseStrategy,
    middleware: Vec<Box<dyn Middleware + 'a>>,
    subscribers: Vec<Box<dyn Subscriber + 'a>>,
    timer: Box<dyn WallTimer + 'a>,
}

impl<'a> Executor<'a> {
    /// An executor over `target` with the given scheduling policy.
    pub fn new(target: &'a Target, policy: SchedulePolicy) -> Self {
        Executor {
            target,
            policy,
            noise_strategy: NoiseStrategy::Single,
            middleware: Vec::new(),
            subscribers: Vec::new(),
            timer: Box::new(NullTimer),
        }
    }

    /// Sets the measurement policy per trial (default: one raw run).
    pub fn with_noise_strategy(mut self, strategy: NoiseStrategy) -> Self {
        self.noise_strategy = strategy;
        self
    }

    /// Appends a middleware to the chain (applied in insertion order).
    pub fn with_middleware(mut self, mw: Box<dyn Middleware + 'a>) -> Self {
        self.middleware.push(mw);
        self
    }

    /// Attaches a telemetry subscriber (notified in attachment order, on
    /// the driver thread, with virtual-clock timestamps). Subscribers are
    /// pure observers: attaching any combination leaves campaign results
    /// byte-identical.
    pub fn with_subscriber(mut self, sub: Box<dyn Subscriber + 'a>) -> Self {
        self.subscribers.push(sub);
        self
    }

    /// Injects a real-time source for optimizer overhead attribution
    /// (default: [`NullTimer`], every reading 0). Readings flow only into
    /// subscriber-side metrics, never into the clock or the event log.
    pub fn with_timer(mut self, timer: Box<dyn WallTimer + 'a>) -> Self {
        self.timer = timer;
        self
    }

    /// Drives the source to exhaustion, appending trials to `storage`.
    pub fn run(
        &mut self,
        source: &mut dyn TrialSource,
        storage: &mut TrialStorage,
        seed: u64,
    ) -> ExecReport {
        let cost_is_elapsed = matches!(self.target.objective(), Objective::MinimizeElapsed);
        let mut fan = FanOut {
            collector: MetricsCollector::new(),
            subs: std::mem::take(&mut self.subscribers),
        };
        let mut timer = std::mem::replace(&mut self.timer, Box::new(NullTimer));
        // The executor never snapshots, so the campaign event log stays
        // off; everything else is the shared per-campaign state machine.
        let mut state = CampaignState::new(seed, self.policy, cost_is_elapsed, false);
        while !state.is_done() {
            state.stage(source, &mut self.middleware, &mut fan, timer.as_mut());
            let live = measure_wave(self.target, &self.noise_strategy, &state.staged_live());
            let merged = state.merge_staged(live);
            state.finish_tick(
                self.target,
                &self.noise_strategy,
                source,
                &mut self.middleware,
                &mut fan,
                timer.as_mut(),
                storage,
                merged,
            );
        }
        let metrics = fan.collector.snapshot();
        self.subscribers = fan.subs;
        self.timer = timer;
        state.into_report(metrics)
    }
}

/// Fans every event out to the internal metrics collector and the
/// attached subscribers, in attachment order, on the driver thread.
struct FanOut<'a> {
    collector: MetricsCollector,
    subs: Vec<Box<dyn Subscriber + 'a>>,
}

impl FanOut<'_> {
    fn trial(&mut self, at_s: f64, ev: &TrialEvent) {
        self.collector.on_trial_event(at_s, ev);
        for s in &mut self.subs {
            s.on_trial_event(at_s, ev);
        }
    }

    fn opt(&mut self, at_s: f64, ev: &OptEvent) {
        self.collector.on_opt_event(at_s, ev);
        for s in &mut self.subs {
            s.on_opt_event(at_s, ev);
        }
    }

    fn outcome(&mut self, at_s: f64, outcome: &TrialOutcome) {
        self.collector.on_outcome(at_s, outcome);
        for s in &mut self.subs {
            s.on_outcome(at_s, outcome);
        }
    }

    fn end(&mut self, at_s: f64) {
        self.collector.on_campaign_end(at_s);
        for s in &mut self.subs {
            s.on_campaign_end(at_s);
        }
    }
}

/// Applies an injected fault to a raw measurement. The transient kinds
/// (machine death, outage, hang) lose the measurement — cost NaN,
/// telemetry dropped — while stragglers and corruptions keep a degraded
/// one. Severity semantics are documented on [`Fault`].
fn apply_fault(f: &Fault, m: &mut Measurement, cost_is_elapsed: bool) {
    m.fault = Some(f.kind);
    match f.kind {
        FailureKind::Transient | FailureKind::Outage => {
            // Died `severity` of the way through the run.
            m.cost = f64::NAN;
            m.elapsed_s *= f.severity;
            m.telemetry.clear();
        }
        FailureKind::Hang => {
            // Wedged: never reports a cost; only a timeout frees the slot.
            m.cost = f64::NAN;
            m.elapsed_s *= f.severity;
            m.telemetry.clear();
        }
        FailureKind::Straggler => {
            // Slow but complete. When the objective *is* elapsed time the
            // slowdown contaminates the cost too.
            m.elapsed_s *= f.severity;
            if cost_is_elapsed {
                m.cost *= f.severity;
            }
        }
        FailureKind::Corruption => {
            m.cost *= f.severity;
        }
        FailureKind::ConfigCrash => {
            m.cost = f64::NAN;
        }
    }
}

/// Measures one request with its private RNG stream (the worker-side
/// half of the campaign tick: pure, reentrant, callable from any
/// thread). Workload overrides and machine pins evaluate directly
/// (keeping telemetry); everything else goes through the campaign's
/// noise strategy.
pub fn measure_request(
    target: &Target,
    strategy: &NoiseStrategy,
    req: &TrialRequest,
    eval_seed: u64,
) -> Measurement {
    let mut rng = StdRng::seed_from_u64(eval_seed);
    let rng: &mut dyn RngCore = &mut rng;
    let mut m = if let Some(w) = &req.workload {
        Measurement::from_eval(target.evaluate_at(&req.config, Some(w), rng))
    } else if let Some(m) = req.machine_id {
        Measurement::from_eval(target.evaluate_on_machine(&req.config, m, rng))
    } else if matches!(strategy, NoiseStrategy::Single) {
        Measurement::from_eval(target.evaluate(&req.config, rng))
    } else {
        let baseline = target.space().default_config();
        let (cost, elapsed_s) = strategy.measure(target, &req.config, &baseline, rng);
        Measurement {
            cost,
            elapsed_s,
            machine_id: None,
            telemetry: Vec::new(),
            aborted: false,
            saved_s: 0.0,
            fault: None,
            clock: 0,
        }
    };
    // Stamp the post-evaluation drift-clock position so a recorded
    // measurement carries everything partial-log replay needs to hand
    // the target back at the right point in its drift trajectory.
    m.clock = target.noise_clock();
    m
}

/// Evaluates a wave of dispatched trials, on scoped worker threads when
/// the wave has genuine parallelism (shared [`autotune_linalg::par_map`]
/// machinery). Per-trial RNG streams make the result independent of
/// thread scheduling.
fn measure_wave(target: &Target, strategy: &NoiseStrategy, wave: &[&WorkItem]) -> Vec<Measurement> {
    autotune_linalg::par_map(wave, 2, |_, p| {
        measure_request(target, strategy, &p.req, p.eval_seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::redis_target;
    use crate::TrialStatus;
    use autotune_optimizer::{BayesianOptimizer, Optimizer, RandomSearch};
    use autotune_space::Config;

    fn run_policy(policy: SchedulePolicy, budget: usize, seed: u64) -> (TrialStorage, ExecReport) {
        let target = redis_target();
        let mut opt = RandomSearch::new(target.space().clone());
        let mut source = OptimizerSource::new(&mut opt, budget);
        let mut storage = TrialStorage::new();
        let report = Executor::new(&target, policy).run(&mut source, &mut storage, seed);
        (storage, report)
    }

    #[test]
    fn single_slot_policies_are_byte_identical() {
        // Same seed: the sequential loop, a 1-wide synchronous batch and a
        // 1-slot asynchronous pool must produce the *same campaign*.
        let (seq_s, seq_r) = run_policy(SchedulePolicy::Sequential, 12, 42);
        let (sync_s, sync_r) = run_policy(SchedulePolicy::SyncBatch { k: 1 }, 12, 42);
        let (async_s, async_r) = run_policy(SchedulePolicy::AsyncSlots { k: 1 }, 12, 42);
        assert_eq!(seq_s.to_json(), sync_s.to_json());
        assert_eq!(seq_s.to_json(), async_s.to_json());
        // With one slot there is no parallelism to exploit: wall clock
        // equals machine seconds, bit-for-bit.
        for r in [&seq_r, &sync_r, &async_r] {
            assert_eq!(r.wall_clock_s.to_bits(), r.machine_seconds.to_bits());
        }
        assert_eq!(seq_r.wall_clock_s.to_bits(), async_r.wall_clock_s.to_bits());
        assert_eq!(seq_r.wall_clock_s.to_bits(), sync_r.wall_clock_s.to_bits());
    }

    #[test]
    fn event_stream_covers_every_trial() {
        let (storage, report) = run_policy(SchedulePolicy::AsyncSlots { k: 3 }, 9, 7);
        assert_eq!(storage.len(), 9);
        assert_eq!(report.n_trials, 9);
        let suggested = report
            .events
            .iter()
            .filter(|e| matches!(e, TrialEvent::Suggested { .. }))
            .count();
        let started = report
            .events
            .iter()
            .filter(|e| matches!(e, TrialEvent::Started { .. }))
            .count();
        let terminal = report
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TrialEvent::Finished { .. }
                        | TrialEvent::Crashed { .. }
                        | TrialEvent::Aborted { .. }
                )
            })
            .count();
        assert_eq!((suggested, started, terminal), (9, 9, 9));
    }

    #[test]
    fn async_keeps_slots_busier_than_sync() {
        let run = |policy| {
            let target = crate::test_fixtures::spark_target();
            let mut opt = RandomSearch::new(target.space().clone());
            let mut source = OptimizerSource::new(&mut opt, 24);
            let mut storage = TrialStorage::new();
            let report = Executor::new(&target, policy).run(&mut source, &mut storage, 19);
            report
        };
        let sync = run(SchedulePolicy::SyncBatch { k: 4 });
        let asyn = run(SchedulePolicy::AsyncSlots { k: 4 });
        // Identical per-trial seeds => identical machine seconds; the
        // barrier only changes how much wall clock that work spans.
        assert!((sync.machine_seconds - asyn.machine_seconds).abs() < 1e-9);
        assert!(
            asyn.wall_clock_s < sync.wall_clock_s,
            "async wall {} should beat sync {}",
            asyn.wall_clock_s,
            sync.wall_clock_s
        );
    }

    #[test]
    fn async_never_suggests_a_duplicate_of_an_in_flight_config() {
        // With a model-based optimizer past its init phase, every
        // suggestion gets constant-liar treatment while in flight, so an
        // asynchronous pool must never pile two slots onto one config.
        let target = redis_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let budget = 28;
        let mut source = OptimizerSource::new(&mut opt, budget);
        let mut storage = TrialStorage::new();
        let report = Executor::new(&target, SchedulePolicy::AsyncSlots { k: 4 }).run(
            &mut source,
            &mut storage,
            31,
        );
        let mut in_flight: Vec<(u64, Config)> = Vec::new();
        for event in &report.events {
            match event {
                TrialEvent::Suggested { id, config } => {
                    for (other, c) in &in_flight {
                        assert_ne!(
                            c.render(),
                            config.render(),
                            "trial {id} duplicates in-flight trial {other}"
                        );
                    }
                    in_flight.push((*id, config.clone()));
                }
                TrialEvent::Finished { id, .. }
                | TrialEvent::Crashed { id, .. }
                | TrialEvent::Aborted { id, .. }
                | TrialEvent::FailedTransient { id, .. } => {
                    in_flight.retain(|(other, _)| other != id);
                }
                _ => {}
            }
        }
        assert_eq!(storage.len(), budget);
    }

    #[test]
    fn early_abort_middleware_censors_and_saves() {
        let target = crate::test_fixtures::spark_target();
        let run = |abort: bool, seed: u64| {
            let mut opt = RandomSearch::new(target.space().clone());
            let mut source = OptimizerSource::new(&mut opt, 30);
            let mut storage = TrialStorage::new();
            let mut exec = Executor::new(&target, SchedulePolicy::Sequential);
            if abort {
                exec = exec.with_middleware(Box::new(EarlyAbortMw::new(1.3)));
            }
            let report = exec.run(&mut source, &mut storage, seed);
            (storage, report)
        };
        let (plain_s, plain_r) = run(false, 5);
        let (abort_s, abort_r) = run(true, 5);
        assert!(abort_r.n_aborted > 0);
        assert!(abort_r.saved_s > 0.0);
        assert!(abort_r.machine_seconds < plain_r.machine_seconds);
        // Censoring never changes the winner: the best trial is below the
        // threshold by construction.
        assert_eq!(
            plain_s.best().unwrap().config.render(),
            abort_s.best().unwrap().config.render()
        );
    }

    #[test]
    fn machine_assignment_middleware_pins_trials() {
        use autotune_sim::{CloudNoise, NoiseConfig};
        let target = redis_target().with_noise(CloudNoise::new_fleet(4, NoiseConfig::default(), 3));
        let mut opt = RandomSearch::new(target.space().clone());
        let mut source = OptimizerSource::new(&mut opt, 8);
        let mut storage = TrialStorage::new();
        Executor::new(&target, SchedulePolicy::Sequential)
            .with_middleware(Box::new(MachineAssignMw::round_robin(4)))
            .run(&mut source, &mut storage, 11);
        let machines: Vec<usize> = storage
            .trials()
            .iter()
            .map(|t| t.machine_id.expect("assigned"))
            .collect();
        assert_eq!(machines, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn crash_penalty_rewrites_learn_cost_only() {
        use autotune_space::{Param, Space};
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let target = Target::black_box(space.clone(), Objective::MinimizeLatencyAvg, |c| {
            if c.get_f64("x").unwrap() < 0.5 {
                f64::NAN
            } else {
                1.0
            }
        });
        struct Probe {
            opt: RandomSearch,
            learned: Vec<f64>,
        }
        impl TrialSource for Probe {
            fn next(&mut self, rng: &mut dyn RngCore) -> SourceStep {
                if self.learned.len() + 1 > 10 {
                    return SourceStep::Exhausted;
                }
                SourceStep::Dispatch(TrialRequest::new(self.opt.suggest(rng)))
            }
            fn report(&mut self, outcome: &TrialOutcome) {
                self.learned.push(outcome.learn_cost);
            }
        }
        let mut source = Probe {
            opt: RandomSearch::new(space),
            learned: Vec::new(),
        };
        let mut storage = TrialStorage::new();
        Executor::new(&target, SchedulePolicy::Sequential)
            .with_middleware(Box::new(CrashPenaltyMw::new(1e9)))
            .run(&mut source, &mut storage, 13);
        assert!(storage.n_crashed() > 0, "expected some crashes");
        // Every learner-visible cost is finite; crashed trials stay NaN in
        // storage.
        assert!(source.learned.iter().all(|c| c.is_finite()));
        assert!(source.learned.iter().filter(|c| **c == 1e9).count() > 0);
        assert!(storage
            .trials()
            .iter()
            .any(|t| t.status == TrialStatus::Crashed && t.cost.is_nan()));
    }

    fn faulty_target(seed: u64) -> Target {
        use autotune_sim::{CloudNoise, FaultPlan, NoiseConfig};
        redis_target()
            .with_noise(CloudNoise::new_fleet(4, NoiseConfig::default(), seed))
            .with_faults(FaultPlan::aggressive(seed))
    }

    fn resilient_exec(target: &Target, policy: SchedulePolicy) -> Executor<'_> {
        Executor::new(target, policy)
            .with_middleware(Box::new(MachineAssignMw::round_robin(4)))
            .with_middleware(Box::new(QuarantineMw::with_defaults(4)))
            .with_middleware(Box::new(RetryMw::new(3, 5.0)))
            .with_middleware(Box::new(TimeoutMw::new(600.0)))
            .with_middleware(Box::new(CrashPenaltyMw::new(1e9)))
    }

    #[test]
    fn single_slot_policies_stay_identical_under_faults() {
        // The PR 1 determinism contract must survive the full resilience
        // stack: faults, retries, timeouts and quarantine are all driven
        // by (seed, trial, attempt), never by wall-clock or thread timing.
        let run = |policy| {
            let target = faulty_target(5);
            let mut opt = RandomSearch::new(target.space().clone());
            let mut source = OptimizerSource::new(&mut opt, 16);
            let mut storage = TrialStorage::new();
            let report = resilient_exec(&target, policy).run(&mut source, &mut storage, 5);
            (storage.to_json(), report)
        };
        let (seq_j, seq_r) = run(SchedulePolicy::Sequential);
        let (sync_j, _) = run(SchedulePolicy::SyncBatch { k: 1 });
        let (async_j, async_r) = run(SchedulePolicy::AsyncSlots { k: 1 });
        assert_eq!(seq_j, sync_j);
        assert_eq!(seq_j, async_j);
        assert_eq!(seq_r.wall_clock_s.to_bits(), async_r.wall_clock_s.to_bits());
        assert_eq!(seq_r.n_retried, async_r.n_retried);
    }

    #[test]
    fn retries_recover_transient_failures() {
        let run = |retry: bool| {
            let target = faulty_target(21);
            let mut opt = RandomSearch::new(target.space().clone());
            let mut source = OptimizerSource::new(&mut opt, 40);
            let mut storage = TrialStorage::new();
            let mut exec = Executor::new(&target, SchedulePolicy::Sequential);
            if retry {
                exec = exec.with_middleware(Box::new(RetryMw::new(3, 5.0)));
            }
            let report = exec.run(&mut source, &mut storage, 21);
            (storage, report)
        };
        let (naive_s, naive_r) = run(false);
        let (retry_s, retry_r) = run(true);
        assert_eq!(naive_r.n_retried, 0);
        assert!(
            retry_r.n_retried > 0,
            "aggressive plan should trigger retries"
        );
        // Retrying transient losses converts most of them back into
        // completed measurements.
        assert!(
            retry_s.n_transient_failures() < naive_s.n_transient_failures(),
            "retries should recover trials: {} vs {}",
            retry_s.n_transient_failures(),
            naive_s.n_transient_failures()
        );
        // Retried trials carry their attempt count into storage.
        assert!(retry_s.trials().iter().any(|t| t.retries > 0));
    }

    #[test]
    fn timeout_converts_hangs_into_aborts() {
        use autotune_sim::FaultPlan;
        let mut plan = FaultPlan::new(9);
        plan.hang_prob = 0.3; // force plenty of hangs
        let target = redis_target().with_faults(plan);
        let budget_s = 400.0;
        let run = |timeout: bool| {
            let mut opt = RandomSearch::new(target.space().clone());
            let mut source = OptimizerSource::new(&mut opt, 30);
            let mut storage = TrialStorage::new();
            let mut exec = Executor::new(&target, SchedulePolicy::Sequential);
            if timeout {
                exec = exec.with_middleware(Box::new(TimeoutMw::new(budget_s)));
            }
            let report = exec.run(&mut source, &mut storage, 9);
            (storage, report)
        };
        let (hang_s, hang_r) = run(false);
        let (cut_s, cut_r) = run(true);
        assert!(cut_r.n_aborted > 0, "hangs should be timed out");
        assert!(cut_s
            .trials()
            .iter()
            .all(|t| t.elapsed_s <= budget_s + 1e-9));
        // Without the timeout the hangs burn their full inflated runtime.
        assert!(hang_s.trials().iter().any(|t| t.elapsed_s > budget_s));
        assert!(cut_r.machine_seconds < hang_r.machine_seconds);
        // A timed-out hang is an abort, not a crash: the learner is not
        // told the configuration was bad.
        assert_eq!(hang_r.n_aborted, 0);
        assert!(cut_s
            .trials()
            .iter()
            .any(|t| t.status == TrialStatus::Aborted));
    }

    #[test]
    fn quarantine_steers_trials_off_a_sick_machine() {
        use autotune_sim::{CloudNoise, FaultPlan, NoiseConfig};
        let target = redis_target()
            .with_noise(CloudNoise::new_fleet(4, NoiseConfig::default(), 7))
            .with_faults(FaultPlan::new(7).with_sick_machine(0, 20.0));
        let mut opt = RandomSearch::new(target.space().clone());
        let mut source = OptimizerSource::new(&mut opt, 60);
        let mut storage = TrialStorage::new();
        let report = Executor::new(&target, SchedulePolicy::Sequential)
            .with_middleware(Box::new(MachineAssignMw::round_robin(4)))
            .with_middleware(Box::new(QuarantineMw::with_defaults(4)))
            .run(&mut source, &mut storage, 7);
        assert!(
            report.n_quarantined_machines >= 1,
            "the sick machine should get quarantined"
        );
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, TrialEvent::Quarantined { machine_id: 0 })));
        // While quarantined, machine 0 receives no trials: round-robin
        // would land every 4th trial there, so it must see fewer.
        let on_sick = storage
            .trials()
            .iter()
            .filter(|t| t.machine_id == Some(0))
            .count();
        assert!(
            on_sick < storage.len() / 4,
            "quarantine should deflect trials: {on_sick}/{}",
            storage.len()
        );
    }

    #[test]
    fn transient_failures_bypass_the_learner() {
        use autotune_sim::FaultPlan;
        struct Probe {
            opt: RandomSearch,
            n: usize,
            learned: Vec<f64>,
        }
        impl TrialSource for Probe {
            fn next(&mut self, rng: &mut dyn RngCore) -> SourceStep {
                if self.n >= 40 {
                    return SourceStep::Exhausted;
                }
                self.n += 1;
                SourceStep::Dispatch(TrialRequest::new(self.opt.suggest(rng)))
            }
            fn report(&mut self, outcome: &TrialOutcome) {
                if outcome.status == TrialStatus::TransientFailure {
                    self.learned.push(outcome.learn_cost);
                }
            }
        }
        let target = redis_target().with_faults(FaultPlan::aggressive(13));
        let run = |naive: bool| {
            let mut source = Probe {
                opt: RandomSearch::new(target.space().clone()),
                n: 0,
                learned: Vec::new(),
            };
            let mut storage = TrialStorage::new();
            let mw: Box<dyn Middleware> = if naive {
                Box::new(CrashPenaltyMw::naive(1e9))
            } else {
                Box::new(CrashPenaltyMw::new(1e9))
            };
            Executor::new(&target, SchedulePolicy::Sequential)
                .with_middleware(mw)
                .run(&mut source, &mut storage, 13);
            source.learned
        };
        let strict = run(false);
        let naive = run(true);
        assert!(!strict.is_empty(), "aggressive plan should lose trials");
        // Status-gated penalty leaves transient losses NaN (the source
        // drops them); the naive variant feeds them in as crash penalties.
        assert!(strict.iter().all(|c| c.is_nan()));
        assert!(naive.iter().all(|c| *c == 1e9));
    }
}

//! Typed request/response control protocol for a campaign server.
//!
//! The serving layer exposes the registry over a byte stream: requests
//! and responses are JSON documents framed by a little-endian `u32`
//! length prefix, so any ordered transport works. This module provides
//! the message types, the framing ([`write_frame`] / [`read_frame`]),
//! an in-process duplex [`pipe`] built on a pair of blocking byte
//! queues, and a [`Server`] loop plus [`Client`] handle.
//!
//! [`Campaign`](autotune::Campaign) is deliberately not `Send` (it may
//! borrow thread-local subscribers), so the registry is constructed
//! *inside* the server thread by a `Send` builder closure; only spec
//! descriptions, snapshots and stats — plain serializable data — cross
//! the pipe.

use crate::registry::{CampaignRegistry, CampaignStats, FleetStats, ServeError};
use crate::spec::CampaignSpec;
use autotune::CampaignSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// A control request to the campaign server.
// Register dominates the enum size by carrying a whole CampaignSpec, but
// requests are transient (framed, handled, dropped) and never stored in
// bulk, so the usual boxing remedy buys nothing here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Build and register a campaign from a spec; answers
    /// [`Response::Registered`].
    Register {
        /// The campaign description.
        spec: CampaignSpec,
    },
    /// Execute scheduling rounds; answers [`Response::Stepped`].
    Step {
        /// How many rounds (each round services every eligible campaign).
        rounds: u32,
    },
    /// Run rounds until the whole fleet is done or stopped; answers
    /// [`Response::Stepped`].
    RunAll,
    /// Snapshot one campaign; answers [`Response::Snapshot`].
    Snapshot {
        /// Registry id.
        id: u64,
    },
    /// Per-campaign stats; answers [`Response::Stats`].
    Stats {
        /// Registry id.
        id: u64,
    },
    /// Aggregate stats; answers [`Response::Fleet`].
    FleetStats,
    /// Stop serving one campaign; answers [`Response::Stopped`].
    Stop {
        /// Registry id.
        id: u64,
    },
    /// Shut the server down; answers [`Response::Bye`].
    Shutdown,
}

/// A server reply. Every request gets exactly one response, in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Campaign registered under this id.
    Registered {
        /// Registry-assigned id.
        id: u64,
    },
    /// Rounds executed.
    Stepped {
        /// Rounds actually run.
        rounds: u64,
        /// Campaigns still active afterwards.
        n_active: u64,
    },
    /// A campaign snapshot (seed + policy + event log + drift clock).
    Snapshot {
        /// The snapshot.
        snapshot: CampaignSnapshot,
    },
    /// Per-campaign stats.
    Stats {
        /// The stats.
        stats: CampaignStats,
    },
    /// Aggregate fleet stats.
    Fleet {
        /// The stats.
        stats: FleetStats,
    },
    /// Campaign stopped.
    Stopped {
        /// Whether it was active before the stop.
        was_active: bool,
    },
    /// Server is shutting down.
    Bye,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), ServeError> {
    let body = serde_json::to_string(msg).map_err(|e| ServeError::Protocol(e.to_string()))?;
    let bytes = body.as_bytes();
    let len =
        u32::try_from(bytes.len()).map_err(|_| ServeError::Protocol("frame over 4 GiB".into()))?;
    w.write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(bytes))
        .and_then(|()| w.flush())
        .map_err(|e| ServeError::Protocol(e.to_string()))
}

/// Reads one length-prefixed JSON frame; `Ok(None)` on clean EOF at a
/// frame boundary.
pub fn read_frame<T: for<'de> Deserialize<'de>>(
    r: &mut impl Read,
) -> Result<Option<T>, ServeError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ServeError::Protocol(e.to_string())),
    }
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    r.read_exact(&mut body)
        .map_err(|e| ServeError::Protocol(e.to_string()))?;
    let text = std::str::from_utf8(&body).map_err(|e| ServeError::Protocol(e.to_string()))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| ServeError::Protocol(e.to_string()))
}

/// One direction of the in-process pipe: a blocking bounded-by-nothing
/// byte queue. `Read` blocks until bytes arrive or the write side hangs
/// up.
#[derive(Default)]
struct ByteQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl ByteQueue {
    fn push(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut st = lock_queue(&self.state);
        if st.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe closed",
            ));
        }
        st.buf.extend(bytes);
        self.ready.notify_all();
        Ok(())
    }

    fn pop(&self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut st = lock_queue(&self.state);
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0);
            }
            st = wait_queue(&self.ready, st);
        }
        let n = out.len().min(st.buf.len());
        for slot in out.iter_mut().take(n) {
            // The loop guard guarantees the queue is non-empty here.
            *slot = st.buf.pop_front().unwrap_or(0);
        }
        Ok(n)
    }

    fn close(&self) {
        lock_queue(&self.state).closed = true;
        self.ready.notify_all();
    }
}

/// Mutex poisoning only happens after a panic in a peer thread; at that
/// point the pipe is dead anyway, so recover the guard and let the
/// closed/EOF paths surface the failure.
fn lock_queue(m: &Mutex<QueueState>) -> std::sync::MutexGuard<'_, QueueState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait_queue<'a>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, QueueState>,
) -> std::sync::MutexGuard<'a, QueueState> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One end of an in-process duplex byte pipe. `Send`, so either end can
/// move into a thread. Dropping an end closes both directions it owns.
pub struct PipeEnd {
    rx: Arc<ByteQueue>,
    tx: Arc<ByteQueue>,
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.rx.pop(buf)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx.push(buf).map(|()| buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

/// Creates a connected duplex pipe: bytes written to one end are read
/// from the other.
pub fn pipe() -> (PipeEnd, PipeEnd) {
    let a = Arc::new(ByteQueue::default());
    let b = Arc::new(ByteQueue::default());
    (
        PipeEnd {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        PipeEnd { rx: b, tx: a },
    )
}

/// Serves a registry over a framed byte stream until `Shutdown`, clean
/// EOF, or a transport error. Request-level failures (unknown id,
/// campaign errors) are answered with [`Response::Error`] and the loop
/// continues.
pub struct Server<S: Read + Write> {
    stream: S,
    registry: CampaignRegistry,
}

impl<S: Read + Write> Server<S> {
    /// A server over `stream` driving `registry`.
    pub fn new(stream: S, registry: CampaignRegistry) -> Self {
        Server { stream, registry }
    }

    /// Runs the request loop to completion, returning the registry (for
    /// post-mortem inspection in tests and tools).
    pub fn serve(mut self) -> Result<CampaignRegistry, ServeError> {
        while let Some(req) = read_frame::<Request>(&mut self.stream)? {
            let shutdown = matches!(req, Request::Shutdown);
            let resp = self.handle(req);
            write_frame(&mut self.stream, &resp)?;
            if shutdown {
                break;
            }
        }
        Ok(self.registry)
    }

    fn handle(&mut self, req: Request) -> Response {
        match self.try_handle(req) {
            Ok(resp) => resp,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }

    fn try_handle(&mut self, req: Request) -> Result<Response, ServeError> {
        Ok(match req {
            Request::Register { spec } => Response::Registered {
                id: self.registry.register_spec(&spec),
            },
            Request::Step { rounds } => {
                let mut run = 0;
                for _ in 0..rounds {
                    if self.registry.n_active() == 0 {
                        break;
                    }
                    self.registry.step_round()?;
                    run += 1;
                }
                Response::Stepped {
                    rounds: run,
                    n_active: self.registry.n_active() as u64,
                }
            }
            Request::RunAll => {
                let rounds = self.registry.run_all()?;
                Response::Stepped {
                    rounds,
                    n_active: self.registry.n_active() as u64,
                }
            }
            Request::Snapshot { id } => Response::Snapshot {
                snapshot: self.registry.snapshot(id)?,
            },
            Request::Stats { id } => Response::Stats {
                stats: self.registry.stats(id)?,
            },
            Request::FleetStats => Response::Fleet {
                stats: self.registry.fleet_stats(),
            },
            Request::Stop { id } => Response::Stopped {
                was_active: self.registry.stop(id)?,
            },
            Request::Shutdown => Response::Bye,
        })
    }
}

/// Client handle over a framed byte stream. One in-flight request at a
/// time; responses arrive in request order.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> Client<S> {
    /// A client over `stream`.
    pub fn new(stream: S) -> Self {
        Client { stream }
    }

    /// Sends `req` and blocks for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)?.ok_or_else(|| ServeError::Protocol("server hung up".into()))
    }

    /// Registers a spec, returning the assigned id.
    pub fn register(&mut self, spec: &CampaignSpec) -> Result<u64, ServeError> {
        match self.request(&Request::Register { spec: spec.clone() })? {
            Response::Registered { id } => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs `rounds` scheduling rounds; returns (rounds run, active
    /// campaigns remaining).
    pub fn step(&mut self, rounds: u32) -> Result<(u64, u64), ServeError> {
        match self.request(&Request::Step { rounds })? {
            Response::Stepped { rounds, n_active } => Ok((rounds, n_active)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs the fleet to completion; returns rounds run.
    pub fn run_all(&mut self) -> Result<u64, ServeError> {
        match self.request(&Request::RunAll)? {
            Response::Stepped { rounds, .. } => Ok(rounds),
            other => Err(unexpected(&other)),
        }
    }

    /// Snapshots a campaign.
    pub fn snapshot(&mut self, id: u64) -> Result<CampaignSnapshot, ServeError> {
        match self.request(&Request::Snapshot { id })? {
            Response::Snapshot { snapshot } => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches per-campaign stats.
    pub fn stats(&mut self, id: u64) -> Result<CampaignStats, ServeError> {
        match self.request(&Request::Stats { id })? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches aggregate fleet stats.
    pub fn fleet_stats(&mut self) -> Result<FleetStats, ServeError> {
        match self.request(&Request::FleetStats)? {
            Response::Fleet { stats } => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Stops serving a campaign.
    pub fn stop(&mut self, id: u64) -> Result<bool, ServeError> {
        match self.request(&Request::Stop { id })? {
            Response::Stopped { was_active } => Ok(was_active),
            other => Err(unexpected(&other)),
        }
    }

    /// Shuts the server down.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    match resp {
        Response::Error { message } => ServeError::Protocol(message.clone()),
        other => ServeError::Protocol(format!("unexpected response: {other:?}")),
    }
}

/// Spawns a server thread over an in-process pipe and returns the
/// connected client plus the server's join handle, which yields the
/// final fleet stats (campaigns themselves are not `Send`, so the
/// registry cannot cross back; `builder` runs inside the server thread
/// for the same reason).
pub fn spawn_server(
    builder: impl FnOnce() -> CampaignRegistry + Send + 'static,
) -> (
    Client<PipeEnd>,
    std::thread::JoinHandle<Result<FleetStats, ServeError>>,
) {
    let (client_end, server_end) = pipe();
    let handle = std::thread::spawn(move || {
        Server::new(server_end, builder())
            .serve()
            .map(|registry| registry.fleet_stats())
    });
    (Client::new(client_end), handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, SystemKind};
    use autotune::SchedulePolicy;

    fn spec(i: u64) -> CampaignSpec {
        let mut s = CampaignSpec::minimal(format!("p{i}"), SystemKind::Redis, 5, 100 + i);
        s.policy = SchedulePolicy::AsyncSlots { k: 2 };
        s
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        let req = Request::Step { rounds: 3 };
        write_frame(&mut buf, &req).unwrap();
        let mut r = &buf[..];
        let back: Request = read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(back, Request::Step { rounds: 3 }));
        let eof: Option<Request> = read_frame(&mut r).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn pipe_moves_bytes_across_threads() {
        let (mut a, mut b) = pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        a.write_all(b"hello").unwrap();
        assert_eq!(&t.join().unwrap(), b"hello");
    }

    #[test]
    fn server_round_trip_determinism_matches_direct_registry() {
        // Drive the same fleet through the protocol and directly; the
        // served histories must be byte-identical to direct serving.
        let mut direct = CampaignRegistry::new(2);
        let direct_ids: Vec<u64> = (0..3).map(|i| direct.register_spec(&spec(i))).collect();
        direct.run_all().unwrap();

        let (mut client, handle) = spawn_server(|| CampaignRegistry::new(2));
        let ids: Vec<u64> = (0..3).map(|i| client.register(&spec(i)).unwrap()).collect();
        client.run_all().unwrap();
        for (id, direct_id) in ids.iter().zip(&direct_ids) {
            let st = client.stats(*id).unwrap();
            let want = direct.stats(*direct_id).unwrap();
            assert!(st.done);
            assert_eq!(st.n_trials, want.n_trials);
            assert_eq!(st.best_cost.to_bits(), want.best_cost.to_bits());
            assert_eq!(st.virtual_busy_s.to_bits(), want.virtual_busy_s.to_bits());
        }
        let snap = client.snapshot(ids[1]).unwrap();
        assert_eq!(
            serde_json::to_string(&snap).unwrap(),
            serde_json::to_string(&direct.snapshot(direct_ids[1]).unwrap()).unwrap()
        );
        client.shutdown().unwrap();
        let fleet = handle.join().unwrap().unwrap();
        assert_eq!(fleet.n_active, 0);
        assert_eq!(fleet.n_done, 3);
    }

    #[test]
    fn request_errors_keep_connection_usable() {
        let (mut client, handle) = spawn_server(|| CampaignRegistry::new(1));
        assert!(client.stats(99).is_err());
        let id = client.register(&spec(0)).unwrap();
        client.run_all().unwrap();
        assert!(client.stats(id).unwrap().done);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn dropping_client_ends_server_cleanly() {
        let (client, handle) = spawn_server(|| CampaignRegistry::new(1));
        drop(client);
        assert!(handle.join().unwrap().is_ok());
    }
}

//! Cross-cutting trial machinery as a composable middleware chain.
//!
//! Each [`Middleware`] sees every trial at three points: before dispatch
//! (annotate the request — machine pinning, guardrails), after measurement
//! (transform cost/elapsed — early-abort censoring), and at completion
//! (rewrite what the learner is told — crash penalties).

use super::event::{Measurement, TrialOutcome, TrialRequest};
use crate::EarlyAbort;
use rand::{Rng, RngCore};
use std::borrow::BorrowMut;

/// A cross-cutting hook on the trial lifecycle.
pub trait Middleware {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// Adjusts a request before it is dispatched.
    fn before_dispatch(&mut self, _req: &mut TrialRequest, _rng: &mut dyn RngCore) {}

    /// Transforms a measurement (censoring, clamping).
    /// `cost_is_elapsed` is true when the objective is elapsed time, the
    /// case where censoring is exact.
    fn after_measure(&mut self, _m: &mut Measurement, _cost_is_elapsed: bool) {}

    /// Rewrites a finalized outcome before the source sees it.
    fn on_outcome(&mut self, _outcome: &mut TrialOutcome) {}
}

/// Early-abort censoring (tutorial slide 69) as middleware: trials slower
/// than `ratio x` the incumbent are cut at the threshold, charging only
/// the time-to-threshold.
///
/// Generic over ownership so a campaign can either own its policy
/// ([`EarlyAbortMw::new`]) or thread a long-lived one through several
/// runs ([`EarlyAbortMw::over`]).
pub struct EarlyAbortMw<P: BorrowMut<EarlyAbort>> {
    policy: P,
}

impl EarlyAbortMw<EarlyAbort> {
    /// An owned policy with the given abort ratio.
    pub fn new(ratio: f64) -> Self {
        EarlyAbortMw {
            policy: EarlyAbort::new(ratio),
        }
    }
}

impl<'a> EarlyAbortMw<&'a mut EarlyAbort> {
    /// Borrows a caller-owned policy (its incumbent and savings stats
    /// survive the run).
    pub fn over(policy: &'a mut EarlyAbort) -> Self {
        EarlyAbortMw { policy }
    }
}

impl<P: BorrowMut<EarlyAbort>> Middleware for EarlyAbortMw<P> {
    fn name(&self) -> &str {
        "early-abort"
    }

    fn after_measure(&mut self, m: &mut Measurement, cost_is_elapsed: bool) {
        let (cost, charged, aborted) =
            self.policy
                .borrow_mut()
                .process(m.cost, m.elapsed_s, cost_is_elapsed);
        if aborted {
            m.saved_s += m.elapsed_s - charged;
            m.aborted = true;
        }
        m.cost = cost;
        m.elapsed_s = charged;
    }
}

/// Crash-penalty middleware (tutorial slide 67): the stored trial keeps
/// its NaN cost, but the learner is told a large finite penalty so its
/// running statistics stay well-defined (bandits, RL).
pub struct CrashPenaltyMw {
    penalty: f64,
}

impl CrashPenaltyMw {
    /// Penalty value reported to the learner for crashed trials.
    pub fn new(penalty: f64) -> Self {
        CrashPenaltyMw { penalty }
    }
}

impl Middleware for CrashPenaltyMw {
    fn name(&self) -> &str {
        "crash-penalty"
    }

    fn on_outcome(&mut self, outcome: &mut TrialOutcome) {
        if !outcome.cost.is_finite() {
            outcome.learn_cost = self.penalty;
        }
    }
}

/// Machine-assignment middleware for noise experiments (TUNA-style):
/// spreads trials across a fleet of `n_machines`, either round-robin or
/// uniformly at random from the suggestion stream.
pub struct MachineAssignMw {
    n_machines: usize,
    round_robin: bool,
    next: usize,
}

impl MachineAssignMw {
    /// Round-robin assignment over `n_machines`.
    pub fn round_robin(n_machines: usize) -> Self {
        assert!(n_machines >= 1, "need at least one machine");
        MachineAssignMw {
            n_machines,
            round_robin: true,
            next: 0,
        }
    }

    /// Uniform random assignment over `n_machines`.
    pub fn random(n_machines: usize) -> Self {
        assert!(n_machines >= 1, "need at least one machine");
        MachineAssignMw {
            n_machines,
            round_robin: false,
            next: 0,
        }
    }
}

impl Middleware for MachineAssignMw {
    fn name(&self) -> &str {
        "machine-assign"
    }

    fn before_dispatch(&mut self, req: &mut TrialRequest, rng: &mut dyn RngCore) {
        if req.machine_id.is_some() {
            return; // the source pinned it explicitly
        }
        let m = if self.round_robin {
            let m = self.next % self.n_machines;
            self.next += 1;
            m
        } else {
            rng.gen_range(0..self.n_machines)
        };
        req.machine_id = Some(m);
    }
}

//! Criterion benchmarks of the end-to-end tuning loop: optimizer suggest
//! throughput with a fitted model, simulator trial rate, and space
//! encode/decode — the per-trial overheads of the framework itself.

use autotune_optimizer::{BayesianOptimizer, CmaEs, CmaEsConfig, Optimizer, RandomSearch};
use autotune_sim::{DbmsSim, Environment, RedisSim, SimSystem, Workload};
use autotune_space::Space;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dbms_space() -> Space {
    DbmsSim::new().space().clone()
}

fn bench_suggest(c: &mut Criterion) {
    let mut group = c.benchmark_group("suggest");
    group.sample_size(20);

    // BO with 30 observations already in the model.
    let seed_bo = || {
        let mut opt = BayesianOptimizer::gp(dbms_space());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let cfg = opt.suggest(&mut rng);
            let x: f64 = cfg.get_f64("buffer_pool_gb").unwrap_or(1.0);
            opt.observe(&cfg, (x - 8.0).abs());
        }
        (opt, rng)
    };
    group.bench_function("bo_gp_30obs", |b| {
        let (mut opt, mut rng) = seed_bo();
        b.iter(|| opt.suggest(&mut rng));
    });
    group.bench_function("random", |b| {
        let mut opt = RandomSearch::new(dbms_space());
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| opt.suggest(&mut rng));
    });
    group.bench_function("cma_es", |b| {
        let mut opt = CmaEs::new(dbms_space(), CmaEsConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let cfg = opt.suggest(&mut rng);
            opt.observe(&cfg, 1.0);
            cfg
        });
    });
    group.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_trial");
    let env = Environment::medium();
    {
        let sim = RedisSim::new();
        let cfg = sim.space().default_config();
        let w = Workload::kv_cache(20_000.0);
        group.bench_function("redis", |b| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| sim.run_trial(&cfg, &w, &env, &mut rng));
        });
    }
    {
        let sim = DbmsSim::new();
        let cfg = sim.space().default_config();
        let w = Workload::tpcc(500.0);
        group.bench_function("dbms", |b| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| sim.run_trial(&cfg, &w, &env, &mut rng));
        });
    }
    group.finish();
}

fn bench_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("space");
    let space = dbms_space();
    let mut rng = StdRng::seed_from_u64(6);
    let cfg = space.sample(&mut rng);
    group.bench_function("sample", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| space.sample(&mut rng));
    });
    group.bench_function("encode_unit", |b| {
        b.iter(|| space.encode_unit(&cfg).expect("encodes"));
    });
    group.bench_function("encode_onehot", |b| {
        b.iter(|| space.encode_onehot(&cfg).expect("encodes"));
    });
    let x = space.encode_unit(&cfg).expect("encodes");
    group.bench_function("decode_unit", |b| {
        b.iter(|| space.decode_unit(&x).expect("decodes"));
    });
    group.finish();
}

criterion_group!(benches, bench_suggest, bench_simulators, bench_space);
criterion_main!(benches);

//! E35 (ROADMAP item 1, request-time serving): a fingerprint-keyed
//! config cache amortizes tuning across a multi-tenant fleet.
//!
//! A synthetic Zipf tenant population ([`TenantFleet`]: 12 workload
//! families, 300 tenants, hot-skewed request popularity) streams
//! lookups through a [`TenantRouter`]. Every miss admits one tuning
//! campaign for the family (single-flight); its best trial backfills
//! the cache; later tenants of the family borrow the incumbent.
//!
//! Four claims, matching the paper's amortization premise:
//!
//! * **Hit rate** — after the cold-start transient, ≥ 95 % of the
//!   request stream is served from cache (most workloads repeat).
//! * **Regret** — the served (family-incumbent) config is within 5 % of
//!   what a dedicated per-tenant campaign achieves, evaluated on each
//!   tenant's own target with a fixed seed.
//! * **Recovery** — replaying the WAL-journaled op stream rebuilds the
//!   cache byte-identically (hit/miss behavior survives a crash).
//! * **Throughput** — concurrent lookups on the sharded read path
//!   sustain ≥ 1 M/s (measured only in release builds; the `cache_fleet`
//!   bin records the trajectory).

use crate::report::Report;
use autotune::{measure_request, NoiseStrategy, Objective, Target, TrialRequest};
use autotune_cache::ShardedCache;
use autotune_serve::{
    CampaignSpec, RouterConfig, RouterLookup, SystemKind, TenantRouter, WalConfig,
};
use autotune_sim::{Environment, Workload};
use autotune_wid::{Tenant, TenantFleet, TenantFleetConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// Fleet shape shared with the `cache_fleet` bin.
pub fn fleet_config() -> TenantFleetConfig {
    TenantFleetConfig {
        n_families: 12,
        n_tenants: 300,
        dim: 12,
        zipf_exponent: 1.1,
        separation: 10.0,
        jitter: 0.25,
        rate_spread: 0.03,
        seed: 35,
    }
}

/// Requests in the Zipf stream.
pub const N_REQUESTS: usize = 4_000;
/// Fixed seed for regret evaluations (same seed for served and tuned
/// configs, so the comparison is noise-free).
const EVAL_SEED: u64 = 0xE35;

/// The campaign a missing tenant enqueues: tune the tenant's own
/// workload (offered rate scaled by its intensity). Same-family tenants
/// produce nearly identical specs, which is exactly why the family
/// incumbent serves them all well.
pub fn tenant_spec(t: &Tenant) -> CampaignSpec {
    let mut s = CampaignSpec::minimal(
        format!("tenant-{}", t.id),
        SystemKind::Redis,
        32,
        35_000 + t.family as u64,
    );
    s.workload = Workload::kv_cache(50_000.0 * t.rate_scale);
    s.environment = Environment::small();
    s.objective = Objective::MinimizeLatencyAvg;
    s
}

/// Router shape for the fleet: spawn threshold from the fleet's own
/// geometry, everything else default.
pub fn router_config(fleet_cfg: &TenantFleetConfig) -> RouterConfig {
    let mut rc = RouterConfig::default();
    rc.cache.threshold = TenantFleet::recommended_threshold(fleet_cfg);
    rc
}

/// Evaluates `config`'s cost on the tenant's own target with a fixed
/// eval seed.
fn eval_on_tenant(t: &Tenant, config: &autotune_space::Config) -> f64 {
    let target = Target::simulated(
        SystemKind::Redis.build(),
        Workload::kv_cache(50_000.0 * t.rate_scale),
        Environment::small(),
        Objective::MinimizeLatencyAvg,
    );
    measure_request(
        &target,
        &NoiseStrategy::Single,
        &TrialRequest::new(config.clone()),
        EVAL_SEED,
    )
    .cost
}

/// What a dedicated campaign on the tenant's own target achieves.
fn tuned_cost(t: &Tenant) -> f64 {
    let mut spec = tenant_spec(t);
    spec.name = format!("tuned-{}", t.id);
    spec.seed = 70_000 + t.id as u64;
    let mut campaign = spec.build();
    campaign.run();
    let best = campaign
        .storage()
        .best()
        .expect("tuning campaign produced no finite trial")
        .config
        .clone();
    eval_on_tenant(t, &best)
}

/// Drives the Zipf stream through a fresh router in `dir`; returns the
/// router plus (hits, misses) observed.
pub fn drive_stream(
    dir: &std::path::Path,
    fleet: &TenantFleet,
    config: RouterConfig,
    n_requests: usize,
) -> (TenantRouter, u64, u64) {
    let mut router =
        TenantRouter::create(dir, 2, WalConfig::default(), config).expect("create router");
    let mut rng = StdRng::seed_from_u64(35);
    let mut hits = 0;
    let mut misses = 0;
    for _ in 0..n_requests {
        let tenant = fleet.sample(&mut rng);
        let out = router
            .lookup(tenant.fingerprint.features(), &tenant_spec(tenant))
            .expect("lookup");
        match out {
            RouterLookup::Hit(_) => hits += 1,
            RouterLookup::Miss { .. } => misses += 1,
        }
        // One scheduling round per request: campaigns make progress
        // while the stream flows, so the cold-start window is realistic
        // rather than instantaneous.
        router.step_round().expect("round");
    }
    router.run_all().expect("drain");
    (router, hits, misses)
}

/// Concurrent lookup throughput on the warmed cache (lookups/second):
/// `threads` threads hammer the sharded read path with hot fingerprints.
fn lookup_throughput(cache: &Arc<ShardedCache>, fleet: &TenantFleet, threads: usize) -> f64 {
    let hot: Vec<Vec<f64>> = fleet
        .tenants()
        .iter()
        .take(32)
        .map(|t| t.fingerprint.features().to_vec())
        .collect();
    let per_thread = 250_000usize;
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|ti| {
            let cache = Arc::clone(cache);
            let hot = hot.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let fp = &hot[(ti + i) % hot.len()];
                    std::hint::black_box(cache.lookup(fp));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("throughput thread");
    }
    (threads * per_thread) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Runs the experiment.
pub fn run() -> Report {
    let fleet_cfg = fleet_config();
    let fleet = TenantFleet::generate(&fleet_cfg).expect("fleet");
    let dir = std::env::temp_dir().join(format!("autotune-e35-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (router, hits, misses) = drive_stream(&dir, &fleet, router_config(&fleet_cfg), N_REQUESTS);
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let cache_stats = router.cache_stats();

    // Regret: every 13th tenant (hot and tail alike) asks the warmed
    // cache for a config and we compare against its own tuned optimum.
    let mut regrets = Vec::new();
    let mut served_cache = router;
    for t in fleet.tenants().iter().step_by(13) {
        let out = served_cache
            .lookup(t.fingerprint.features(), &tenant_spec(t))
            .expect("warm lookup");
        let RouterLookup::Hit(hit) = out else {
            // A tail family whose sole entry was evicted would miss; the
            // fleet shape keeps every family warm, so treat it as a
            // failure signal rather than skipping silently.
            regrets.push(f64::INFINITY);
            continue;
        };
        let served = eval_on_tenant(t, &hit.config);
        let tuned = tuned_cost(t);
        regrets.push(served / tuned.max(1e-12));
    }
    let mean_regret = regrets.iter().sum::<f64>() / regrets.len() as f64;
    let max_regret = regrets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    // Recovery: replay the WAL op journal and compare full cache state
    // (entries, ticks, counters, clustering — CacheSnapshot is PartialEq).
    let live_snapshot = served_cache.cache().snapshot();
    drop(served_cache);
    let replay_identical = match TenantRouter::open(&dir, 2, WalConfig::default()) {
        Ok((reopened, _)) => reopened.cache().snapshot() == live_snapshot,
        Err(_) => false,
    };

    // Throughput: release builds only (a debug-build number would gate
    // on compiler flags, not on the design).
    let (rate_row, rate_ok) = if cfg!(debug_assertions) {
        ("skipped (debug build)".to_string(), true)
    } else {
        let warm = TenantRouter::open(&dir, 2, WalConfig::default())
            .expect("reopen for throughput")
            .0;
        let rate = lookup_throughput(warm.cache(), &fleet, 4);
        (format!("{:.2} M/s", rate / 1e6), rate >= 1_000_000.0)
    };
    let _ = std::fs::remove_dir_all(&dir);

    let rows = vec![
        vec![
            "cache hit rate".into(),
            format!("{:.2} %", hit_rate * 100.0),
            format!("{hits} hits / {misses} misses over {N_REQUESTS} requests"),
        ],
        vec![
            "families spawned".into(),
            format!("{}", cache_stats.families),
            format!("ground truth {}", fleet_cfg.n_families),
        ],
        vec![
            "campaigns run".into(),
            format!("{}", cache_stats.backfills),
            "one per family (single-flight)".into(),
        ],
        vec![
            "served vs per-tenant tuned".into(),
            format!("mean {:.3}x, max {:.3}x", mean_regret, max_regret),
            format!("{} tenants sampled", regrets.len()),
        ],
        vec![
            "WAL replay".into(),
            if replay_identical {
                "byte-identical".into()
            } else {
                "DIVERGED".into()
            },
            "cache state re-derived from op journal".into(),
        ],
        vec![
            "concurrent lookups (4 threads)".into(),
            rate_row,
            "sharded read path, atomic LRU".into(),
        ],
    ];
    let shape_holds = hit_rate >= 0.95
        && cache_stats.families as usize == fleet_cfg.n_families
        && mean_regret <= 1.05
        && replay_identical
        && rate_ok;
    Report {
        id: "E35",
        title: "Fingerprint-keyed config cache over a Zipf tenant fleet (ROADMAP: request-time serving)",
        headers: vec!["check", "result", "detail"],
        rows,
        paper_claim: "most workloads repeat, so cached configs amortize tuning: high hit rate at near-tuned quality",
        measured: format!(
            "{:.1}% hit rate, mean regret {:.3}x over {} tenants, replay {}",
            hit_rate * 100.0,
            mean_regret,
            regrets.len(),
            if replay_identical { "exact" } else { "diverged" }
        ),
        shape_holds,
    }
}

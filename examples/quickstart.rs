//! Quickstart: the tutorial's running example, end to end.
//!
//! Tunes the Linux scheduler knob `sched_migration_cost_ns` (plus two
//! Redis knobs) to minimize Redis P95 tail latency, exactly as in slides
//! 26-31 — grid search, random search, and Bayesian optimization on the
//! same budget, printing the best-so-far curves side by side.
//!
//! Run with:
//! ```text
//! cargo run -p autotune-examples --bin quickstart --release
//! ```
//!
//! # serve_demo: from one session to a served fleet
//!
//! A [`TuningSession`] drives exactly one campaign. When one process
//! must tune many tenants, the `autotune-serve` layer runs each as an
//! owned, snapshot-resumable campaign multiplexed over a bounded worker
//! pool — without changing any campaign's outcome (this snippet is
//! compile-checked as the `autotune_serve` crate-level doctest):
//!
//! ```text
//! use autotune_serve::{spawn_server, CampaignRegistry, CampaignSpec, SystemKind};
//!
//! let (mut client, server) = spawn_server(|| CampaignRegistry::new(4));
//! let id = client
//!     .register(&CampaignSpec::minimal("tenant-0", SystemKind::Redis, 6, 42))
//!     .unwrap();
//! client.run_all().unwrap();
//! let stats = client.stats(id).unwrap();          // per-campaign telemetry
//! let snapshot = client.snapshot(id).unwrap();    // spec + snapshot = durable tuner
//! client.shutdown().unwrap();
//! server.join().unwrap().unwrap();
//! ```
//!
//! See `workload_fleet.rs` for the registry used directly (no protocol)
//! and `crates/serve` for the scheduling and determinism contract.

use autotune::{Objective, SessionConfig, Target, TuningSession};
use autotune_optimizer::{BayesianOptimizer, GridSearch, Optimizer, RandomSearch};
use autotune_sim::{Environment, RedisSim, Workload};

fn main() {
    let budget = 24;
    println!("== Redis tail-latency tuning (tutorial running example) ==");
    println!("knob: kernel.sched_migration_cost_ns in [1e3, 1e6] (log scale)");
    println!("objective: minimize P95 latency, budget {budget} trials\n");

    let make_target = || {
        Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(20_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        )
    };

    // Baseline: the kernel default.
    let target = make_target();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let default_cfg = target.space().default_config();
    let default_cost: f64 = (0..5)
        .map(|_| target.evaluate(&default_cfg, &mut rng).cost)
        .sum::<f64>()
        / 5.0;
    println!("kernel-default P95: {default_cost:.3} ms\n");

    let optimizers: Vec<(&str, Box<dyn Optimizer>)> = vec![
        (
            "grid",
            Box::new(GridSearch::with_budget(target.space().clone(), budget)),
        ),
        (
            "random",
            Box::new(RandomSearch::new(target.space().clone())),
        ),
        (
            "bo_gp",
            Box::new(BayesianOptimizer::gp(target.space().clone())),
        ),
    ];

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>8}",
        "method", "best_p95", "vs_default", "bench_secs", "trials"
    );
    for (name, opt) in optimizers {
        let mut session = TuningSession::new(make_target(), opt, SessionConfig::default());
        let summary = session
            .run(budget, 42)
            .expect("at least one successful trial");
        let reduction = 100.0 * (1.0 - summary.best_cost / default_cost);
        println!(
            "{:<8} {:>8.3}ms {:>9.1}% {:>11.0}s {:>8}",
            name, summary.best_cost, reduction, summary.total_elapsed_s, budget
        );
        if name == "bo_gp" {
            println!("\nBO convergence (best-so-far P95 per trial):");
            for (i, c) in summary.convergence.iter().enumerate() {
                if i % 4 == 0 || i + 1 == summary.convergence.len() {
                    println!("  trial {:>2}: {:.3} ms", i + 1, c);
                }
            }
            println!("\nbest config: {}", summary.best_config);
        }
    }
}

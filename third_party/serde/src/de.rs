//! Deserialization half of the stub: [`Deserialize`] and [`Deserializer`].

use crate::content::Content;

/// Errors produced by deserializers.
pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
    /// Builds an error from a message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A source of one deserialized value: hands out a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produces the parsed value tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

//! Cross-cutting trial machinery as a composable middleware chain.
//!
//! Each [`Middleware`] sees every trial at three points: before dispatch
//! (annotate the request — machine pinning, guardrails), after measurement
//! (transform cost/elapsed — early-abort censoring), and at completion
//! (rewrite what the learner is told — crash penalties).

use super::event::{Measurement, TrialEvent, TrialOutcome, TrialRequest};
use crate::{EarlyAbort, TrialStatus};
use autotune_sim::FailureKind;
use rand::{Rng, RngCore};
use std::borrow::BorrowMut;
use std::collections::BTreeSet;

/// A cross-cutting hook on the trial lifecycle.
pub trait Middleware {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// Adjusts a request before it is dispatched.
    fn before_dispatch(&mut self, _req: &mut TrialRequest, _rng: &mut dyn RngCore) {}

    /// Transforms a measurement (censoring, clamping).
    /// `cost_is_elapsed` is true when the objective is elapsed time, the
    /// case where censoring is exact.
    fn after_measure(&mut self, _m: &mut Measurement, _cost_is_elapsed: bool) {}

    /// Asks whether the executor should re-measure this trial instead of
    /// finalizing it. Returns the virtual-clock backoff (seconds) to charge
    /// before the next attempt, or `None` to accept the measurement.
    /// `attempt` is the attempt that just ran (0 = first try).
    fn retry_after(&mut self, _m: &Measurement, _attempt: u32) -> Option<f64> {
        None
    }

    /// Rewrites a finalized outcome before the source sees it.
    fn on_outcome(&mut self, _outcome: &mut TrialOutcome) {}

    /// Drains lifecycle events this middleware wants published (machine
    /// quarantines, releases). Polled by the executor after each hook round.
    fn take_events(&mut self) -> Vec<TrialEvent> {
        Vec::new()
    }
}

/// Early-abort censoring (tutorial slide 69) as middleware: trials slower
/// than `ratio x` the incumbent are cut at the threshold, charging only
/// the time-to-threshold.
///
/// Generic over ownership so a campaign can either own its policy
/// ([`EarlyAbortMw::new`]) or thread a long-lived one through several
/// runs ([`EarlyAbortMw::over`]).
pub struct EarlyAbortMw<P: BorrowMut<EarlyAbort>> {
    policy: P,
}

impl EarlyAbortMw<EarlyAbort> {
    /// An owned policy with the given abort ratio.
    pub fn new(ratio: f64) -> Self {
        EarlyAbortMw {
            policy: EarlyAbort::new(ratio),
        }
    }
}

impl<'a> EarlyAbortMw<&'a mut EarlyAbort> {
    /// Borrows a caller-owned policy (its incumbent and savings stats
    /// survive the run).
    pub fn over(policy: &'a mut EarlyAbort) -> Self {
        EarlyAbortMw { policy }
    }
}

impl<P: BorrowMut<EarlyAbort>> Middleware for EarlyAbortMw<P> {
    fn name(&self) -> &str {
        "early-abort"
    }

    fn after_measure(&mut self, m: &mut Measurement, cost_is_elapsed: bool) {
        let (cost, charged, aborted) =
            self.policy
                .borrow_mut()
                .process(m.cost, m.elapsed_s, cost_is_elapsed);
        if aborted {
            m.saved_s += m.elapsed_s - charged;
            m.aborted = true;
        }
        m.cost = cost;
        m.elapsed_s = charged;
    }
}

/// Crash-penalty middleware (tutorial slide 67): the stored trial keeps
/// its NaN cost, but the learner is told a large finite penalty so its
/// running statistics stay well-defined (bandits, RL).
///
/// By default only deterministic config crashes ([`TrialStatus::Crashed`])
/// are penalized; transient infrastructure failures keep their NaN
/// `learn_cost` so the source drops them instead of mis-training the
/// surrogate. [`CrashPenaltyMw::naive`] penalizes *every* non-finite cost
/// — the anti-pattern the tutorial warns about, kept as the E30 baseline.
pub struct CrashPenaltyMw {
    penalty: f64,
    penalize_transient: bool,
}

impl CrashPenaltyMw {
    /// Penalty value reported to the learner for crashed trials.
    pub fn new(penalty: f64) -> Self {
        CrashPenaltyMw {
            penalty,
            penalize_transient: false,
        }
    }

    /// The naive variant: every non-finite cost — config crash, transient
    /// failure, timed-out hang — is fed to the learner as `penalty`.
    pub fn naive(penalty: f64) -> Self {
        CrashPenaltyMw {
            penalty,
            penalize_transient: true,
        }
    }
}

impl Middleware for CrashPenaltyMw {
    fn name(&self) -> &str {
        "crash-penalty"
    }

    fn on_outcome(&mut self, outcome: &mut TrialOutcome) {
        if !outcome.cost.is_finite()
            && (self.penalize_transient || outcome.status == TrialStatus::Crashed)
        {
            outcome.learn_cost = self.penalty;
        }
    }
}

/// Machine-assignment middleware for noise experiments (TUNA-style):
/// spreads trials across a fleet of `n_machines`, either round-robin or
/// uniformly at random from the suggestion stream.
pub struct MachineAssignMw {
    n_machines: usize,
    round_robin: bool,
    next: usize,
}

impl MachineAssignMw {
    /// Round-robin assignment over `n_machines`.
    pub fn round_robin(n_machines: usize) -> Self {
        assert!(n_machines >= 1, "need at least one machine");
        MachineAssignMw {
            n_machines,
            round_robin: true,
            next: 0,
        }
    }

    /// Uniform random assignment over `n_machines`.
    pub fn random(n_machines: usize) -> Self {
        assert!(n_machines >= 1, "need at least one machine");
        MachineAssignMw {
            n_machines,
            round_robin: false,
            next: 0,
        }
    }
}

impl Middleware for MachineAssignMw {
    fn name(&self) -> &str {
        "machine-assign"
    }

    fn before_dispatch(&mut self, req: &mut TrialRequest, rng: &mut dyn RngCore) {
        if req.machine_id.is_some() {
            return; // the source pinned it explicitly
        }
        let m = if self.round_robin {
            let m = self.next % self.n_machines;
            self.next += 1;
            m
        } else {
            rng.gen_range(0..self.n_machines)
        };
        req.machine_id = Some(m);
    }
}

/// Budgeted retries for transient infrastructure failures (MLOS/TUNA
/// practice): a trial lost to a [`FailureKind::Transient`] machine death
/// or an outage window is re-measured up to `max_retries` times, charging
/// an exponential virtual-clock backoff between attempts. Deterministic
/// config crashes, hangs and stragglers are never retried — crashes go to
/// [`CrashPenaltyMw`], hangs to [`TimeoutMw`].
pub struct RetryMw {
    max_retries: u32,
    base_backoff_s: f64,
}

impl RetryMw {
    /// Up to `max_retries` re-measurements, waiting
    /// `base_backoff_s * 2^attempt` virtual seconds before each.
    pub fn new(max_retries: u32, base_backoff_s: f64) -> Self {
        RetryMw {
            max_retries,
            base_backoff_s: base_backoff_s.max(0.0),
        }
    }
}

impl Middleware for RetryMw {
    fn name(&self) -> &str {
        "retry"
    }

    fn retry_after(&mut self, m: &Measurement, attempt: u32) -> Option<f64> {
        let transient = matches!(
            m.fault,
            Some(FailureKind::Transient) | Some(FailureKind::Outage)
        );
        if transient && attempt < self.max_retries {
            Some(self.base_backoff_s * f64::powi(2.0, attempt as i32))
        } else {
            None
        }
    }
}

/// Wall-clock budget per trial: a hang (or pathologically slow attempt)
/// is cut at `budget_s` and surfaced as an aborted, censored measurement
/// instead of stalling the campaign forever. When the objective is elapsed
/// time the censored cost is exact (`budget_s`); otherwise the cost is
/// unknown at the cut and reported NaN so the source drops it.
pub struct TimeoutMw {
    budget_s: f64,
    n_timeouts: usize,
}

impl TimeoutMw {
    /// Kill any attempt that exceeds `budget_s` virtual seconds.
    pub fn new(budget_s: f64) -> Self {
        assert!(budget_s > 0.0, "timeout budget must be positive");
        TimeoutMw {
            budget_s,
            n_timeouts: 0,
        }
    }

    /// How many attempts this middleware has cut.
    pub fn n_timeouts(&self) -> usize {
        self.n_timeouts
    }
}

impl Middleware for TimeoutMw {
    fn name(&self) -> &str {
        "timeout"
    }

    fn after_measure(&mut self, m: &mut Measurement, cost_is_elapsed: bool) {
        if m.elapsed_s > self.budget_s {
            self.n_timeouts += 1;
            m.saved_s += m.elapsed_s - self.budget_s;
            m.elapsed_s = self.budget_s;
            m.aborted = true;
            m.cost = if cost_is_elapsed {
                self.budget_s
            } else {
                f64::NAN
            };
        }
    }
}

/// Per-machine health tracking (HUNTER-style): an EWMA of the
/// fault/straggler rate per `CloudNoise` machine id. A machine whose EWMA
/// crosses `threshold` is quarantined — [`MachineAssignMw`] assignments
/// are re-routed to the next healthy machine — for `cooldown` outcomes,
/// then released on probation (its EWMA is reset just under the threshold,
/// so one more failure re-trips it).
pub struct QuarantineMw {
    n_machines: usize,
    alpha: f64,
    threshold: f64,
    cooldown: usize,
    ewma: Vec<f64>,
    down: Vec<Option<usize>>,
    ever: BTreeSet<usize>,
    events: Vec<TrialEvent>,
}

impl QuarantineMw {
    /// Tracks `n_machines` with an EWMA smoothing of `alpha`, quarantining
    /// above `threshold` for `cooldown` completed outcomes.
    pub fn new(n_machines: usize, alpha: f64, threshold: f64, cooldown: usize) -> Self {
        assert!(n_machines >= 1, "need at least one machine");
        assert!(
            (0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&threshold),
            "alpha and threshold must lie in [0, 1]"
        );
        QuarantineMw {
            n_machines,
            alpha,
            threshold,
            cooldown: cooldown.max(1),
            ewma: vec![0.0; n_machines],
            down: vec![None; n_machines],
            ever: BTreeSet::new(),
            events: Vec::new(),
        }
    }

    /// Defaults tuned for the E30 fleet: alpha 0.3, threshold 0.5,
    /// cooldown 8 outcomes.
    pub fn with_defaults(n_machines: usize) -> Self {
        QuarantineMw::new(n_machines, 0.3, 0.5, 8)
    }

    /// Machines ever quarantined during this run.
    pub fn n_quarantined(&self) -> usize {
        self.ever.len()
    }

    /// Whether `machine_id` is currently quarantined.
    pub fn is_quarantined(&self, machine_id: usize) -> bool {
        machine_id < self.n_machines && self.down[machine_id].is_some()
    }
}

impl Middleware for QuarantineMw {
    fn name(&self) -> &str {
        "quarantine"
    }

    fn before_dispatch(&mut self, req: &mut TrialRequest, _rng: &mut dyn RngCore) {
        let Some(m) = req.machine_id else { return };
        if m >= self.n_machines || self.down[m].is_none() {
            return;
        }
        // Deterministic re-route: scan forward for the next healthy machine.
        for step in 1..self.n_machines {
            let cand = (m + step) % self.n_machines;
            if self.down[cand].is_none() {
                req.machine_id = Some(cand);
                return;
            }
        }
        // Every machine is down; leave the pin — better a sick machine
        // than no progress.
    }

    fn after_measure(&mut self, m: &mut Measurement, _cost_is_elapsed: bool) {
        let Some(id) = m.machine_id else { return };
        if id >= self.n_machines {
            return;
        }
        // Hard infrastructure failures count fully, degraded-but-complete
        // measurements half. A config crash says nothing about the
        // *machine*, so it scores like a clean run.
        let x = match m.fault {
            Some(f) if f.is_transient() => 1.0,
            Some(FailureKind::Straggler) | Some(FailureKind::Corruption) => 0.5,
            _ => 0.0,
        };
        self.ewma[id] = (1.0 - self.alpha) * self.ewma[id] + self.alpha * x;
        if self.ewma[id] > self.threshold && self.down[id].is_none() {
            self.down[id] = Some(self.cooldown);
            self.ever.insert(id);
            self.events.push(TrialEvent::Quarantined { machine_id: id });
        }
    }

    fn on_outcome(&mut self, _outcome: &mut TrialOutcome) {
        for id in 0..self.n_machines {
            if let Some(left) = self.down[id] {
                if left <= 1 {
                    self.down[id] = None;
                    // Probation: one more failure re-trips immediately.
                    self.ewma[id] = self.threshold * 0.9;
                    self.events.push(TrialEvent::Released { machine_id: id });
                } else {
                    self.down[id] = Some(left - 1);
                }
            }
        }
    }

    fn take_events(&mut self) -> Vec<TrialEvent> {
        std::mem::take(&mut self.events)
    }
}

//! Offline stub of the `rand` crate (see `third_party/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`RngCore`]/[`SeedableRng`]/[`Rng`], a deterministic [`rngs::StdRng`]
//! (xoshiro256++), [`rngs::mock::StepRng`], slice shuffling, and the
//! [`distributions::Standard`] distribution. Streams differ from
//! crates.io `rand`; everything is deterministic per seed.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use rngs::thread_rng;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Byte-array seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T> + Sized>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

//! The stub's data model: a JSON-like value tree plus the serializer /
//! deserializer adapters that derive-generated code builds on.

use crate::de::Deserializer;
use crate::ser::{Serialize, Serializer};
use crate::Error;

/// A serialized value. Maps preserve insertion order (struct field
/// order), matching serde_json's default behavior closely enough for
/// round-trips and snapshot stability.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON null / `None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64`.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys.
    Map(Vec<(String, Content)>),
}

/// Serializer that materializes the [`Content`] tree itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct ContentSerializer;

impl ContentSerializer {
    /// Creates a content serializer.
    pub fn new() -> Self {
        ContentSerializer
    }
}

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Error;

    fn serialize_content(self, content: Content) -> Result<Content, Error> {
        Ok(content)
    }
}

/// Serializes any value into a [`Content`] tree. Infallible for every
/// type in this workspace (the only error path is a custom `with`
/// module refusing, which none do).
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    value.serialize(ContentSerializer).unwrap_or(Content::Null)
}

/// Deserializer over an owned [`Content`] tree.
#[derive(Debug)]
pub struct ContentDeserializer {
    content: Content,
}

impl ContentDeserializer {
    /// Wraps a content tree for deserialization.
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content }
    }
}

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = Error;

    fn deserialize_content(self) -> Result<Content, Error> {
        Ok(self.content)
    }
}

/// Removes and returns the value for `key`, if present. Linear scan —
/// struct field counts here are small.
pub fn take_field(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
    let idx = map.iter().position(|(k, _)| k == key)?;
    Some(map.remove(idx).1)
}

impl Content {
    /// Coerces to `f64` (accepting integer content).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Coerces to `i64` (accepting exact-integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => Some(v as i64),
            _ => None,
        }
    }

    /// Coerces to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 && (0.0..1.8e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

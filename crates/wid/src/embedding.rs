//! Workload embeddings (tutorial slide 89).
//!
//! Maps raw fingerprints into a compact vector space where Euclidean
//! distance means "these workloads want similar configurations". Two
//! embedders:
//!
//! * **PCA** — standardize features, keep the top principal components
//!   (interpretable, needs a training corpus);
//! * **random projection** — a seeded Gaussian projection matrix
//!   (training-free, the same trick LlamaTune plays on *search spaces*).

use crate::{Fingerprint, Result, WidError};
use autotune_linalg::{Matrix, Pca};
use rand::{Rng, SeedableRng};

/// Which dimensionality-reduction method backs the embedder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedderKind {
    /// Standardize + principal components.
    Pca,
    /// Standardize + seeded Gaussian random projection.
    RandomProjection {
        /// Seed of the projection matrix.
        seed: u64,
    },
}

/// A fitted workload embedder.
#[derive(Debug)]
pub struct Embedder {
    kind: EmbedderKind,
    out_dim: usize,
    /// Per-feature mean for standardization.
    mean: Vec<f64>,
    /// Per-feature standard deviation (>= epsilon).
    std: Vec<f64>,
    /// PCA model (when kind is Pca).
    pca: Option<Pca>,
    /// Projection matrix rows (when kind is RandomProjection).
    projection: Option<Matrix>,
}

impl Embedder {
    /// Fits an embedder on a corpus of fingerprints.
    pub fn fit(corpus: &[Fingerprint], out_dim: usize, kind: EmbedderKind) -> Result<Self> {
        if corpus.len() < 2 {
            return Err(WidError::NotEnoughData {
                what: "embedder",
                needed: 2,
                got: corpus.len(),
            });
        }
        let d = corpus[0].dim();
        for f in corpus {
            if f.dim() != d {
                return Err(WidError::DimensionMismatch {
                    expected: d,
                    actual: f.dim(),
                });
            }
        }
        let out_dim = out_dim.min(d).max(1);
        // Standardization statistics.
        let n = corpus.len() as f64;
        let mut mean = vec![0.0; d];
        for f in corpus {
            autotune_linalg::axpy(1.0, f.features(), &mut mean);
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for f in corpus {
            for (v, (&x, &m)) in var.iter_mut().zip(f.features().iter().zip(&mean)) {
                *v += (x - m) * (x - m);
            }
        }
        let std: Vec<f64> = var
            .iter()
            .map(|v| (v / (n - 1.0)).sqrt().max(1e-9))
            .collect();
        let standardized: Vec<Vec<f64>> = corpus
            .iter()
            .map(|f| {
                f.features()
                    .iter()
                    .zip(mean.iter().zip(&std))
                    .map(|(&x, (&m, &s))| (x - m) / s)
                    .collect()
            })
            .collect();
        let (pca, projection) = match kind {
            EmbedderKind::Pca => {
                let data = Matrix::from_row_vectors(&standardized);
                let pca =
                    Pca::fit(&data, out_dim).map_err(|e| WidError::Numerical(e.to_string()))?;
                (Some(pca), None)
            }
            EmbedderKind::RandomProjection { seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let scale = 1.0 / (out_dim as f64).sqrt();
                let proj = Matrix::from_fn(out_dim, d, |_, _| {
                    // Box-Muller Gaussian entries.
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                });
                (None, Some(proj))
            }
        };
        Ok(Embedder {
            kind,
            out_dim,
            mean,
            std,
            pca,
            projection,
        })
    }

    /// The embedding dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Which method backs this embedder.
    pub fn kind(&self) -> EmbedderKind {
        self.kind
    }

    /// Embeds one fingerprint.
    pub fn embed(&self, f: &Fingerprint) -> Result<Vec<f64>> {
        if f.dim() != self.mean.len() {
            return Err(WidError::DimensionMismatch {
                expected: self.mean.len(),
                actual: f.dim(),
            });
        }
        let standardized: Vec<f64> = f
            .features()
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect();
        Ok(match (&self.pca, &self.projection) {
            (Some(pca), _) => pca.transform_one(&standardized),
            (_, Some(proj)) => proj
                .matvec(&standardized)
                .expect("projection matches feature dim"), // lint: allow(D5) projection built for this feature dimension
            _ => unreachable!("embedder always has a backing model"), // lint: allow(D5) constructor always sets pca or projection
        })
    }

    /// Embeds a batch.
    pub fn embed_all(&self, fs: &[Fingerprint]) -> Result<Vec<Vec<f64>>> {
        fs.iter().map(|f| self.embed(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    /// Builds a corpus with two well-separated workload families.
    fn two_family_corpus(n_per: usize, seed: u64) -> (Vec<Fingerprint>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prints = Vec::new();
        let mut labels = Vec::new();
        for i in 0..(2 * n_per) {
            let family = i % 2;
            let base: Vec<f64> = if family == 0 {
                vec![0.8, 0.1, 0.9, 0.2, 100.0, 0.5]
            } else {
                vec![0.2, 0.7, 0.1, 0.8, 10.0, 0.9]
            };
            let noisy: Vec<f64> = base
                .iter()
                .map(|&b| b + 0.05 * (rng.gen::<f64>() - 0.5))
                .collect();
            prints.push(Fingerprint::from_features(noisy));
            labels.push(family);
        }
        (prints, labels)
    }

    #[test]
    fn pca_embedding_separates_families() {
        let (corpus, labels) = two_family_corpus(20, 1);
        let emb = Embedder::fit(&corpus, 2, EmbedderKind::Pca).unwrap();
        let points = emb.embed_all(&corpus).unwrap();
        // Within-family distances must be far below between-family ones.
        let mut within = Vec::new();
        let mut between = Vec::new();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let d = autotune_linalg::squared_distance(&points[i], &points[j]).sqrt();
                if labels[i] == labels[j] {
                    within.push(d);
                } else {
                    between.push(d);
                }
            }
        }
        let w = autotune_linalg::stats::mean(&within);
        let b = autotune_linalg::stats::mean(&between);
        assert!(
            b > 5.0 * w,
            "families not separated: within {w}, between {b}"
        );
    }

    #[test]
    fn random_projection_preserves_separation() {
        let (corpus, labels) = two_family_corpus(20, 2);
        let emb = Embedder::fit(&corpus, 3, EmbedderKind::RandomProjection { seed: 7 }).unwrap();
        let points = emb.embed_all(&corpus).unwrap();
        let centroid = |fam: usize| {
            let members: Vec<&Vec<f64>> = points
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == fam)
                .map(|(p, _)| p)
                .collect();
            let mut c = vec![0.0; 3];
            for m in &members {
                autotune_linalg::axpy(1.0, m, &mut c);
            }
            c.iter()
                .map(|x| x / members.len() as f64)
                .collect::<Vec<_>>()
        };
        let d = autotune_linalg::squared_distance(&centroid(0), &centroid(1)).sqrt();
        assert!(d > 1.0, "projected centroids too close: {d}");
    }

    #[test]
    fn same_seed_same_projection() {
        let (corpus, _) = two_family_corpus(5, 3);
        let a = Embedder::fit(&corpus, 2, EmbedderKind::RandomProjection { seed: 9 }).unwrap();
        let b = Embedder::fit(&corpus, 2, EmbedderKind::RandomProjection { seed: 9 }).unwrap();
        assert_eq!(a.embed(&corpus[0]).unwrap(), b.embed(&corpus[0]).unwrap());
    }

    #[test]
    fn dimension_errors() {
        let (corpus, _) = two_family_corpus(5, 4);
        let emb = Embedder::fit(&corpus, 2, EmbedderKind::Pca).unwrap();
        let wrong = Fingerprint::from_features(vec![1.0, 2.0]);
        assert!(matches!(
            emb.embed(&wrong),
            Err(WidError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Embedder::fit(&corpus[..1], 2, EmbedderKind::Pca),
            Err(WidError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn out_dim_clamped_to_features() {
        let (corpus, _) = two_family_corpus(5, 5);
        let emb = Embedder::fit(&corpus, 100, EmbedderKind::Pca).unwrap();
        assert_eq!(emb.out_dim(), 6);
    }
}

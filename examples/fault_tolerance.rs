//! Fault-tolerant tuning on an unreliable fleet (systems challenges).
//!
//! A tuning campaign on real cloud machines loses trials to transient
//! machine failures, hangs, stragglers and outages. This example runs the
//! same Bayesian-optimization campaign three ways against a deterministic
//! `FaultPlan`:
//! 1. **fault-free** — the ideal, for reference;
//! 2. **naive** — every lost trial is fed to the learner as a crash
//!    penalty (the anti-pattern the tutorial warns mis-trains the
//!    surrogate);
//! 3. **resilient** — transient losses are retried with backoff, hangs
//!    are timed out, and sick machines are quarantined.
//!
//! Run with:
//! ```text
//! cargo run -p autotune-examples --bin fault_tolerance --release
//! ```

use autotune::executor::{
    CrashPenaltyMw, Executor, MachineAssignMw, OptimizerSource, QuarantineMw, RetryMw,
    SchedulePolicy, TimeoutMw, TrialEvent,
};
use autotune::{Objective, Target, TrialStorage};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{CloudNoise, Environment, FaultPlan, NoiseConfig, RedisSim, Workload};

const N_MACHINES: usize = 6;
const BUDGET: usize = 40;
const SEED: u64 = 11;

fn target(faults: bool) -> Target {
    let t = Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    )
    .with_noise(CloudNoise::new_fleet(
        N_MACHINES,
        NoiseConfig::default(),
        SEED,
    ));
    if faults {
        // Machine 1 is sick (6x fault rates), machine 4 is down for the
        // first 1500 virtual seconds.
        t.with_faults(
            FaultPlan::aggressive(SEED)
                .with_sick_machine(1, 6.0)
                .with_outage(4, 0.0, 1_500.0),
        )
    } else {
        t
    }
}

fn main() {
    println!("== Fault-tolerant tuning on an unreliable fleet ==\n");

    for (label, faults, resilient, naive_penalty) in [
        ("fault-free (reference)", false, false, false),
        ("naive crash-penalty", true, false, true),
        ("retry+timeout+quarantine", true, true, false),
    ] {
        let target = target(faults);
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let mut source = OptimizerSource::new(&mut opt, BUDGET);
        let mut storage = TrialStorage::new();
        let mut exec = Executor::new(&target, SchedulePolicy::AsyncSlots { k: 3 })
            .with_middleware(Box::new(MachineAssignMw::round_robin(N_MACHINES)));
        if resilient {
            exec = exec
                .with_middleware(Box::new(QuarantineMw::with_defaults(N_MACHINES)))
                .with_middleware(Box::new(RetryMw::new(3, 5.0)))
                .with_middleware(Box::new(TimeoutMw::new(150.0)));
        }
        let penalty = if naive_penalty {
            CrashPenaltyMw::naive(1e9)
        } else {
            CrashPenaltyMw::new(1e9)
        };
        let report = exec
            .with_middleware(Box::new(penalty))
            .run(&mut source, &mut storage, SEED);

        println!("-- {label} --");
        println!(
            "   best P95 {:.2} ms | {} trials, {} transient losses, {} retries, {} aborted",
            storage.best().map_or(f64::NAN, |t| t.cost),
            storage.len(),
            storage.n_transient_failures(),
            report.n_retried,
            report.n_aborted,
        );
        for e in &report.events {
            match e {
                TrialEvent::Quarantined { machine_id } => {
                    println!("   quarantined machine {machine_id}");
                }
                TrialEvent::Released { machine_id } => {
                    println!("   released machine {machine_id} on probation");
                }
                _ => {}
            }
        }
        println!(
            "   wall clock {:.0} s, machine seconds {:.0}\n",
            report.wall_clock_s, report.machine_seconds
        );
    }

    println!("The naive run feeds every transient loss to the learner as a crash,");
    println!("steering the surrogate away from perfectly good regions; the resilient");
    println!("run recovers the lost measurements and routes around sick machines.");
}

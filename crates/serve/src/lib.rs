//! `autotune-serve` — serve thousands of tuning campaigns concurrently.
//!
//! The core crate's [`Campaign`](autotune::Campaign) is an owned,
//! resumable state machine: it stages waves of trials, accepts their
//! measurements from any thread, and logs everything needed to snapshot
//! and byte-identically resume. This crate is the layer above it, for
//! the "autotuning as a service" deployments the tutorial surveys
//! (SageDB-style fleets, per-tenant database tuners): many campaigns,
//! one bounded measurement pool, fair progress for all of them.
//!
//! Three pieces:
//!
//! * [`CampaignSpec`] — a fully serializable campaign description
//!   (system, workload, objective, optimizer, schedule, seed) that
//!   builds an owned `'static` campaign. Spec + snapshot is the durable
//!   representation of a tenant's tuner.
//! * [`CampaignRegistry`] — owns N campaigns and advances them in
//!   deficit-round-robin rounds over a worker pool; each campaign's
//!   history is byte-identical to running it alone, for any worker
//!   count (see the `registry` module docs for the argument).
//! * [`Server`]/[`Client`] — a typed request/response control protocol
//!   (register, step, snapshot, stats, stop) over any framed byte
//!   stream; [`pipe`] and [`spawn_server`] give an in-process deployment.
//!
//! ```
//! use autotune_serve::{spawn_server, CampaignRegistry, CampaignSpec, SystemKind};
//!
//! let (mut client, server) = spawn_server(|| CampaignRegistry::new(4));
//! let id = client
//!     .register(&CampaignSpec::minimal("tenant-0", SystemKind::Redis, 6, 42))
//!     .unwrap();
//! client.run_all().unwrap();
//! let stats = client.stats(id).unwrap();
//! assert!(stats.done && stats.n_trials > 0);
//! let snapshot = client.snapshot(id).unwrap(); // durable: spec + snapshot resumes
//! assert!(!snapshot.log.is_empty());
//! client.shutdown().unwrap();
//! server.join().unwrap().unwrap();
//! ```

mod chaos;
mod durability;
mod protocol;
mod registry;
mod router;
mod spec;

pub use chaos::{ChaosPlan, ChaosStream, CrashPoint, FrameFault};
pub use durability::{DurableRegistry, DurableRound, RecoveryReport, WalConfig};
pub use protocol::{
    pipe, read_frame, spawn_server, write_frame, Backoff, Client, LookupReply, PipeEnd,
    ReconnectClient, Request, Response, ServeBackend, Server, ServerConfig, MAX_FRAME_LEN,
};
pub use registry::{
    AdmissionConfig, CampaignRegistry, CampaignStats, FleetStats, RoundReport, ServeError,
};
pub use router::{spawn_router_server, RouterConfig, RouterLookup, TenantRouter};
pub use spec::{CampaignSpec, NoiseSpec, OptimizerKind, SystemKind};

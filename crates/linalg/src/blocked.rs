//! Cache-blocked (tiled) dense kernels.
//!
//! The naive kernels in [`Matrix`] and [`crate::Cholesky`] stream whole
//! rows through cache on every inner product, which is fine at the few
//! hundred rows a short campaign accumulates but falls off a cliff once
//! kernel matrices reach a few thousand rows (the 100k-observation
//! service-campaign regime). These variants partition the iteration space
//! into `block`-sized tiles so each tile of the operands is reused from
//! cache many times before being evicted — the standard GEMM/SYRK/POTRF
//! tiling every BLAS uses, sized here for L1/L2 rather than registers.
//!
//! Determinism contract: for every output element the floating-point
//! accumulation order of [`Matrix::matmul_blocked`] and
//! [`Matrix::syrk_blocked`] is identical to the naive ikj reference, so
//! on finite inputs the results are **bitwise equal** to
//! [`Matrix::matmul`]. The blocked Cholesky regroups its trailing updates
//! per panel, so its factor agrees with the naive one only to rounding —
//! equivalence is tolerance-verified by the test suite.

use crate::{LinalgError, Matrix, Result};

/// Default tile edge for the blocked kernels: 64×64 f64 tiles are 32 KiB,
/// sized so the two operand tiles of a GEMM inner kernel sit in L1/L2.
pub const DEFAULT_BLOCK: usize = 64;

impl Matrix {
    /// Tiled matrix product `self * other` with `block`-sized tiles.
    ///
    /// Bitwise-identical to [`Matrix::matmul`] on finite inputs: for each
    /// output element, contributions accumulate in ascending-`k` order
    /// exactly like the naive ikj loop. Use this for operands past a few
    /// hundred rows; below that the naive loop's lower overhead wins.
    pub fn matmul_blocked(&self, other: &Matrix, block: usize) -> Result<Matrix> {
        if self.cols() != other.rows() {
            return Err(LinalgError::ShapeMismatch {
                context: "matmul_blocked: self.cols must equal other.rows",
            });
        }
        let block = block.max(1);
        let (n, kdim, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        for ii in (0..n).step_by(block) {
            let ie = (ii + block).min(n);
            for kk in (0..kdim).step_by(block) {
                let ke = (kk + block).min(kdim);
                for jj in (0..m).step_by(block) {
                    let je = (jj + block).min(m);
                    for i in ii..ie {
                        for k in kk..ke {
                            let aik = self[(i, k)];
                            let brow = &other.row(k)[jj..je];
                            let orow = &mut out.row_mut(i)[jj..je];
                            for (o, &b) in orow.iter_mut().zip(brow) {
                                *o += aik * b;
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Tiled symmetric rank-k product `self * selfᵀ` (SYRK).
    ///
    /// Computes only the lower triangle tile-by-tile and mirrors it, so it
    /// does roughly half the multiplies of a general product. Each output
    /// element is a dot product of two rows of `self` accumulated in
    /// ascending column order — bitwise identical to
    /// `self.matmul(&self.transpose())` on finite inputs.
    pub fn syrk_blocked(&self, block: usize) -> Matrix {
        let block = block.max(1);
        let n = self.rows();
        let mut out = Matrix::zeros(n, n);
        for ii in (0..n).step_by(block) {
            let ie = (ii + block).min(n);
            for jj in (0..=ii).step_by(block) {
                let je = (jj + block).min(n);
                for i in ii..ie {
                    let ri = self.row(i);
                    for j in jj..je.min(i + 1) {
                        out[(i, j)] = crate::vector::dot(ri, self.row(j));
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                out[(j, i)] = out[(i, j)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn blocked_matmul_bitwise_matches_naive() {
        // Random (non-zero) data: the accumulation orders are identical,
        // so the results must agree exactly, not just within tolerance —
        // across block sizes, including ones that don't divide the dims.
        for (r, k, c) in [(17, 23, 11), (64, 64, 64), (65, 3, 130), (1, 40, 1)] {
            let a = random_matrix(r, k, 1000 + r as u64);
            let b = random_matrix(k, c, 2000 + c as u64);
            let naive = a.matmul(&b).unwrap();
            for block in [1, 3, 8, 64, 1024] {
                let blocked = a.matmul_blocked(&b, block).unwrap();
                assert_eq!(
                    naive.as_slice(),
                    blocked.as_slice(),
                    "({r}x{k})*({k}x{c}) block {block} diverged from naive"
                );
            }
        }
    }

    #[test]
    fn blocked_matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul_blocked(&b, 8),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn blocked_matmul_propagates_nonfinite() {
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[f64::NAN], &[2.0]]);
        let c = a.matmul_blocked(&b, 8).unwrap();
        assert!(c[(0, 0)].is_nan(), "0*NaN + 1*2 must be NaN");
    }

    #[test]
    fn syrk_matches_explicit_product() {
        for (r, k) in [(13, 7), (40, 40), (33, 2), (1, 5)] {
            let a = random_matrix(r, k, 77 + r as u64);
            let explicit = a.matmul(&a.transpose()).unwrap();
            for block in [1, 4, 16, 256] {
                let s = a.syrk_blocked(block);
                assert_eq!(
                    explicit.as_slice(),
                    s.as_slice(),
                    "syrk {r}x{k} block {block} diverged"
                );
                assert!(s.is_symmetric(0.0));
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        let empty = Matrix::zeros(0, 0);
        assert_eq!(empty.matmul_blocked(&empty, 8).unwrap().rows(), 0);
        assert_eq!(empty.syrk_blocked(8).rows(), 0);
        let row = Matrix::from_rows(&[&[2.0, 3.0]]);
        let s = row.syrk_blocked(64);
        assert_eq!(s.rows(), 1);
        assert!((s[(0, 0)] - 13.0).abs() < 1e-15);
    }
}

#!/usr/bin/env bash
#
# Perf-trajectory recorder + regression gate (the CI perf entry point).
#
# Runs the four perf bins — `perf_smoke` (incremental suggest path,
# keeps its own 2x-vs-baseline tripwire), `bo_scale` (sparse/trust-region
# surrogate latency at n in {1k, 10k, 100k}, the E36 scaling arm),
# `serve_fleet` (registry throughput + E34 robustness arm), and
# `cache_fleet` (config-cache hit rate + concurrent lookup throughput) —
# then appends one
# `{commit, date, metrics}` row to the `trajectory` array of each
# BENCH_*.json, carrying the committed history forward so the files
# accumulate a per-PR perf record.
#
# Regression gate: fails when a gated metric moves more than
# REGRESSION_LIMIT (default 20%) in the bad direction against the
# committed baseline. Deterministic metrics (campaign rate in virtual
# time, cache hit rate) are gated against the committed headline even
# with no history; host-dependent metrics (nanoseconds, lookups/s) are
# only gated against committed trajectory rows, which CI records on its
# own runners — a laptop-vs-runner delta never trips the gate.
#
#   tools/bench_record.sh                      # record + gate
#   REGRESSION_LIMIT=0.5 tools/bench_record.sh # looser gate
set -euo pipefail
cd "$(dirname "$0")/.."

export REGRESSION_LIMIT="${REGRESSION_LIMIT:-0.2}"
export BENCH_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export BENCH_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

STASH="$(mktemp -d)"
trap 'rm -rf "$STASH"' EXIT
export BENCH_STASH="$STASH"

# Snapshot the committed BENCH files (trajectory history + baseline)
# before the bins overwrite the working copies.
for f in BENCH_serve.json BENCH_bo.json BENCH_cache.json; do
  git show "HEAD:$f" >"$STASH/$f" 2>/dev/null || cp "$f" "$STASH/$f" 2>/dev/null || true
done

echo "== perf_smoke (incremental suggest path) =="
cargo run -q --release -p autotune-bench --bin perf_smoke | tee "$STASH/perf_smoke.out"
SUGGEST_NS="$(sed -n 's/^measured: \([0-9][0-9]*\) ns\/trial$/\1/p' "$STASH/perf_smoke.out")"
export BENCH_SUGGEST_NS="${SUGGEST_NS:-0}"

echo
echo "== bo_scale (surrogate scaling to n=100k) =="
cargo run -q --release -p autotune-bench --bin bo_scale

echo
echo "== serve_fleet (registry throughput + robustness) =="
cargo run -q --release -p autotune-bench --bin serve_fleet

echo
echo "== cache_fleet (config cache hit rate + lookup throughput) =="
cargo run -q --release -p autotune-bench --bin cache_fleet

echo
python3 - <<'PY'
"""Appends a trajectory row to each BENCH_*.json and gates regressions."""
import json, os, sys

stash = os.environ["BENCH_STASH"]
commit = os.environ["BENCH_COMMIT"]
date = os.environ["BENCH_DATE"]
limit = float(os.environ["REGRESSION_LIMIT"])
suggest_ns = float(os.environ["BENCH_SUGGEST_NS"])

def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None

def serve_metrics(doc):
    w8 = next(p for p in doc["points"] if p["workers"] == 8)
    rb = doc["robustness"]
    return {
        "campaigns_per_virtual_ks_w8": w8["campaigns_per_virtual_ks"],
        "mean_suggest_ns_w8": w8["mean_suggest_ns"],
        "real_elapsed_s_w8": w8["real_elapsed_s"],
        "mean_recovery_open_ms": rb["mean_recovery_open_ms"],
        "shed_rate": rb["shed_rate"],
    }

def bo_metrics(doc):
    out = {"suggest_ns_per_trial_n500": suggest_ns}
    for p in doc.get("scale_points", []):
        key = f"{p['surrogate']}_n{p['n'] // 1000}k"
        out[f"{key}_suggest_ns"] = p["suggest_ns"]
        out[f"{key}_observe_ns"] = p["observe_ns"]
    for k, v in doc.get("speedup_100k", {}).items():
        out[f"speedup_100k_{k}"] = v
    return out

def cache_metrics(doc):
    return {
        "hit_rate": doc["hit_rate"],
        "families_spawned": doc["families_spawned"],
        "backfills": doc["backfills"],
        "best_lookups_per_s": max(p["lookups_per_s"] for p in doc["lookup_points"]),
    }

# (file, metrics fn, gates). A gate is (metric, direction, deterministic):
# direction "higher"/"lower" is the good direction; deterministic metrics
# fall back to the committed headline when no trajectory row exists yet,
# host-dependent ones are skipped until CI has recorded a row.
FILES = [
    ("BENCH_serve.json", serve_metrics, [
        ("campaigns_per_virtual_ks_w8", "higher", True),
        ("mean_recovery_open_ms", "lower", False),
    ]),
    ("BENCH_bo.json", bo_metrics, [
        ("suggest_ns_per_trial_n500", "lower", False),
        ("sparse_gp_n100k_suggest_ns", "lower", False),
        ("sparse_gp_n100k_observe_ns", "lower", False),
        ("trust_region_n100k_suggest_ns", "lower", False),
        ("trust_region_n100k_observe_ns", "lower", False),
        ("speedup_100k_sparse_vs_dense_extrap", "higher", False),
        ("speedup_100k_trust_region_vs_dense_extrap", "higher", False),
    ]),
    ("BENCH_cache.json", cache_metrics, [
        ("hit_rate", "higher", True),
        ("best_lookups_per_s", "higher", False),
    ]),
]

failures = []
print(f"== trajectory gate (limit {limit:.0%}) ==")
for path, extract, gates in FILES:
    fresh = load(path)
    if fresh is None:
        failures.append(f"{path}: bin did not produce a readable file")
        continue
    committed = load(os.path.join(stash, path))
    metrics = extract(fresh)

    history = (committed or {}).get("trajectory", [])
    fresh["trajectory"] = history + [{"commit": commit, "date": date, "metrics": metrics}]
    with open(path, "w") as f:
        json.dump(fresh, f, indent=2)
        f.write("\n")

    baseline_row = history[-1]["metrics"] if history else None
    for metric, good, deterministic in gates:
        new = metrics[metric]
        if baseline_row is not None and metric in baseline_row:
            old, src = baseline_row[metric], "trajectory"
        elif deterministic and committed is not None:
            old, src = extract(committed)[metric], "headline"
        else:
            print(f"  {path}:{metric}: {new:.4g} (no committed baseline; recorded, not gated)")
            continue
        if old <= 0:
            continue
        ratio = new / old
        bad = ratio < 1.0 - limit if good == "higher" else ratio > 1.0 + limit
        verdict = "REGRESSED" if bad else "ok"
        print(f"  {path}:{metric}: {old:.4g} -> {new:.4g} ({ratio:.2f}x vs {src}) {verdict}")
        if bad:
            failures.append(f"{path}:{metric} moved {ratio:.2f}x vs {src} baseline")

if failures:
    print("\nFAIL: perf trajectory regression", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("trajectory rows appended; no regression beyond the limit")
PY

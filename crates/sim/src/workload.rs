//! Workload descriptions and schedules (tutorial slides 8, 16, 66).
//!
//! A [`Workload`] captures the properties that drive the simulators'
//! response surfaces: operation mix, access skew, working-set size, offered
//! load, and a scale factor for multi-fidelity experiments (TPC-H SF-1 vs
//! SF-100: "everything fits in memory, don't need to explore I/O
//! settings"). A [`WorkloadSchedule`] sequences workloads over time for the
//! online-tuning and shift-detection experiments.

use serde::{Deserialize, Serialize};

/// Canonical benchmark families the tutorial references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// YCSB workload A: 50/50 read/update, Zipfian.
    YcsbA,
    /// YCSB workload B: 95/5 read/update, Zipfian.
    YcsbB,
    /// YCSB workload C: read-only, Zipfian.
    YcsbC,
    /// TPC-C-like OLTP: short read-write transactions, moderate skew.
    Tpcc,
    /// TPC-H-like analytics: large scans and aggregations.
    Tpch,
    /// Key-value cache traffic (the Redis running example).
    KeyValueCache,
}

impl WorkloadKind {
    /// All kinds, for sweep experiments.
    pub fn all() -> &'static [WorkloadKind] {
        &[
            WorkloadKind::YcsbA,
            WorkloadKind::YcsbB,
            WorkloadKind::YcsbC,
            WorkloadKind::Tpcc,
            WorkloadKind::Tpch,
            WorkloadKind::KeyValueCache,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::YcsbA => "ycsb-a",
            WorkloadKind::YcsbB => "ycsb-b",
            WorkloadKind::YcsbC => "ycsb-c",
            WorkloadKind::Tpcc => "tpc-c",
            WorkloadKind::Tpch => "tpc-h",
            WorkloadKind::KeyValueCache => "kv-cache",
        }
    }
}

/// A fully-specified workload instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Benchmark family.
    pub kind: WorkloadKind,
    /// Fraction of operations that are reads (vs writes).
    pub read_fraction: f64,
    /// Fraction of operations that are large scans (vs point accesses).
    pub scan_fraction: f64,
    /// Zipfian skew θ ∈ [0, 1): 0 = uniform, →1 = extremely hot-key.
    pub skew: f64,
    /// Hot working-set size, GiB, at scale factor 1.
    pub working_set_gb: f64,
    /// Offered load, operations per second.
    pub offered_ops: f64,
    /// Scale factor: multiplies the working set and benchmark duration
    /// (multi-fidelity: SF-1 is cheap, SF-10 expensive and I/O-bound).
    pub scale_factor: f64,
    /// Benchmark duration at scale factor 1, seconds.
    pub base_duration_s: f64,
}

impl Workload {
    /// YCSB-A (update-heavy) at the given offered load.
    pub fn ycsb_a(offered_ops: f64) -> Self {
        Workload {
            kind: WorkloadKind::YcsbA,
            read_fraction: 0.5,
            scan_fraction: 0.0,
            skew: 0.8,
            working_set_gb: 4.0,
            offered_ops,
            scale_factor: 1.0,
            base_duration_s: 60.0,
        }
    }

    /// YCSB-B (read-mostly).
    pub fn ycsb_b(offered_ops: f64) -> Self {
        Workload {
            read_fraction: 0.95,
            ..Workload::ycsb_a(offered_ops)
        }
        .with_kind(WorkloadKind::YcsbB)
    }

    /// YCSB-C (read-only).
    pub fn ycsb_c(offered_ops: f64) -> Self {
        Workload {
            read_fraction: 1.0,
            ..Workload::ycsb_a(offered_ops)
        }
        .with_kind(WorkloadKind::YcsbC)
    }

    /// TPC-C-like OLTP at the given transaction rate.
    pub fn tpcc(offered_ops: f64) -> Self {
        Workload {
            kind: WorkloadKind::Tpcc,
            read_fraction: 0.65,
            scan_fraction: 0.04,
            skew: 0.5,
            working_set_gb: 10.0,
            offered_ops,
            scale_factor: 1.0,
            base_duration_s: 120.0,
        }
    }

    /// TPC-H-like analytics at a scale factor (SF-1 ≈ 1 GiB of data).
    pub fn tpch(scale_factor: f64) -> Self {
        Workload {
            kind: WorkloadKind::Tpch,
            read_fraction: 1.0,
            scan_fraction: 0.9,
            skew: 0.1,
            working_set_gb: 1.0,
            offered_ops: 8.0,
            scale_factor,
            base_duration_s: 30.0,
        }
    }

    /// Cache traffic for the Redis example.
    pub fn kv_cache(offered_ops: f64) -> Self {
        Workload {
            kind: WorkloadKind::KeyValueCache,
            read_fraction: 0.9,
            scan_fraction: 0.0,
            skew: 0.9,
            working_set_gb: 2.0,
            offered_ops,
            scale_factor: 1.0,
            base_duration_s: 30.0,
        }
    }

    fn with_kind(mut self, kind: WorkloadKind) -> Self {
        self.kind = kind;
        self
    }

    /// Builder-style scale-factor override.
    pub fn at_scale(mut self, scale_factor: f64) -> Self {
        self.scale_factor = scale_factor;
        self
    }

    /// Builder-style offered-load override.
    pub fn at_rate(mut self, offered_ops: f64) -> Self {
        self.offered_ops = offered_ops;
        self
    }

    /// Effective working-set size after scaling, GiB.
    pub fn effective_working_set_gb(&self) -> f64 {
        self.working_set_gb * self.scale_factor
    }

    /// Benchmark wall-clock, seconds (scales sublinearly: bigger runs
    /// amortize setup).
    pub fn duration_s(&self) -> f64 {
        self.base_duration_s * self.scale_factor.max(0.1).powf(0.8)
    }

    /// Write fraction.
    pub fn write_fraction(&self) -> f64 {
        1.0 - self.read_fraction
    }
}

/// A sequence of `(duration_steps, workload)` phases for online-tuning
/// experiments: the tutorial's "workload shifting" challenge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSchedule {
    phases: Vec<(usize, Workload)>,
}

impl WorkloadSchedule {
    /// Creates a schedule from phases.
    pub fn new(phases: Vec<(usize, Workload)>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert!(
            phases.iter().all(|(n, _)| *n > 0),
            "phases must last at least one step"
        );
        WorkloadSchedule { phases }
    }

    /// The workload active at time step `t` (the final phase persists
    /// beyond the schedule's end).
    pub fn at(&self, t: usize) -> &Workload {
        let mut acc = 0;
        for (n, w) in &self.phases {
            acc += n;
            if t < acc {
                return w;
            }
        }
        &self.phases.last().expect("non-empty").1 // lint: allow(D5) constructor asserts at least one phase
    }

    /// Total scheduled steps.
    pub fn len(&self) -> usize {
        self.phases.iter().map(|(n, _)| n).sum()
    }

    /// Whether the schedule is empty (never true: constructor enforces it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Step indices at which the workload changes.
    pub fn shift_points(&self) -> Vec<usize> {
        let mut points = Vec::new();
        let mut acc = 0;
        for (n, _) in &self.phases[..self.phases.len() - 1] {
            acc += n;
            points.push(acc);
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_mixes() {
        assert_eq!(Workload::ycsb_c(1000.0).read_fraction, 1.0);
        assert!(Workload::ycsb_a(1000.0).write_fraction() > 0.4);
        assert!(Workload::tpch(1.0).scan_fraction > 0.5);
        assert!(Workload::tpcc(500.0).write_fraction() > 0.3);
    }

    #[test]
    fn scale_factor_grows_working_set_and_duration() {
        let sf1 = Workload::tpch(1.0);
        let sf10 = Workload::tpch(10.0);
        assert!(sf10.effective_working_set_gb() > 9.0 * sf1.effective_working_set_gb());
        assert!(sf10.duration_s() > 3.0 * sf1.duration_s());
        assert!(
            sf10.duration_s() < 10.0 * sf1.duration_s(),
            "duration should scale sublinearly"
        );
    }

    #[test]
    fn schedule_phases_and_shift_points() {
        let s = WorkloadSchedule::new(vec![
            (10, Workload::ycsb_c(1000.0)),
            (5, Workload::ycsb_a(1000.0)),
            (5, Workload::tpch(1.0)),
        ]);
        assert_eq!(s.len(), 20);
        assert_eq!(s.at(0).kind, WorkloadKind::YcsbC);
        assert_eq!(s.at(9).kind, WorkloadKind::YcsbC);
        assert_eq!(s.at(10).kind, WorkloadKind::YcsbA);
        assert_eq!(s.at(14).kind, WorkloadKind::YcsbA);
        assert_eq!(s.at(15).kind, WorkloadKind::Tpch);
        // Past the end: final phase persists.
        assert_eq!(s.at(999).kind, WorkloadKind::Tpch);
        assert_eq!(s.shift_points(), vec![10, 15]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_rejected() {
        let _ = WorkloadSchedule::new(vec![]);
    }

    #[test]
    fn kind_names_unique() {
        let names: std::collections::BTreeSet<&str> =
            WorkloadKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), WorkloadKind::all().len());
    }

    #[test]
    fn serde_roundtrip() {
        let w = Workload::tpcc(900.0).at_scale(3.0);
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}

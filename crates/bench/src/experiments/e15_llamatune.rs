//! E15 (slide 62): LlamaTune — random-projection dimensionality reduction
//! plus bucketization. Paper: "Reduces PG configuration evaluations by up
//! to 11x; up to 21% higher throughput." We measure trials-to-target and
//! equal-budget quality on a 40-knob DBMS-like space with few influential
//! knobs, averaged over seeds.

use crate::report::{f, Report};
use autotune::{LlamaTune, LlamaTuneConfig};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_space::{Config, Param, Space};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 60-knob space — the regime the paper targets, where fitting a
/// surrogate over the full dimensionality is itself the bottleneck.
fn wide_space() -> Space {
    let mut b = Space::builder();
    for i in 0..60 {
        b = b.add(Param::float(format!("knob{i:02}"), 0.0, 1.0));
    }
    b.build().expect("valid space")
}

/// Four strong knobs (two redundantly correlated) plus twenty weak ones:
/// real DBMS response surfaces have a heavy head and a long tail of
/// slightly-relevant knobs.
fn objective(c: &Config) -> f64 {
    let g = |i: usize| c.get_f64(&format!("knob{i:02}")).expect("knob present");
    let combined = 0.5 * (g(0) + g(1));
    let mut cost =
        2.0 * (combined - 0.6).powi(2) + (g(7) - 0.3).powi(2) + 0.5 * (g(13) - 0.8).powi(2);
    for i in 20..40 {
        cost += 0.01 * (g(i) - 0.5).powi(2);
    }
    cost
}

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 30;
    let target_cost = 0.08;
    let n_seeds = 8u64;

    let run = |mut opt: Box<dyn Optimizer>, seed: u64| -> (Option<usize>, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = f64::INFINITY;
        let mut reached = None;
        for i in 0..budget {
            let c = opt.suggest(&mut rng);
            let v = objective(&c);
            opt.observe(&c, v);
            best = best.min(v);
            if reached.is_none() && best <= target_cost {
                reached = Some(i + 1);
            }
        }
        (reached, best)
    };

    let mut lt_trials = Vec::new();
    let mut full_trials = Vec::new();
    let mut lt_final = Vec::new();
    let mut full_final = Vec::new();
    for seed in 0..n_seeds {
        let (lt_r, lt_b) = run(
            Box::new(LlamaTune::new(
                wide_space(),
                LlamaTuneConfig {
                    low_dim: 12,
                    buckets: 20,
                    projection_seed: seed,
                },
            )),
            200 + seed,
        );
        let (fu_r, fu_b) = run(Box::new(BayesianOptimizer::gp(wide_space())), 200 + seed);
        lt_trials.push(lt_r.unwrap_or(budget + 1) as f64);
        full_trials.push(fu_r.unwrap_or(budget + 1) as f64);
        lt_final.push(lt_b);
        full_final.push(fu_b);
    }
    let lt_tt = autotune_linalg::stats::median(&lt_trials);
    let full_tt = autotune_linalg::stats::median(&full_trials);
    let lt_q = autotune_linalg::stats::mean(&lt_final);
    let full_q = autotune_linalg::stats::mean(&full_final);
    let speedup = full_tt / lt_tt.max(1.0);

    let rows = vec![
        vec!["llamatune (12-d proj)".into(), f(lt_tt, 1), f(lt_q, 4)],
        vec!["full-space BO (60-d)".into(), f(full_tt, 1), f(full_q, 4)],
        vec![
            "speedup (trials-to-target)".into(),
            format!("{speedup:.1}x"),
            String::new(),
        ],
    ];
    let shape_holds = lt_tt <= full_tt && lt_q <= full_q * 1.25;
    Report {
        id: "E15",
        title: "LlamaTune: random projection + bucketization (slide 62)",
        headers: vec!["method", "median trials to 0.08", "mean best @30"],
        rows,
        paper_claim: "up to 11x fewer evaluations; up to 21% better final config",
        measured: format!(
            "{speedup:.1}x fewer trials to target; equal-budget quality {} vs {}",
            f(lt_q, 4),
            f(full_q, 4)
        ),
        shape_holds,
    }
}

//! E10 (slide 57): parallel optimization — batch suggestion with the
//! constant liar. Same total trial budget at batch sizes 1/4/8: wall-clock
//! drops with batch size while solution quality stays comparable, and the
//! batches remain diverse.

use crate::experiments::redis_target;
use crate::report::{f, Report};
use autotune::run_parallel;
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let total = 32;
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &k in &[1usize, 4, 8] {
        // Average over a few seeds.
        let mut wall = 0.0;
        let mut machine = 0.0;
        let mut best = 0.0;
        let n_seeds = 5;
        for seed in 0..n_seeds {
            let target = redis_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            let s = run_parallel(&target, &mut opt, total / k, k, 77 + seed);
            wall += s.wall_clock_s / n_seeds as f64;
            machine += s.machine_seconds / n_seeds as f64;
            best += s.best_cost / n_seeds as f64;
        }
        rows.push(vec![
            format!("{k}"),
            format!("{} ms", f(best, 3)),
            format!("{wall:.0} s"),
            format!("{machine:.0} s"),
        ]);
        results.push((k, best, wall));
    }
    // Batch diversity: minimum pairwise distance within one suggested batch.
    let target = redis_target();
    let mut opt = BayesianOptimizer::gp(target.space().clone());
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let c = opt.suggest(&mut rng);
        let e = target.evaluate(&c, &mut rng);
        opt.observe(&c, e.cost);
    }
    let batch = opt.suggest_batch(8, &mut rng);
    let mut min_dist = f64::INFINITY;
    for i in 0..batch.len() {
        for j in (i + 1)..batch.len() {
            let a = target.space().encode_unit(&batch[i]).expect("encodes");
            let b = target.space().encode_unit(&batch[j]).expect("encodes");
            min_dist = min_dist.min(autotune_linalg::squared_distance(&a, &b).sqrt());
        }
    }
    rows.push(vec![
        "min batch dist (k=8)".into(),
        f(min_dist, 4),
        String::new(),
        String::new(),
    ]);

    let (_, best1, wall1) = results[0];
    let (_, best8, wall8) = results[2];
    let shape_holds = wall8 < wall1 * 0.25 && best8 < best1 * 1.5 && min_dist > 1e-6;
    Report {
        id: "E10",
        title: "Parallel optimization with constant liar (slide 57)",
        headers: vec!["batch k", "best P95", "wall clock", "machine secs"],
        rows,
        paper_claim:
            "k-way batches cut wall-clock ~k-fold at comparable quality; liar keeps batches diverse",
        measured: format!(
            "k=8 wall {} vs k=1 {} s; quality {} vs {} ms; min batch distance {}",
            f(wall8, 0),
            f(wall1, 0),
            f(best8, 3),
            f(best1, 3),
            f(min_dist, 4)
        ),
        shape_holds,
    }
}

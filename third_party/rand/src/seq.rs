//! Sequence helpers: in-place shuffling and random element choice.

use crate::RngCore;

/// Extension methods on slices that consume randomness.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

//! Declarative campaign construction.
//!
//! A [`CampaignSpec`] is a fully serializable description of one tuning
//! campaign — which simulated system, workload, environment, objective,
//! optimizer, schedule, budget and seed — from which [`CampaignSpec::build`]
//! constructs an owned `'static` [`Campaign`]. Because the spec is plain
//! data, it can cross the wire (the serving protocol's `Register` request
//! carries one) and be stored next to a [`CampaignSnapshot`]: spec + seed
//! rebuilds a pristine campaign, snapshot replay fast-forwards it, and the
//! determinism contract guarantees the pair reproduces the original
//! byte-for-byte.
//!
//! [`CampaignSnapshot`]: autotune::CampaignSnapshot

use autotune::{Campaign, NoiseStrategy, Objective, OwnedOptimizerSource, SchedulePolicy, Target};
use autotune_optimizer::{BayesianOptimizer, Optimizer, RandomSearch};
use autotune_sim::{
    CloudNoise, DbmsSim, Environment, FaultPlan, NginxSim, NoiseConfig, RedisSim, SimSystem,
    SparkSim, Workload,
};
use serde::{Deserialize, Serialize};

/// Which simulated system the campaign tunes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// In-memory KV store ([`RedisSim`]).
    Redis,
    /// OLTP/OLAP database ([`DbmsSim`]).
    Dbms,
    /// Batch analytics engine ([`SparkSim`]).
    Spark,
    /// Web/proxy server ([`NginxSim`]).
    Nginx,
}

impl SystemKind {
    /// Instantiates the simulator.
    pub fn build(self) -> Box<dyn SimSystem> {
        match self {
            SystemKind::Redis => Box::new(RedisSim::new()),
            SystemKind::Dbms => Box::new(DbmsSim::new()),
            SystemKind::Spark => Box::new(SparkSim::new()),
            SystemKind::Nginx => Box::new(NginxSim::new()),
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Redis => "redis",
            SystemKind::Dbms => "dbms",
            SystemKind::Spark => "spark",
            SystemKind::Nginx => "nginx",
        }
    }
}

/// Which optimizer drives the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Uniform random search.
    Random,
    /// Bayesian optimization with a GP surrogate.
    BoGp,
    /// SMAC-style Bayesian optimization (random-forest surrogate).
    BoSmac,
}

impl OptimizerKind {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OptimizerKind::Random => "random",
            OptimizerKind::BoGp => "bo-gp",
            OptimizerKind::BoSmac => "bo-smac",
        }
    }
}

/// A serializable cloud-noise fleet description (the runtime
/// [`CloudNoise`] itself is not serialized; it is reconstructed from
/// these three values, which fully determine it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Fleet size.
    pub n_machines: usize,
    /// Per-machine noise model parameters.
    pub config: NoiseConfig,
    /// Fleet seed (machine speeds, drift phases).
    pub seed: u64,
}

impl NoiseSpec {
    /// Instantiates the fleet.
    pub fn build(&self) -> CloudNoise {
        CloudNoise::new_fleet(self.n_machines, self.config.clone(), self.seed)
    }
}

/// A complete, serializable description of one tuning campaign.
///
/// ```
/// use autotune::{Objective, SchedulePolicy};
/// use autotune_serve::{CampaignSpec, OptimizerKind, SystemKind};
/// use autotune_sim::{Environment, Workload};
///
/// let spec = CampaignSpec {
///     name: "redis-p99".into(),
///     system: SystemKind::Redis,
///     workload: Workload::kv_cache(80_000.0),
///     environment: Environment::small(),
///     objective: Objective::MinimizeLatencyP99,
///     optimizer: OptimizerKind::Random,
///     policy: SchedulePolicy::Sequential,
///     budget: 8,
///     seed: 42,
///     noise: None,
///     faults: None,
///     measurement: None,
/// };
/// let mut campaign = spec.build();
/// let report = campaign.run();
/// assert_eq!(report.metrics.n_suggested, 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Human-readable campaign name (registry display only; plays no
    /// part in the determinism contract).
    pub name: String,
    /// System under tuning.
    pub system: SystemKind,
    /// Offered workload.
    pub workload: Workload,
    /// Hardware/VM context.
    pub environment: Environment,
    /// What "better" means.
    pub objective: Objective,
    /// Suggestion engine.
    pub optimizer: OptimizerKind,
    /// Concurrency/barrier structure.
    pub policy: SchedulePolicy,
    /// Trial budget.
    pub budget: usize,
    /// Campaign seed (suggestion stream + per-trial eval seeds).
    pub seed: u64,
    /// Optional cloud-noise fleet.
    #[serde(default)]
    pub noise: Option<NoiseSpec>,
    /// Optional deterministic fault-injection plan.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Per-trial measurement policy (default: one raw run).
    #[serde(default)]
    pub measurement: Option<NoiseStrategy>,
}

impl CampaignSpec {
    /// A minimal spec over `system` with sensible defaults; builder-style
    /// field access fills in the rest.
    pub fn minimal(name: impl Into<String>, system: SystemKind, budget: usize, seed: u64) -> Self {
        CampaignSpec {
            name: name.into(),
            system,
            workload: Workload::kv_cache(50_000.0),
            environment: Environment::small(),
            objective: Objective::MinimizeLatencyAvg,
            optimizer: OptimizerKind::Random,
            policy: SchedulePolicy::Sequential,
            budget,
            seed,
            noise: None,
            faults: None,
            measurement: None,
        }
    }

    /// Constructs the campaign this spec describes. Building the same
    /// spec twice yields campaigns that produce byte-identical histories
    /// (the spec carries every input to the determinism contract).
    pub fn build(&self) -> Campaign<'static> {
        let mut target = Target::simulated(
            self.system.build(),
            self.workload.clone(),
            self.environment.clone(),
            self.objective.clone(),
        );
        if let Some(noise) = &self.noise {
            target = target.with_noise(noise.build());
        }
        if let Some(faults) = &self.faults {
            target = target.with_faults(faults.clone());
        }
        let optimizer: Box<dyn Optimizer> = match self.optimizer {
            OptimizerKind::Random => Box::new(RandomSearch::new(target.space().clone())),
            OptimizerKind::BoGp => Box::new(BayesianOptimizer::gp(target.space().clone())),
            OptimizerKind::BoSmac => Box::new(BayesianOptimizer::smac(target.space().clone())),
        };
        let source = OwnedOptimizerSource::new(optimizer, self.budget);
        let mut campaign = Campaign::new(target, Box::new(source), self.policy, self.seed);
        if let Some(strategy) = &self.measurement {
            campaign = campaign.with_noise_strategy(strategy.clone());
        }
        campaign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        let mut s = CampaignSpec::minimal("t", SystemKind::Dbms, 6, 9);
        s.workload = Workload::tpcc(2_000.0);
        s.objective = Objective::MinimizeLatencyAvg;
        s.policy = SchedulePolicy::SyncBatch { k: 2 };
        s
    }

    fn run_to_history(s: &CampaignSpec) -> (u64, String) {
        let mut c = s.build();
        let report = c.run();
        (report.metrics.n_suggested, c.storage().to_json())
    }

    #[test]
    fn build_determinism_same_spec_same_history() {
        let (_, a) = run_to_history(&spec());
        let (_, b) = run_to_history(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn spec_json_round_trip_preserves_build_determinism() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        let (n, a) = run_to_history(&s);
        let (_, b) = run_to_history(&back);
        assert_eq!(n, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_faulty_spec_builds_and_runs() {
        let mut s = spec();
        s.noise = Some(NoiseSpec {
            n_machines: 3,
            config: NoiseConfig::default(),
            seed: 7,
        });
        s.faults = Some(FaultPlan::new(11));
        let report = s.build().run();
        assert_eq!(report.metrics.n_suggested, 6);
    }
}

//! Trial records and history storage.
//!
//! Every benchmark run becomes a [`Trial`], and [`TrialStorage`] is the
//! framework's experiment database: it answers "what have we tried, what
//! did it score, what is the incumbent", deduplicates repeats, exports to
//! JSON for knowledge transfer between campaigns, and produces the
//! best-so-far convergence curves every experiment report plots.

use autotune_space::Config;
use serde::{Deserialize, Serialize};

/// Serializes NaN as JSON `null` (and back), since JSON has no NaN.
/// Shared with the executor's event types ([`crate::executor::Measurement`],
/// [`crate::executor::TrialOutcome`]), whose cost fields are NaN for
/// crashed trials.
pub(crate) mod nan_as_null {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_nan() {
            s.serialize_none()
        } else {
            s.serialize_some(v)
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::NAN))
    }
}

/// Lifecycle of a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrialStatus {
    /// Completed normally.
    Complete,
    /// The configuration crashed the system under test.
    Crashed,
    /// Cut short by censoring middleware (early abort or a wall-clock
    /// timeout); cost is right-censored.
    Aborted,
    /// Lost to infrastructure (machine blip, outage, unrecovered hang)
    /// with every retry exhausted. Carries no information about the
    /// configuration, so it never reaches the learner as a crash.
    TransientFailure,
}

/// One recorded benchmark run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// Sequence number within the campaign.
    pub id: u64,
    /// The evaluated configuration.
    pub config: Config,
    /// Scalar cost under the campaign objective (NaN when crashed).
    ///
    /// JSON has no NaN, so crashes serialize as `null` and round-trip
    /// back to NaN.
    #[serde(with = "nan_as_null")]
    pub cost: f64,
    /// Benchmark wall-clock consumed, seconds.
    pub elapsed_s: f64,
    /// Fidelity the trial ran at (1.0 = full fidelity).
    pub fidelity: f64,
    /// Machine the trial landed on, when the noise model assigns one.
    pub machine_id: Option<usize>,
    /// Outcome.
    pub status: TrialStatus,
    /// Retry attempts consumed before this outcome (0 = first try).
    #[serde(default)]
    pub retries: u32,
}

/// In-memory experiment history with JSON import/export.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrialStorage {
    trials: Vec<Trial>,
}

impl TrialStorage {
    /// Empty storage.
    pub fn new() -> Self {
        TrialStorage::default()
    }

    /// Appends a trial, assigning it the next id. Returns the id.
    pub fn record(&mut self, mut trial: Trial) -> u64 {
        trial.id = self.trials.len() as u64;
        let id = trial.id;
        self.trials.push(trial);
        id
    }

    /// Records an evaluation, deriving the [`TrialStatus`] from the cost
    /// in one place: any non-finite cost (NaN *or* a diverging ±inf)
    /// means the configuration crashed the system and must not enter the
    /// learner as a real observation; anything else completed. (Censored
    /// trials go through [`Trial::aborted`], infrastructure losses
    /// through [`Trial::transient_failure`].) Returns the id.
    pub fn record_eval(
        &mut self,
        config: Config,
        cost: f64,
        elapsed_s: f64,
        fidelity: f64,
        machine_id: Option<usize>,
    ) -> u64 {
        let status = if cost.is_finite() {
            TrialStatus::Complete
        } else {
            TrialStatus::Crashed
        };
        self.record(Trial {
            id: 0,
            config,
            cost,
            elapsed_s,
            fidelity,
            machine_id,
            status,
            retries: 0,
        })
    }

    /// All trials in execution order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Consumes the storage, yielding the trials in execution order
    /// (e.g. to merge a campaign's history into a longer-lived store —
    /// [`TrialStorage::record`] renumbers ids on the way in).
    pub fn into_trials(self) -> Vec<Trial> {
        self.trials
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trials are stored.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// The completed trial with the lowest cost.
    pub fn best(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .filter(|t| t.status == TrialStatus::Complete && t.cost.is_finite())
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }

    /// Best-so-far cost after each trial (the convergence curve). Trials
    /// before the first success contribute `NaN`.
    pub fn convergence_curve(&self) -> Vec<f64> {
        let mut best = f64::NAN;
        self.trials
            .iter()
            .map(|t| {
                // `best` starts as NaN, so compare via explicit
                // is_nan rather than a NaN-exploiting negation.
                if t.status == TrialStatus::Complete
                    && t.cost.is_finite()
                    && (best.is_nan() || t.cost < best)
                {
                    best = t.cost;
                }
                best
            })
            .collect()
    }

    /// Trials-to-target: the first trial index whose best-so-far cost is
    /// `<= target`, if ever reached.
    pub fn trials_to_reach(&self, target: f64) -> Option<usize> {
        self.convergence_curve()
            .iter()
            .position(|&c| c.is_finite() && c <= target)
            .map(|i| i + 1)
    }

    /// Total benchmark seconds consumed (the *real* cost of a campaign).
    pub fn total_elapsed_s(&self) -> f64 {
        self.trials.iter().map(|t| t.elapsed_s).sum()
    }

    /// Number of crashed trials.
    pub fn n_crashed(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.status == TrialStatus::Crashed)
            .count()
    }

    /// Number of trials lost to infrastructure after exhausting retries.
    pub fn n_transient_failures(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.status == TrialStatus::TransientFailure)
            .count()
    }

    /// Total retry attempts consumed across all trials.
    pub fn n_retried(&self) -> usize {
        self.trials.iter().map(|t| t.retries as usize).sum()
    }

    /// Whether a configuration was already evaluated (exact match on the
    /// rendered form).
    pub fn contains_config(&self, config: &Config) -> bool {
        let key = config.render();
        self.trials.iter().any(|t| t.config.render() == key)
    }

    /// Exports the history as JSON (the transfer format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trials serialize") // lint: allow(D5) serializing plain data cannot fail
    }

    /// Imports a history previously exported with [`TrialStorage::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Builder-style constructor for completed trials.
impl Trial {
    /// A completed trial at full fidelity.
    pub fn complete(config: Config, cost: f64, elapsed_s: f64) -> Self {
        Trial {
            id: 0,
            config,
            cost,
            elapsed_s,
            fidelity: 1.0,
            machine_id: None,
            status: TrialStatus::Complete,
            retries: 0,
        }
    }

    /// A trial cut short by the early-abort policy; `cost` is the
    /// censored (threshold) value.
    pub fn aborted(config: Config, cost: f64, elapsed_s: f64) -> Self {
        Trial {
            id: 0,
            config,
            cost,
            elapsed_s,
            fidelity: 1.0,
            machine_id: None,
            status: TrialStatus::Aborted,
            retries: 0,
        }
    }

    /// A crashed trial.
    pub fn crashed(config: Config, elapsed_s: f64) -> Self {
        Trial {
            id: 0,
            config,
            cost: f64::NAN,
            elapsed_s,
            fidelity: 1.0,
            machine_id: None,
            status: TrialStatus::Crashed,
            retries: 0,
        }
    }

    /// A trial lost to infrastructure with retries exhausted; the cost is
    /// unknown (NaN) and the elapsed time is what the failed attempts
    /// (plus backoff) burned.
    pub fn transient_failure(config: Config, elapsed_s: f64) -> Self {
        Trial {
            id: 0,
            config,
            cost: f64::NAN,
            elapsed_s,
            fidelity: 1.0,
            machine_id: None,
            status: TrialStatus::TransientFailure,
            retries: 0,
        }
    }

    /// Builder-style fidelity annotation.
    pub fn at_fidelity(mut self, fidelity: f64) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Builder-style machine annotation.
    pub fn on_machine(mut self, machine_id: usize) -> Self {
        self.machine_id = Some(machine_id);
        self
    }

    /// Builder-style retry count annotation.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(x: f64) -> Config {
        Config::new().with("x", x)
    }

    #[test]
    fn record_assigns_sequential_ids() {
        let mut s = TrialStorage::new();
        assert_eq!(s.record(Trial::complete(cfg(1.0), 5.0, 10.0)), 0);
        assert_eq!(s.record(Trial::complete(cfg(2.0), 3.0, 10.0)), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn best_ignores_crashes() {
        let mut s = TrialStorage::new();
        s.record(Trial::complete(cfg(1.0), 5.0, 10.0));
        s.record(Trial::crashed(cfg(2.0), 2.0));
        s.record(Trial::complete(cfg(3.0), 3.0, 10.0));
        assert_eq!(s.best().unwrap().cost, 3.0);
        assert_eq!(s.n_crashed(), 1);
    }

    #[test]
    fn convergence_curve_monotone() {
        let mut s = TrialStorage::new();
        for &c in &[5.0, 7.0, 3.0, 4.0, 1.0] {
            s.record(Trial::complete(cfg(c), c, 1.0));
        }
        assert_eq!(s.convergence_curve(), vec![5.0, 5.0, 3.0, 3.0, 1.0]);
        assert_eq!(s.trials_to_reach(3.0), Some(3));
        assert_eq!(s.trials_to_reach(0.5), None);
    }

    #[test]
    fn curve_starts_nan_before_first_success() {
        let mut s = TrialStorage::new();
        s.record(Trial::crashed(cfg(1.0), 1.0));
        s.record(Trial::complete(cfg(2.0), 4.0, 1.0));
        let curve = s.convergence_curve();
        assert!(curve[0].is_nan());
        assert_eq!(curve[1], 4.0);
    }

    #[test]
    fn elapsed_accounting() {
        let mut s = TrialStorage::new();
        s.record(Trial::complete(cfg(1.0), 1.0, 30.0));
        s.record(Trial::crashed(cfg(2.0), 5.0));
        assert_eq!(s.total_elapsed_s(), 35.0);
    }

    #[test]
    fn contains_config_matches_rendered_form() {
        let mut s = TrialStorage::new();
        s.record(Trial::complete(cfg(1.5), 1.0, 1.0));
        assert!(s.contains_config(&cfg(1.5)));
        assert!(!s.contains_config(&cfg(2.5)));
    }

    #[test]
    fn json_roundtrip() {
        let mut s = TrialStorage::new();
        s.record(
            Trial::complete(cfg(1.0), 2.0, 3.0)
                .at_fidelity(0.5)
                .on_machine(7),
        );
        let json = s.to_json();
        let back = TrialStorage::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.trials()[0].fidelity, 0.5);
        assert_eq!(back.trials()[0].machine_id, Some(7));
    }

    #[test]
    fn nan_cost_never_best() {
        let mut s = TrialStorage::new();
        s.record(Trial {
            id: 0,
            config: cfg(1.0),
            cost: f64::NAN,
            elapsed_s: 1.0,
            fidelity: 1.0,
            machine_id: None,
            status: TrialStatus::Complete,
            retries: 0,
        });
        assert!(s.best().is_none());
    }

    #[test]
    fn infinite_cost_is_classified_as_crash() {
        // A diverging simulated cost must not enter the history as a real
        // observation (regression: only NaN used to count as a crash).
        let mut s = TrialStorage::new();
        s.record_eval(cfg(1.0), f64::INFINITY, 1.0, 1.0, None);
        s.record_eval(cfg(2.0), f64::NEG_INFINITY, 1.0, 1.0, None);
        s.record_eval(cfg(3.0), 2.0, 1.0, 1.0, None);
        assert_eq!(s.n_crashed(), 2);
        assert_eq!(s.best().unwrap().cost, 2.0);
        assert!(s
            .trials()
            .iter()
            .filter(|t| !t.cost.is_finite())
            .all(|t| t.status == TrialStatus::Crashed));
    }

    #[test]
    fn transient_failures_are_counted_separately_from_crashes() {
        let mut s = TrialStorage::new();
        s.record(Trial::crashed(cfg(1.0), 1.0));
        s.record(Trial::transient_failure(cfg(2.0), 4.0).with_retries(3));
        s.record(Trial::complete(cfg(3.0), 1.5, 1.0).with_retries(1));
        assert_eq!(s.n_crashed(), 1);
        assert_eq!(s.n_transient_failures(), 1);
        assert_eq!(s.n_retried(), 4);
        // A transient failure is never the best and never bends the curve.
        assert_eq!(s.best().unwrap().cost, 1.5);
    }

    #[test]
    fn retries_survive_json_roundtrip() {
        let mut s = TrialStorage::new();
        s.record(Trial::transient_failure(cfg(1.0), 2.0).with_retries(2));
        let back = TrialStorage::from_json(&s.to_json()).unwrap();
        assert_eq!(back.trials()[0].retries, 2);
        assert_eq!(back.trials()[0].status, TrialStatus::TransientFailure);
        assert!(back.trials()[0].cost.is_nan());
    }
}

//! E1 (slide 10): why tune — "properly tuned database systems can achieve
//! 4-10x higher throughput" and "68 % reduction in P95 latency for Redis"
//! from tuning kernel scheduler parameters.

use crate::report::{f, Report};
use autotune::{Objective, SessionConfig, Target, TuningSession};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{DbmsSim, Environment, RedisSim, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    // --- DBMS throughput: default vs tuned ---
    let dbms = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpcc(50_000.0),
        Environment::medium(),
        Objective::MaximizeThroughput,
    );
    let mut rng = StdRng::seed_from_u64(0);
    let default_thr = -(0..5)
        .map(|_| dbms.evaluate(&dbms.space().default_config(), &mut rng).cost)
        .sum::<f64>()
        / 5.0;
    let opt = BayesianOptimizer::smac(dbms.space().clone());
    let mut session = TuningSession::new(dbms, Box::new(opt), SessionConfig::default());
    let summary = session.run(80, 1).expect("tuning campaign succeeds");
    let tuned_thr = -summary.best_cost;
    let gain = tuned_thr / default_thr;

    // --- Redis P95: kernel default vs tuned scheduler knob ---
    let redis = Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    );
    let mut rng = StdRng::seed_from_u64(2);
    let default_p95 = (0..8)
        .map(|_| {
            redis
                .evaluate(&redis.space().default_config(), &mut rng)
                .cost
        })
        .sum::<f64>()
        / 8.0;
    let opt = BayesianOptimizer::gp(redis.space().clone());
    let mut session = TuningSession::new(redis, Box::new(opt), SessionConfig::default());
    let rsum = session.run(40, 3).expect("tuning campaign succeeds");
    let reduction = 100.0 * (1.0 - rsum.best_cost / default_p95);

    let shape_holds = (3.0..=20.0).contains(&gain) && (40.0..=85.0).contains(&reduction);
    Report {
        id: "E1",
        title: "Why tune? (slide 10)",
        headers: vec!["system", "metric", "default", "tuned", "improvement"],
        rows: vec![
            vec![
                "dbms/tpc-c".into(),
                "throughput".into(),
                format!("{default_thr:.0} tps"),
                format!("{tuned_thr:.0} tps"),
                format!("{gain:.1}x"),
            ],
            vec![
                "redis/kv".into(),
                "P95 latency".into(),
                format!("{} ms", f(default_p95, 2)),
                format!("{} ms", f(rsum.best_cost, 2)),
                format!("-{reduction:.0}%"),
            ],
        ],
        paper_claim: "4-10x higher DB throughput; 68% P95 latency reduction for Redis",
        measured: format!("{gain:.1}x throughput; {reduction:.0}% P95 reduction"),
        shape_holds,
    }
}

//! Online tuning under workload drift (slides 75-84).
//!
//! An agent tunes a live database whose traffic shifts from read-only
//! (YCSB-C) to update-heavy (YCSB-A) and then to analytics (TPC-H). The
//! context-scoped Thompson bandit relearns after each detected shift, the
//! safety guardrail blocks configurations that regress the incumbent, and
//! the run is compared against every static configuration.
//!
//! Run with:
//! ```text
//! cargo run -p autotune-examples --bin online_adaptation --release
//! ```

use autotune::{static_config_cost, Objective, OnlineTuner, OnlineTunerConfig, Target};
use autotune_rl::SafeTunerConfig;
use autotune_sim::{DbmsSim, Environment, Workload, WorkloadSchedule};

fn main() {
    println!("== Online tuning across workload shifts ==\n");
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::ycsb_c(2_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    );
    let schedule = WorkloadSchedule::new(vec![
        (80, Workload::ycsb_c(2_000.0)),
        (80, Workload::ycsb_a(2_000.0)),
        (80, Workload::tpch(2.0)),
    ]);
    println!("schedule: 80 steps YCSB-C -> 80 steps YCSB-A -> 80 steps TPC-H");
    println!("true shift points: t=80, t=160\n");

    // Candidate menu: plausible configs an offline campaign might ship.
    let base = target.space().default_config().with("buffer_pool_gb", 8.0);
    let candidates = vec![
        base.clone().with("query_cache", true), // read-optimized
        base.clone()
            .with("query_cache", false)
            .with("log_file_size_mb", 2048.0), // write-optimized
        base.clone()
            .with("jit", true)
            .with("jit_above_cost", 1e5)
            .with("io_threads", 32i64), // scan-optimized
    ];
    let labels = ["read-optimized", "write-optimized", "scan-optimized"];

    let mut tuner = OnlineTuner::new(
        candidates.clone(),
        OnlineTunerConfig {
            safety: Some(SafeTunerConfig::default()),
            ..Default::default()
        },
    );
    tuner.run(&target, &schedule, 240, 11);

    println!("detected shifts at: {:?}\n", tuner.detected_shifts());
    println!(
        "{:<12} {:>16} {:>16} {:>16}",
        "phase", labels[0], labels[1], labels[2]
    );
    for (phase, range) in [
        ("ycsb-c", 40..80),
        ("ycsb-a", 120..160),
        ("tpc-h", 200..240),
    ] {
        let counts: Vec<usize> = (0..3)
            .map(|arm| {
                tuner.history()[range.clone()]
                    .iter()
                    .filter(|s| s.arm == arm)
                    .count()
            })
            .collect();
        println!(
            "{:<12} {:>15}x {:>15}x {:>15}x",
            phase, counts[0], counts[1], counts[2]
        );
    }

    let online = tuner.cumulative_cost();
    println!("\ncumulative cost (lower is better):");
    println!("  online agent       : {online:.2}");
    for (label, cfg) in labels.iter().zip(&candidates) {
        let c = static_config_cost(&target, cfg, &schedule, 240, 11);
        println!("  static {:<12}: {c:.2}", label);
    }
    let guarded = tuner.history().iter().filter(|s| s.guarded).count();
    println!("\nguardrail interventions: {guarded}");
}

//! Safe online exploration with guardrails (tutorial slide 84).
//!
//! Production tuning must not regress the system it is tuning. The
//! [`SafeTuner`] wraps any candidate-producing policy with:
//!
//! * a **baseline** (the incumbent configuration's running cost);
//! * a **guardrail**: a candidate whose measured cost exceeds
//!   `baseline * (1 + tolerance)` is immediately reverted and, after
//!   repeated violations, blacklisted (OnlineTune/LOCAT-style safety);
//! * **trust region** promotion: a candidate only becomes the new
//!   incumbent after `promote_after` consecutive measurements at or below
//!   the baseline.
//!
//! Cost convention: **minimize** (it guards system metrics, which arrive
//! as latency/cost).

use autotune_linalg::stats::RunningStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Guardrail settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SafeTunerConfig {
    /// Allowed relative regression over the baseline before a candidate is
    /// rejected (e.g. 0.1 = 10 %).
    pub tolerance: f64,
    /// Consecutive in-budget measurements required to promote a candidate
    /// to incumbent.
    pub promote_after: usize,
    /// Guardrail violations before a candidate is blacklisted outright.
    pub blacklist_after: usize,
}

impl Default for SafeTunerConfig {
    fn default() -> Self {
        SafeTunerConfig {
            tolerance: 0.1,
            promote_after: 3,
            blacklist_after: 2,
        }
    }
}

/// What the tuner decided after a measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafeDecision {
    /// Keep evaluating the candidate (within budget, not yet promoted).
    Continue,
    /// Candidate promoted to incumbent.
    Promoted,
    /// Candidate breached the guardrail; revert to the incumbent.
    Reverted,
    /// Candidate breached the guardrail too often; never try it again.
    Blacklisted,
}

/// Guardrailed candidate evaluation around a trusted incumbent.
///
/// Generic over how candidates are produced — callers pass candidate keys
/// (rendered configurations) plus measured costs; the wrapped search policy
/// lives outside.
#[derive(Debug, Clone)]
pub struct SafeTuner {
    config: SafeTunerConfig,
    baseline: RunningStats,
    /// Current candidate under evaluation: key and its in-budget streak.
    candidate: Option<(String, usize)>,
    /// Guardrail violations per candidate key.
    violations: BTreeMap<String, usize>,
    blacklist: std::collections::BTreeSet<String>,
    regressions_served: usize,
}

impl SafeTuner {
    /// Creates a tuner; feed baseline measurements before exploring.
    pub fn new(config: SafeTunerConfig) -> Self {
        SafeTuner {
            config,
            baseline: RunningStats::new(),
            candidate: None,
            violations: BTreeMap::new(),
            blacklist: std::collections::BTreeSet::new(),
            regressions_served: 0,
        }
    }

    /// Records a measurement of the *incumbent* configuration.
    pub fn observe_baseline(&mut self, cost: f64) {
        if cost.is_finite() {
            self.baseline.push(cost);
        }
    }

    /// Running mean cost of the incumbent.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline.mean()
    }

    /// The guardrail threshold candidates must stay under.
    pub fn guardrail(&self) -> f64 {
        self.baseline_cost() * (1.0 + self.config.tolerance)
    }

    /// Whether a candidate key is blacklisted.
    pub fn is_blacklisted(&self, key: &str) -> bool {
        self.blacklist.contains(key)
    }

    /// Total measurements that breached the guardrail (the "regressions
    /// served to users" count reported in E24).
    pub fn regressions_served(&self) -> usize {
        self.regressions_served
    }

    /// Asks whether `key` may be evaluated at all. Admission registers the
    /// key as the active candidate; only one candidate is live at a time.
    /// (Without a baseline there is nothing to protect, but the
    /// one-at-a-time discipline still applies so measurements attribute
    /// cleanly.)
    pub fn admit(&mut self, key: &str) -> bool {
        if self.blacklist.contains(key) {
            return false;
        }
        match &self.candidate {
            Some((current, _)) => current == key,
            None => {
                self.candidate = Some((key.to_string(), 0));
                true
            }
        }
    }

    /// Records a measurement of the current candidate and returns the
    /// guardrail decision.
    ///
    /// # Panics
    /// Panics if no candidate was admitted (`admit` not called / refused).
    pub fn observe_candidate(&mut self, key: &str, cost: f64) -> SafeDecision {
        let (current, streak) = self
            .candidate
            .clone()
            .expect("observe_candidate without an admitted candidate"); // lint: allow(D5) documented panic: admit() must precede
        assert_eq!(current, key, "observation for a non-admitted candidate");
        let breach = !cost.is_finite() || (self.baseline.count() > 0 && cost > self.guardrail());
        if breach {
            self.regressions_served += 1;
            let v = self.violations.entry(key.to_string()).or_insert(0);
            *v += 1;
            self.candidate = None;
            if *v >= self.config.blacklist_after {
                self.blacklist.insert(key.to_string());
                return SafeDecision::Blacklisted;
            }
            return SafeDecision::Reverted;
        }
        let streak = streak + 1;
        if streak >= self.config.promote_after {
            // Candidate becomes the incumbent; its measurements seed the
            // new baseline.
            self.baseline = RunningStats::new();
            self.baseline.push(cost);
            self.candidate = None;
            self.violations.remove(key);
            SafeDecision::Promoted
        } else {
            self.candidate = Some((current, streak));
            SafeDecision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_tuner() -> SafeTuner {
        let mut t = SafeTuner::new(SafeTunerConfig::default());
        for _ in 0..5 {
            t.observe_baseline(10.0);
        }
        t
    }

    #[test]
    fn guardrail_is_tolerance_above_baseline() {
        let t = seeded_tuner();
        assert!((t.baseline_cost() - 10.0).abs() < 1e-12);
        assert!((t.guardrail() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn good_candidate_promotes_after_streak() {
        let mut t = seeded_tuner();
        assert!(t.admit("cfg_a"));
        assert_eq!(t.observe_candidate("cfg_a", 8.0), SafeDecision::Continue);
        assert!(t.admit("cfg_a"));
        assert_eq!(t.observe_candidate("cfg_a", 8.5), SafeDecision::Continue);
        assert!(t.admit("cfg_a"));
        assert_eq!(t.observe_candidate("cfg_a", 8.2), SafeDecision::Promoted);
        // Baseline moved to the candidate's level.
        assert!(t.baseline_cost() < 9.0);
        assert_eq!(t.regressions_served(), 0);
    }

    #[test]
    fn regressing_candidate_reverted_then_blacklisted() {
        let mut t = seeded_tuner();
        assert!(t.admit("bad"));
        assert_eq!(t.observe_candidate("bad", 20.0), SafeDecision::Reverted);
        assert!(t.admit("bad")); // second chance
        assert_eq!(t.observe_candidate("bad", 25.0), SafeDecision::Blacklisted);
        assert!(t.is_blacklisted("bad"));
        assert!(!t.admit("bad"));
        assert_eq!(t.regressions_served(), 2);
    }

    #[test]
    fn only_one_candidate_at_a_time() {
        let mut t = seeded_tuner();
        assert!(t.admit("a"));
        assert!(!t.admit("b"), "second candidate admitted concurrently");
        assert!(t.admit("a"), "the active candidate must stay admitted");
    }

    #[test]
    fn crash_counts_as_breach() {
        let mut t = seeded_tuner();
        assert!(t.admit("crashy"));
        assert_eq!(
            t.observe_candidate("crashy", f64::NAN),
            SafeDecision::Reverted
        );
        assert_eq!(t.regressions_served(), 1);
    }

    #[test]
    fn no_baseline_still_enforces_one_candidate() {
        let mut t = SafeTuner::new(SafeTunerConfig::default());
        assert!(t.admit("anything"));
        assert!(!t.admit("anything_else"), "one candidate at a time");
        // Without a baseline a finite cost cannot breach.
        assert_eq!(
            t.observe_candidate("anything", 123.0),
            SafeDecision::Continue
        );
    }

    #[test]
    fn streak_resets_between_candidates() {
        let mut t = seeded_tuner();
        assert!(t.admit("a"));
        assert_eq!(t.observe_candidate("a", 9.0), SafeDecision::Continue);
        assert_eq!(t.observe_candidate("a", 30.0), SafeDecision::Reverted);
        // New candidate starts a fresh streak.
        assert!(t.admit("b"));
        assert_eq!(t.observe_candidate("b", 9.0), SafeDecision::Continue);
    }
}

//! Synthetic benchmark generation (tutorial slide 92; Stitcher, EDBT 2019).
//!
//! Given production telemetry (a target fingerprint) and a dictionary of
//! base benchmarks with known fingerprints, find non-negative mixture
//! weights summing to one whose blended fingerprint best matches the
//! target. The system can then be tuned offline against that synthetic
//! mixture and the resulting configuration deployed to production — all
//! without ever replaying (or seeing) customer queries.
//!
//! Solved as simplex-constrained least squares by projected gradient
//! descent — small (a handful of base benchmarks), so robustness beats
//! sophistication.

use crate::{Fingerprint, Result, WidError};

/// Finds mixture weights over `basis` fingerprints approximating `target`.
///
/// Returns `(weights, residual_norm)`; weights are non-negative and sum
/// to 1.
pub fn synthesize_mixture(basis: &[Fingerprint], target: &Fingerprint) -> Result<(Vec<f64>, f64)> {
    if basis.is_empty() {
        return Err(WidError::NotEnoughData {
            what: "mixture basis",
            needed: 1,
            got: 0,
        });
    }
    let d = target.dim();
    for b in basis {
        if b.dim() != d {
            return Err(WidError::DimensionMismatch {
                expected: d,
                actual: b.dim(),
            });
        }
    }
    let k = basis.len();
    // Normalize feature scales so large-magnitude channels (ops/s) do not
    // drown the utilization channels.
    let scale: Vec<f64> = (0..d)
        .map(|j| {
            let mut m = target.features()[j].abs();
            for b in basis {
                m = m.max(b.features()[j].abs());
            }
            m.max(1e-9)
        })
        .collect();
    let scaled = |f: &Fingerprint| -> Vec<f64> {
        f.features()
            .iter()
            .zip(&scale)
            .map(|(&x, &s)| x / s)
            .collect()
    };
    let b_scaled: Vec<Vec<f64>> = basis.iter().map(scaled).collect();
    let t_scaled = scaled(target);

    let mut w = vec![1.0 / k as f64; k];
    let mut best_w = w.clone();
    let mut best_res = residual(&b_scaled, &t_scaled, &w);
    // Projected gradient descent with a fixed step and simplex projection.
    let step = 0.5 / k as f64;
    for _ in 0..2000 {
        // Gradient of ||B^T w - t||^2 wrt w: 2 B (B^T w - t).
        let blend = blend(&b_scaled, &w);
        let err: Vec<f64> = blend.iter().zip(&t_scaled).map(|(&a, &b)| a - b).collect();
        for (wi, bi) in w.iter_mut().zip(&b_scaled) {
            *wi -= step * 2.0 * autotune_linalg::dot(bi, &err);
        }
        project_to_simplex(&mut w);
        let res = residual(&b_scaled, &t_scaled, &w);
        if res < best_res {
            best_res = res;
            best_w = w.clone();
        }
    }
    Ok((best_w, best_res))
}

/// Weighted blend of basis vectors.
fn blend(basis: &[Vec<f64>], w: &[f64]) -> Vec<f64> {
    let d = basis[0].len();
    let mut out = vec![0.0; d];
    for (b, &wi) in basis.iter().zip(w) {
        autotune_linalg::axpy(wi, b, &mut out);
    }
    out
}

fn residual(basis: &[Vec<f64>], target: &[f64], w: &[f64]) -> f64 {
    let b = blend(basis, w);
    autotune_linalg::squared_distance(&b, target).sqrt()
}

/// Euclidean projection onto the probability simplex
/// (Duchi et al. 2008).
fn project_to_simplex(w: &mut [f64]) {
    let n = w.len();
    let mut sorted = w.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut cum = 0.0;
    let mut theta = 0.0;
    let mut found = false;
    for (i, &v) in sorted.iter().enumerate() {
        cum += v;
        let candidate = (cum - 1.0) / (i + 1) as f64;
        if v - candidate > 0.0 {
            theta = candidate;
        } else {
            found = true;
            break;
        }
    }
    if !found {
        theta = (cum - 1.0) / n as f64;
    }
    for x in w.iter_mut() {
        *x = (*x - theta).max(0.0);
    }
    // Guard against accumulated round-off.
    let sum: f64 = w.iter().sum();
    if sum > 0.0 {
        for x in w.iter_mut() {
            *x /= sum;
        }
    } else {
        let uniform = 1.0 / n as f64;
        w.iter_mut().for_each(|x| *x = uniform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::from_features(v.to_vec())
    }

    #[test]
    fn recovers_exact_member() {
        let basis = vec![
            fp(&[1.0, 0.0, 0.0]),
            fp(&[0.0, 1.0, 0.0]),
            fp(&[0.0, 0.0, 1.0]),
        ];
        let (w, res) = synthesize_mixture(&basis, &fp(&[0.0, 1.0, 0.0])).unwrap();
        assert!(res < 1e-3, "residual {res}");
        assert!(w[1] > 0.95, "weights {w:?}");
    }

    #[test]
    fn recovers_known_mixture() {
        let basis = vec![fp(&[1.0, 0.0]), fp(&[0.0, 1.0])];
        let target = fp(&[0.3, 0.7]);
        let (w, res) = synthesize_mixture(&basis, &target).unwrap();
        assert!(res < 1e-3, "residual {res}");
        assert!((w[0] - 0.3).abs() < 0.02, "weights {w:?}");
        assert!((w[1] - 0.7).abs() < 0.02, "weights {w:?}");
    }

    #[test]
    fn weights_form_a_distribution() {
        let basis = vec![fp(&[3.0, 1.0]), fp(&[1.0, 3.0]), fp(&[2.0, 2.0])];
        let (w, _) = synthesize_mixture(&basis, &fp(&[10.0, -5.0])).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn unreachable_target_reports_residual() {
        // Target outside the simplex hull: nonzero residual.
        let basis = vec![fp(&[1.0, 0.0]), fp(&[0.0, 1.0])];
        let (_, res) = synthesize_mixture(&basis, &fp(&[2.0, 2.0])).unwrap();
        assert!(
            res > 0.1,
            "impossible target should leave residual, got {res}"
        );
    }

    #[test]
    fn scale_invariance_across_channels() {
        // Second channel is 1000x larger; the solver must still balance.
        let basis = vec![fp(&[1.0, 0.0]), fp(&[0.0, 1000.0])];
        let target = fp(&[0.5, 500.0]);
        let (w, res) = synthesize_mixture(&basis, &target).unwrap();
        assert!(res < 1e-2, "residual {res}");
        assert!((w[0] - 0.5).abs() < 0.05, "weights {w:?}");
    }

    #[test]
    fn errors_on_empty_or_mismatched() {
        assert!(matches!(
            synthesize_mixture(&[], &fp(&[1.0])),
            Err(WidError::NotEnoughData { .. })
        ));
        let basis = vec![fp(&[1.0, 2.0])];
        assert!(matches!(
            synthesize_mixture(&basis, &fp(&[1.0])),
            Err(WidError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn simplex_projection_properties() {
        let mut w = vec![0.5, 0.5, 2.0];
        project_to_simplex(&mut w);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
        // Dominant entry keeps the lead.
        assert!(w[2] > w[0] && w[2] > w[1]);

        let mut neg = vec![-1.0, -2.0, -3.0];
        project_to_simplex(&mut neg);
        assert!((neg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

//! Multi-objective tuning: the latency/cost Pareto frontier (slide 58).
//!
//! No single configuration minimizes both latency and spend — a bigger
//! buffer pool is faster but rents more memory. This example recovers the
//! trade-off curve with two methods (ParEGO scalarized BO and NSGA-II) and
//! prints the frontier an operator would choose from.
//!
//! Run with:
//! ```text
//! cargo run -p autotune-examples --bin pareto_tradeoffs --release
//! ```

use autotune::{Objective, Target};
use autotune_optimizer::moo::ParEgo;
use autotune_optimizer::{NsgaConfig, NsgaII};
use autotune_sim::{DbmsSim, Environment, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn objectives(target: &Target, cfg: &autotune_space::Config, rng: &mut StdRng) -> Option<[f64; 2]> {
    let e = target.evaluate(cfg, rng);
    if !e.cost.is_finite() {
        return None;
    }
    // Cost axis: VM bill plus memory rent for the buffer pool.
    let pool = cfg.get_f64("buffer_pool_gb").unwrap_or(0.125);
    Some([e.cost, e.result.cost_units * 1000.0 + pool * 0.05])
}

fn main() {
    let budget = 60;
    println!("== Latency vs cost: Pareto frontier of the DBMS sim ==\n");
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpcc(500.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    );

    // ParEGO.
    let mut pe = ParEgo::new(target.space().clone(), 2);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..budget {
        let cfg = pe.suggest(&mut rng);
        match objectives(&target, &cfg, &mut rng) {
            Some(obj) => pe.observe(&cfg, &obj),
            None => pe.observe(&cfg, &[1e6, 1e6]),
        }
    }

    // NSGA-II.
    let mut nsga = NsgaII::new(target.space().clone(), 2, NsgaConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..budget {
        let cfg = nsga.suggest(&mut rng);
        match objectives(&target, &cfg, &mut rng) {
            Some(obj) => nsga.observe(&cfg, &obj),
            None => nsga.observe(&cfg, &[f64::NAN, f64::NAN]),
        }
    }

    for (name, front) in [("ParEGO", pe.front()), ("NSGA-II", nsga.front())] {
        println!("{name} frontier ({} trials):", budget);
        let mut members: Vec<_> = front.members().to_vec();
        members.sort_by(|a, b| {
            a.objectives[0]
                .partial_cmp(&b.objectives[0])
                .expect("objectives are finite")
        });
        println!("  {:>12} {:>12}  config highlight", "latency", "cost($m)");
        for m in members.iter().take(8) {
            let bp = m.config.get_f64("buffer_pool_gb").unwrap_or(0.0);
            let flush = m.config.get_str("flush_method").unwrap_or("?");
            println!(
                "  {:>10.3}ms {:>12.4}  bp={bp:.2}G flush={flush}",
                m.objectives[0], m.objectives[1]
            );
        }
        // Reference point: beyond the worst member on each axis.
        let ref_lat = 1.5
            * members
                .iter()
                .map(|m| m.objectives[0])
                .fold(1.0_f64, f64::max);
        let ref_cost = 1.5
            * members
                .iter()
                .map(|m| m.objectives[1])
                .fold(1.0_f64, f64::max);
        let hv = front.hypervolume_2d((ref_lat, ref_cost));
        println!("  hypervolume vs ({ref_lat:.0}ms, ${ref_cost:.2}m): {hv:.1}\n");
    }
    println!("Pick a point: the left end serves latency SLOs, the right end the budget.");
}

//! E32 (systems challenges): the incremental surrogate hot path. The
//! historical BO loop refit its GP from scratch before every suggestion
//! — O(n³) per trial, O(n⁴) per campaign — which is exactly the
//! "optimizer overhead grows with history" wall long campaigns hit.
//! PR 4 replaced it with rank-1 Cholesky extension
//! ([`autotune_linalg::Cholesky::extend`]): each `observe` borders the
//! cached kernel matrix and factor in O(n²), bitwise-identical to the
//! full refit.
//!
//! Two measurements, both on the telemetry wall timer (the virtual-clock
//! campaign stays deterministic):
//!
//! * **A/B at n = 500** — two identically warm-started BO instances run
//!   the same 20-trial campaign, one with `incremental: true`, one on the
//!   historical fit-per-suggest path. Mean suggest time must drop ≥ 5x.
//! * **Scaling** — fresh incremental campaigns at budgets 1000 and 2000.
//!   Mean per-observe time follows the average of n² over the campaign,
//!   so doubling the budget multiplies it by ~4; the historical O(n³)
//!   path would give ~8. Asserting the ratio ≤ 6 pins the exponent, and
//!   `MetricsSnapshot::n_model_updates` confirms every trial was absorbed
//!   in place (0 full hyperparameter refits).

use crate::report::{f, Report};
use autotune::executor::{Executor, OptimizerSource, SchedulePolicy};
use autotune::telemetry::{MetricsSnapshot, WallTimer};
use autotune::TrialStorage;
use autotune_optimizer::{
    AcquisitionFunction, BayesianOptimizer, BoConfig, Observation, SurrogateChoice,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Warm-start history size for the A/B comparison.
const WARM_N: usize = 500;
/// Trials run on top of the warm start by each A/B arm.
const AB_BUDGET: usize = 20;
/// Budgets of the two scaling campaigns (2x apart, so the observe-time
/// ratio pins the per-observe exponent).
const SCALE_BUDGETS: [usize; 2] = [1_000, 2_000];

/// A real wall timer for overhead attribution (core itself never reads
/// real time; the bench harness injects this).
struct StdTimer(Instant);

impl WallTimer for StdTimer {
    fn now_ns(&mut self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// BO tuned for overhead measurement: hyperparameter refits off so the
/// A/B isolates fit-vs-extend, and a small candidate batch so posterior
/// prediction (identical on both arms) doesn't drown the difference.
fn hot_config(incremental: bool, n_candidates: usize) -> BoConfig {
    BoConfig {
        n_init: 8,
        acquisition: AcquisitionFunction::ExpectedImprovement,
        n_candidates,
        n_local_steps: 0,
        refit_every: 0,
        surrogate: SurrogateChoice::GaussianProcess,
        incremental,
    }
}

/// `n` pre-evaluated observations of the DBMS target (the warm start both
/// A/B arms share).
fn warm_history(n: usize, seed: u64) -> Vec<Observation> {
    let target = super::dbms_target();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let config = target.space().sample(&mut rng);
            let value = target.evaluate(&config, &mut rng).cost;
            Observation { config, value }
        })
        .collect()
}

fn run_instrumented(opt: &mut BayesianOptimizer, budget: usize, seed: u64) -> MetricsSnapshot {
    let target = super::dbms_target();
    let mut source = OptimizerSource::new(opt, budget);
    let mut storage = TrialStorage::new();
    let report = Executor::new(&target, SchedulePolicy::Sequential)
        .with_timer(Box::new(StdTimer(Instant::now())))
        .run(&mut source, &mut storage, seed);
    report.metrics
}

/// One A/B arm: warm-start to [`WARM_N`] observations, then run
/// [`AB_BUDGET`] instrumented trials. Returns the campaign metrics.
fn ab_arm(incremental: bool, history: &[Observation]) -> MetricsSnapshot {
    let mut opt = BayesianOptimizer::new(
        super::dbms_target().space().clone(),
        hot_config(incremental, 8),
    );
    opt.warm_start(history);
    run_instrumented(&mut opt, AB_BUDGET, 3_201)
}

/// Mean incremental suggest nanoseconds per trial at n = 500 warm-start
/// observations; the quantity the CI perf-smoke gate tracks against a
/// committed baseline.
pub fn incremental_suggest_ns_at_n500() -> f64 {
    let history = warm_history(WARM_N, 3_202);
    ab_arm(true, &history).suggest_ns.mean()
}

fn scaling_arm(budget: usize) -> MetricsSnapshot {
    let mut opt = BayesianOptimizer::new(super::dbms_target().space().clone(), hot_config(true, 4));
    run_instrumented(&mut opt, budget, 3_203)
}

fn row(label: &str, m: &MetricsSnapshot) -> Vec<String> {
    vec![
        label.into(),
        format!("{} us", f(m.suggest_ns.mean() / 1e3, 1)),
        format!("{} us", f(m.observe_ns.mean() / 1e3, 1)),
        m.n_refits.to_string(),
        m.n_model_updates.to_string(),
        format!("{} ms", f(m.tuner_wall_ns as f64 / 1e6, 1)),
    ]
}

/// Runs the experiment.
pub fn run() -> Report {
    let history = warm_history(WARM_N, 3_202);
    let seed_path = ab_arm(false, &history);
    let incremental = ab_arm(true, &history);
    let scale: Vec<MetricsSnapshot> = SCALE_BUDGETS.iter().map(|&b| scaling_arm(b)).collect();

    let speedup = seed_path.suggest_ns.mean() / incremental.suggest_ns.mean().max(1.0);
    let observe_ratio = scale[1].observe_ns.mean() / scale[0].observe_ns.mean().max(1.0);

    let rows = vec![
        row("fit-per-suggest, n=500", &seed_path),
        row("incremental, n=500", &incremental),
        row("incremental, budget 1000", &scale[0]),
        row("incremental, budget 2000", &scale[1]),
    ];

    // Shape: (a) at n=500 the incremental path suggests ≥5x faster than
    // refitting per suggestion; (b) the scaling campaigns absorbed ≥90% of
    // trials in place with zero full refits — hyper refits are disabled
    // and the GP never takes the refused-incremental fallback that
    // `n_refits` also counts since PR 9 (crashed trials report NaN and
    // legitimately skip absorption); (c) doubling the budget multiplies
    // mean observe time by ~4 (O(n²)), well under the ~8x a cubic
    // per-observe cost would show.
    let faster = speedup >= 5.0;
    let absorbed = scale
        .iter()
        .zip(SCALE_BUDGETS)
        .all(|(m, b)| m.n_model_updates as usize >= b * 9 / 10 && m.n_refits == 0);
    let quadratic = observe_ratio <= 6.0;
    Report {
        id: "E32",
        title: "Incremental surrogate hot path (O(n²) observe, cached factors)",
        headers: vec![
            "campaign",
            "suggest mean",
            "observe mean",
            "refits",
            "in-place updates",
            "tuner total",
        ],
        rows,
        paper_claim: "rank-1 factor updates make per-trial surrogate cost quadratic instead of \
                      cubic, so optimizer overhead stays tractable as campaign histories grow",
        measured: format!(
            "suggest at n=500: {} us -> {} us ({}x); observe mean 2000-vs-1000 budget ratio \
             {} (~4 = quadratic, ~8 = cubic); in-place updates {}/{} with {} refits",
            f(seed_path.suggest_ns.mean() / 1e3, 1),
            f(incremental.suggest_ns.mean() / 1e3, 1),
            f(speedup, 1),
            f(observe_ratio, 2),
            scale[1].n_model_updates,
            SCALE_BUDGETS[1],
            scale[1].n_refits,
        ),
        shape_holds: faster && absorbed && quadratic,
    }
}

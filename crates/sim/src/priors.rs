//! "Manual-derived" knob hints (tutorial slides 63-64).
//!
//! DB-BERT and GPTuner use language models to extract tuning knowledge
//! from manuals, docs, and StackOverflow: which knobs matter, what ranges
//! are sensible on this hardware, which special values exist. The
//! *downstream artifact* of that extraction is a biased search space —
//! and that artifact is what this module provides, as curated hint tables
//! per simulated system (standing in for the LLM pass, which needs no
//! reproduction: its output format is the interesting part).

use crate::Environment;
use autotune_space::{Param, Space};
use serde::{Deserialize, Serialize};

/// One extracted hint about a knob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnobHint {
    /// Knob name in the system's space.
    pub knob: String,
    /// Biased sub-range in unit-cube coordinates of the knob's axis
    /// (`(0.0, 1.0)` = no restriction).
    pub range01: (f64, f64),
    /// Optional truncated-normal prior `(mean01, std01)` inside the range.
    pub prior01: Option<(f64, f64)>,
    /// Importance rank among the system's knobs (1 = most important).
    pub importance_rank: usize,
    /// The "manual quote" motivating the hint.
    pub rationale: &'static str,
}

/// Hints for the DBMS simulator's knobs on a given environment —
/// the kind of advice a model reads out of MySQL/PostgreSQL manuals.
pub fn dbms_manual_hints(env: &Environment) -> Vec<KnobHint> {
    // "innodb_buffer_pool_size: typically 50-75% of system memory."
    // Map the GB recommendation into unit coords of the log-scaled axis
    // [0.125, 64] GB: u = ln(v/0.125) / ln(64/0.125).
    let bp_unit = |gb: f64| ((gb / 0.125).ln() / (64.0 / 0.125f64).ln()).clamp(0.0, 1.0);
    let lo = bp_unit(0.5 * env.ram_gb);
    let hi = bp_unit(0.8 * env.ram_gb);
    vec![
        KnobHint {
            knob: "buffer_pool_gb".into(),
            range01: (lo, hi),
            prior01: Some(((lo + hi) / 2.0, 0.1)),
            importance_rank: 1,
            rationale: "buffer pool: 50-80% of system memory; the single most impactful setting",
        },
        KnobHint {
            knob: "flush_method".into(),
            range01: (0.0, 1.0),
            prior01: None,
            importance_rank: 2,
            rationale: "O_DIRECT avoids double buffering on most Linux filesystems",
        },
        KnobHint {
            knob: "log_file_size_mb".into(),
            range01: (0.6, 1.0), // favour large logs on the log-scaled axis
            prior01: Some((0.8, 0.15)),
            importance_rank: 3,
            rationale: "redo logs sized for ~1h of writes; small logs cause checkpoint storms",
        },
        KnobHint {
            knob: "worker_threads".into(),
            range01: (0.2, 0.7),
            prior01: Some((0.45, 0.15)),
            importance_rank: 4,
            rationale: "threads ~ 2x cores; beyond that context switching dominates",
        },
        KnobHint {
            knob: "io_threads".into(),
            range01: (0.3, 1.0),
            prior01: None,
            importance_rank: 5,
            rationale: "more background I/O threads help on SSD/NVMe",
        },
    ]
}

/// Hints for the Redis simulator (the scheduler-knob running example).
pub fn redis_manual_hints() -> Vec<KnobHint> {
    vec![
        KnobHint {
            knob: "sched_migration_cost_ns".into(),
            // Community wisdom: well below the kernel default of 500µs.
            range01: (0.1, 0.7),
            prior01: Some((0.4, 0.2)),
            importance_rank: 1,
            rationale: "raising migration cost pins the event loop; the sweet spot is 10-100µs",
        },
        KnobHint {
            knob: "io_threads".into(),
            range01: (0.0, 0.6),
            prior01: None,
            importance_rank: 2,
            rationale: "io-threads up to the core count; more threads thrash",
        },
    ]
}

/// Applies hints to a space: narrows numeric ranges to the biased
/// sub-range and installs the priors. Unhinted knobs pass through
/// untouched, so the tuner can still correct a wrong manual.
///
/// Categorical/bool knobs cannot be range-narrowed (the hint's
/// `range01` is ignored for them); priors apply to numeric axes only.
pub fn apply_hints(space: &Space, hints: &[KnobHint]) -> Space {
    let mut builder = Space::builder();
    for p in space.params() {
        let hint = hints.iter().find(|h| h.knob == p.name);
        let mut param: Param = p.clone();
        if let Some(h) = hint {
            param = narrow_param(param, h);
        }
        builder = builder.add(param);
    }
    for c in space.conditions() {
        builder = builder.condition(c.clone());
    }
    for c in space.constraints() {
        builder = builder.constraint(c.clone());
    }
    builder.build().expect("narrowing preserves validity") // lint: allow(D5) narrowing preserves a valid space
}

/// Narrows one parameter to a hint's sub-range (numeric domains only).
fn narrow_param(mut param: Param, hint: &KnobHint) -> Param {
    use autotune_space::{Domain, Value};
    let (lo01, hi01) = hint.range01;
    let lo01 = lo01.clamp(0.0, 1.0);
    let hi01 = hi01.clamp(lo01 + 1e-9, 1.0);
    match &param.domain {
        Domain::Float { .. } | Domain::Int { .. } | Domain::Quantized { .. } => {
            let new_low = param.from_unit(lo01);
            let new_high = param.from_unit(hi01);
            match (&mut param.domain, new_low, new_high) {
                (Domain::Float { low, high, .. }, Value::Float(l), Value::Float(h)) if l < h => {
                    *low = l;
                    *high = h;
                }
                (Domain::Int { low, high, .. }, Value::Int(l), Value::Int(h)) if l < h => {
                    *low = l;
                    *high = h;
                }
                (Domain::Quantized { low, high, .. }, Value::Float(l), Value::Float(h))
                    if l < h =>
                {
                    *low = l;
                    *high = h;
                }
                _ => {}
            }
            // Re-anchor the default inside the narrowed range.
            param.default = param.from_unit(0.5);
            if let Some((mean01, std01)) = hint.prior01 {
                // The prior's coordinates are in the *original* axis; remap
                // into the narrowed axis.
                let remapped = ((mean01 - lo01) / (hi01 - lo01)).clamp(0.0, 1.0);
                param = param.prior_normal(remapped, std01 / (hi01 - lo01));
            }
        }
        _ => {}
    }
    param
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DbmsSim, RedisSim, SimSystem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dbms_hints_narrow_buffer_pool_to_ram_share() {
        let env = Environment::medium(); // 16 GB
        let hints = dbms_manual_hints(&env);
        let space = apply_hints(DbmsSim::new().space(), &hints);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let cfg = space.sample(&mut rng);
            let bp = cfg.get_f64("buffer_pool_gb").expect("present");
            assert!(
                (0.45 * env.ram_gb..=0.85 * env.ram_gb).contains(&bp),
                "buffer pool {bp} escaped the hinted 50-80% RAM band"
            );
        }
    }

    #[test]
    fn hinted_space_keeps_conditions_and_constraints() {
        let env = Environment::medium();
        let space = apply_hints(DbmsSim::new().space(), &dbms_manual_hints(&env));
        assert_eq!(
            space.conditions().len(),
            DbmsSim::new().space().conditions().len()
        );
        assert_eq!(
            space.constraints().len(),
            DbmsSim::new().space().constraints().len()
        );
        // Conditional structure still applies.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            assert!(space.validate_config(&c).is_ok());
            assert!(space.is_feasible(&c));
        }
    }

    #[test]
    fn unhinted_knobs_untouched() {
        let env = Environment::medium();
        let orig = DbmsSim::new();
        let space = apply_hints(orig.space(), &dbms_manual_hints(&env));
        let orig_qc = orig.space().param("query_cache").expect("exists");
        let new_qc = space.param("query_cache").expect("exists");
        assert_eq!(orig_qc.domain, new_qc.domain);
    }

    #[test]
    fn redis_hint_excludes_kernel_default_region() {
        let hints = redis_manual_hints();
        let space = apply_hints(RedisSim::new().space(), &hints);
        let p = space.param("sched_migration_cost_ns").expect("exists");
        // The hinted range caps well below the 1e6 upper bound.
        match &p.domain {
            autotune_space::Domain::Float { high, .. } => {
                assert!(
                    *high < 500_000.0,
                    "hint should exclude the slow region: {high}"
                )
            }
            other => panic!("unexpected domain {other:?}"),
        }
    }

    #[test]
    fn hints_sorted_by_importance_are_complete() {
        let env = Environment::small();
        let hints = dbms_manual_hints(&env);
        let mut ranks: Vec<usize> = hints.iter().map(|h| h.importance_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5]);
        assert!(hints.iter().all(|h| !h.rationale.is_empty()));
    }
}

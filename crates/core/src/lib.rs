//! `autotune` — a generalized systems-autotuning framework.
//!
//! This crate ties the workspace together into the architecture of the
//! SIGMOD 2025 tutorial "Autotuning Systems: Techniques, Challenges, and
//! Opportunities" (slide 26): an **optimizer** proposes tunable values, a
//! **scheduler** runs benchmarks against the target system, results flow
//! back as scores, and systems machinery around that loop handles the
//! parts that make real autotuning hard — noise, cost, fidelity,
//! workload drift, crashes, and safety.
//!
//! # Architecture
//!
//! Every execution path — sequential sessions, batch/async parallel
//! runners, successive halving, the online tuner — drives the same
//! event-driven [`executor::Executor`]. A [`executor::TrialSource`]
//! proposes trials (an optimizer adapter, a rung ladder, a bandit menu),
//! a [`executor::SchedulePolicy`] decides how many run concurrently and
//! where the barriers are, and a chain of [`executor::Middleware`]
//! handles the cross-cutting systems machinery:
//!
//! ```text
//!  ┌───────────────┐ next()  ┌─────────────────────────────────────────┐
//!  │ TrialSource    │───────▶│ Executor                                │
//!  │  Optimizer-    │        │  SchedulePolicy: Sequential │ SyncBatch │
//!  │  Source,       │◀───────│    │ AsyncSlots │ Rungs  (virtual clock │
//!  │  RungSource,   │ report │    + crossbeam worker threads)          │
//!  │  OnlineSource  │        │  Middleware: EarlyAbortMw,              │
//!  └───────────────┘        │    CrashPenaltyMw, MachineAssignMw,     │
//!                           │    RetryMw, TimeoutMw, QuarantineMw     │
//!          ▲                 └──────┬──────┬───────┬─────────────────────┘
//!          │ suggest/observe        │      │       │ TrialEvent + OptEvent
//!  ┌───────┴───────┐        ┌──────▼──────┐│  ┌───▼───────────────────┐
//!  │ Optimizer      │        │ Target       ││  │ telemetry::Subscriber │
//!  │ (BO, SMAC,     │        │ (simulated   ││  │  MetricsCollector,    │
//!  │  CMA-ES, …)    │        │  system +    ││  │  SpanRecorder (Chrome │
//!  └───────────────┘        │  workload)   ││  │  trace), Progress-    │
//!                            └─────────────┘│  │  Reporter             │
//!                        ┌─────────────────▼┐ └───────────────────────┘
//!                        │ TrialStorage      │
//!                        │ (history, best,   │
//!                        │  conv. curve,     │
//!                        │  JSON)            │
//!                        └──────────────────┘
//! ```
//!
//! High-level entry points are thin bindings over that loop:
//! [`TuningSession`] (sequential + noise strategy + early abort),
//! [`run_parallel`] / [`run_async_parallel`] (batch vs. slot
//! scheduling), [`SuccessiveHalving`] / [`Hyperband`] (rung barriers),
//! and [`OnlineTuner`] (bandit over a candidate menu with guardrails).
//!
//! # Quick start
//!
//! ```
//! use autotune::{Objective, Target, TuningSession, SessionConfig};
//! use autotune_optimizer::BayesianOptimizer;
//! use autotune_sim::{DbmsSim, Environment, Workload};
//!
//! let target = Target::simulated(
//!     Box::new(DbmsSim::new()),
//!     Workload::tpcc(2_000.0),
//!     Environment::medium(),
//!     Objective::MinimizeLatencyAvg,
//! );
//! let optimizer = BayesianOptimizer::gp(target.space().clone());
//! let mut session = TuningSession::new(target, Box::new(optimizer), SessionConfig::default());
//! let summary = session.run(30, 42).expect("at least one successful trial");
//! assert!(summary.best_cost.is_finite());
//! ```

pub mod executor;
pub mod sync;
pub mod telemetry;

mod early_abort;
mod importance;
mod llamatune;
mod multifid;
mod noise_strategy;
mod objective;
mod online;
mod parallel;
mod profile_guided;
mod session;
mod target;
mod transfer;
mod trial;

#[cfg(test)]
mod test_fixtures;

pub use early_abort::EarlyAbort;
pub use executor::{
    measure_request, Campaign, CampaignError, CampaignEvent, CampaignSnapshot, CrashPenaltyMw,
    EarlyAbortMw, ExecReport, Executor, MachineAssignMw, Measurement, Middleware, OptimizerSource,
    OwnedOptimizerSource, QuarantineMw, ResumeReport, RetryMw, RungSource, SchedulePolicy,
    SourceStep, TimeoutMw, TrialEvent, TrialOutcome, TrialRequest, TrialSource, WorkItem,
};
pub use importance::{lasso_path, permutation_importance, KnobImportance};
pub use llamatune::{LlamaTune, LlamaTuneConfig};
pub use multifid::{FidelityLevel, Hyperband, SuccessiveHalving, SuccessiveHalvingConfig};
pub use noise_strategy::NoiseStrategy;
pub use objective::Objective;
pub use online::{
    static_config_cost, ContextualOnlineTuner, OnlineStep, OnlineTuner, OnlineTunerConfig,
};
pub use parallel::{run_async_parallel, run_parallel, ParallelSummary};
pub use profile_guided::KnobComponentMap;
pub use session::{SessionConfig, SessionSummary, TuningSession};
pub use sync::{pwait, PoisonFree, PoisonFreeMutex};
pub use target::Target;
pub use telemetry::{
    LogHistogram, MetricsCollector, MetricsSnapshot, NullTimer, OptEvent, ProgressReporter,
    SpanRecorder, Subscriber, TrialSpan, WallTimer,
};
pub use transfer::{transfer_observations, TransferPolicy};
pub use trial::{Trial, TrialStatus, TrialStorage};

//! `Serialize`/`Deserialize` implementations for the std types this
//! workspace serializes: numbers, bool, strings, `Option`, `Vec`,
//! arrays, small tuples, and string-keyed `BTreeMap`s.

use std::collections::BTreeMap;

use crate::content::{Content, ContentDeserializer, ContentSerializer};
use crate::de::{Deserialize, Deserializer, Error as DeError};
use crate::ser::{Serialize, Serializer};

fn de_err<D: std::fmt::Display, E: DeError>(msg: D) -> E {
    E::custom(msg)
}

fn from_content<T: for<'a> Deserialize<'a>, E: DeError>(c: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::new(c)).map_err(de_err)
}

fn content_of<T: Serialize + ?Sized>(v: &T) -> Content {
    v.serialize(ContentSerializer).unwrap_or(Content::Null)
}

// ------------------------------------------------------------------ numbers

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.deserialize_content()?;
                let v = c.as_i64().ok_or_else(|| {
                    de_err::<_, D::Error>(format!("expected integer, found {}", c.kind()))
                })?;
                <$t>::try_from(v).map_err(|_| de_err(format!("integer {v} out of range")))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.deserialize_content()?;
                let v = c.as_u64().ok_or_else(|| {
                    de_err::<_, D::Error>(format!("expected integer, found {}", c.kind()))
                })?;
                <$t>::try_from(v).map_err(|_| de_err(format!("integer {v} out of range")))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        c.as_f64()
            .ok_or_else(|| de_err(format!("expected number, found {}", c.kind())))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

// ----------------------------------------------------------- bool & strings

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(de_err(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        // The stub's data model owns its strings, so a borrowed-str field
        // (used for static rationale text in this workspace) can only be
        // produced by leaking. Deserializing such fields is rare-to-never;
        // the leak is bounded by input size.
        String::deserialize(d).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(de_err(format!("expected string, found {}", other.kind()))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_none(),
            Some(v) => s.serialize_some(v),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Null => Ok(None),
            c => Ok(Some(from_content(c)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(content_of).collect()))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(content_of).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(de_err(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v: Vec<T> = Vec::deserialize(d)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| de_err(format!("expected array of length {N}, found {n}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), content_of(v)))
                .collect(),
        ))
    }
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, from_content(v)?)))
                .collect(),
            other => Err(de_err(format!("expected map, found {}", other.kind()))),
        }
    }
}

// --------------------------------------------------------------- tuples

macro_rules! tuple_impl {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::Seq(vec![$(content_of(&self.$idx)),+]))
            }
        }
        impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let mut items = match d.deserialize_content()? {
                    Content::Seq(items) => items.into_iter(),
                    other => {
                        return Err(de_err(format!(
                            "expected tuple sequence, found {}",
                            other.kind()
                        )))
                    }
                };
                Ok(($(
                    {
                        let _ = $idx;
                        from_content::<$t, D::Error>(items.next().ok_or_else(|| {
                            de_err::<_, D::Error>("tuple too short")
                        })?)?
                    },
                )+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 E)
}

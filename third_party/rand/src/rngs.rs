//! Concrete generators: [`StdRng`], [`ThreadRng`], and [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// Deterministic standard generator: xoshiro256++.
///
/// Not the same stream as crates.io `rand`'s `StdRng` (ChaCha12), but
/// the same contract: seedable, deterministic, statistically solid for
/// simulation work.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(w);
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

/// Handle returned by [`thread_rng`]; seeded deterministically because
/// this stub has no OS entropy source.
#[derive(Debug, Clone)]
pub struct ThreadRng(StdRng);

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns a process-locally seeded generator (deterministic in this stub).
pub fn thread_rng() -> ThreadRng {
    ThreadRng(StdRng::seed_from_u64(0x853C_49E6_748F_EA9B))
}

pub mod mock {
    //! Deterministic mock generators for tests.

    use crate::RngCore;

    /// Emits `initial`, `initial + increment`, `initial + 2*increment`, …
    #[derive(Debug, Clone)]
    pub struct StepRng {
        v: u64,
        step: u64,
    }

    impl StepRng {
        /// Creates a mock generator starting at `initial` with the given step.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                v: initial,
                step: increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.step);
            out
        }
    }
}

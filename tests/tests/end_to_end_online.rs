//! Cross-crate integration: the online tuning stack
//! (core::OnlineTuner + rl bandits/guardrails + wid shift detection + sim
//! drifting workloads).

use autotune::{static_config_cost, Objective, OnlineTuner, OnlineTunerConfig, Target};
use autotune_rl::SafeTunerConfig;
use autotune_sim::{DbmsSim, Environment, Workload, WorkloadSchedule};

fn target() -> Target {
    Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::ycsb_c(2_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    )
}

fn shifting_schedule() -> WorkloadSchedule {
    WorkloadSchedule::new(vec![
        (70, Workload::ycsb_c(2_000.0)),
        (70, Workload::ycsb_a(2_000.0)),
    ])
}

fn menu(t: &Target) -> Vec<autotune_space::Config> {
    let base = t.space().default_config().with("buffer_pool_gb", 8.0);
    vec![
        base.clone().with("query_cache", true),
        base.clone().with("query_cache", false),
    ]
}

/// The agent's history is complete and internally consistent.
#[test]
fn online_history_is_consistent() {
    let t = target();
    let mut tuner = OnlineTuner::new(menu(&t), OnlineTunerConfig::default());
    tuner.run(&t, &shifting_schedule(), 140, 1);
    assert_eq!(tuner.history().len(), 140);
    for (i, step) in tuner.history().iter().enumerate() {
        assert_eq!(step.t, i);
        assert!(step.arm < 2);
    }
    assert!(tuner.cumulative_cost() > 0.0);
}

/// Shift detection and adaptation happen together: a shift is flagged
/// near the phase boundary and the post-shift arm distribution flips.
#[test]
fn detects_and_adapts_to_shift() {
    let t = target();
    let mut tuner = OnlineTuner::new(menu(&t), OnlineTunerConfig::default());
    tuner.run(&t, &shifting_schedule(), 140, 2);
    let shifts = tuner.detected_shifts();
    assert!(
        shifts.iter().any(|&s| (65..=90).contains(&s)),
        "no shift near the boundary: {shifts:?}"
    );
    let arm0_late_phase1 = tuner.history()[50..70]
        .iter()
        .filter(|s| s.arm == 0)
        .count();
    let arm1_late_phase2 = tuner.history()[120..140]
        .iter()
        .filter(|s| s.arm == 1)
        .count();
    assert!(
        arm0_late_phase1 > 12,
        "phase-1 preference weak: {arm0_late_phase1}/20"
    );
    assert!(
        arm1_late_phase2 > 12,
        "phase-2 preference weak: {arm1_late_phase2}/20"
    );
}

/// The online agent is competitive with the best static config even
/// though no static config is good in both phases.
#[test]
fn online_competitive_with_best_static() {
    let t = target();
    let schedule = shifting_schedule();
    let candidates = menu(&t);
    let mut tuner = OnlineTuner::new(candidates.clone(), OnlineTunerConfig::default());
    tuner.run(&t, &schedule, 140, 3);
    let online = tuner.cumulative_cost();
    let best_static = candidates
        .iter()
        .map(|c| static_config_cost(&t, c, &schedule, 140, 3))
        .fold(f64::INFINITY, f64::min);
    assert!(
        online < best_static * 1.15,
        "online {online} not competitive with best static {best_static}"
    );
}

/// Guardrails bound crash exposure when the menu contains an OOM config.
#[test]
fn guardrail_bounds_crash_exposure() {
    let t = target();
    let base = t.space().default_config().with("buffer_pool_gb", 8.0);
    let crashy = t.space().default_config().with("buffer_pool_gb", 15.9);
    let schedule = WorkloadSchedule::new(vec![(120, Workload::ycsb_c(2_000.0))]);
    let mut tuner = OnlineTuner::new(
        vec![base, crashy],
        OnlineTunerConfig {
            safety: Some(SafeTunerConfig::default()),
            shift: None,
            ..Default::default()
        },
    );
    tuner.run(&t, &schedule, 120, 4);
    let crashes = tuner.history().iter().filter(|s| s.cost.is_nan()).count();
    assert!(crashes <= 3, "guardrail allowed {crashes} crashes");
}

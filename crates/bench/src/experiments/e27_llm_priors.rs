//! E27 (slides 63-64): LLM-derived knob priors — DB-BERT/GPTuner distill
//! manuals into biased search spaces. We tune the DBMS with and without
//! the curated "manual-derived" hint table (`autotune_sim::priors`), which
//! is exactly the artifact an LLM pass produces.

use crate::experiments::dbms_target;
use crate::report::{f, Report};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_sim::priors::{apply_hints, dbms_manual_hints};
use autotune_sim::Environment;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 25;
    let n_seeds = 6u64;
    let env = Environment::medium();

    let run = |hinted: bool, seed: u64| -> (f64, f64) {
        let target = dbms_target();
        let space = if hinted {
            apply_hints(target.space(), &dbms_manual_hints(&env))
        } else {
            target.space().clone()
        };
        let mut opt = BayesianOptimizer::gp(space);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = f64::INFINITY;
        let mut best_at_10 = f64::INFINITY;
        for i in 0..budget {
            let c = opt.suggest(&mut rng);
            let e = target.evaluate(&c, &mut rng);
            opt.observe(&c, e.cost);
            if e.cost.is_finite() {
                best = best.min(e.cost);
            }
            if i == 9 {
                best_at_10 = best;
            }
        }
        (best_at_10, best)
    };

    let mut hinted10 = Vec::new();
    let mut hinted25 = Vec::new();
    let mut uniform10 = Vec::new();
    let mut uniform25 = Vec::new();
    for seed in 0..n_seeds {
        let (h10, h25) = run(true, 600 + seed);
        let (u10, u25) = run(false, 600 + seed);
        hinted10.push(h10);
        hinted25.push(h25);
        uniform10.push(u10);
        uniform25.push(u25);
    }
    let m = autotune_linalg::stats::mean;
    let rows = vec![
        vec![
            "manual-derived priors".into(),
            format!("{} ms", f(m(&hinted10), 4)),
            format!("{} ms", f(m(&hinted25), 4)),
        ],
        vec![
            "uniform space".into(),
            format!("{} ms", f(m(&uniform10), 4)),
            format!("{} ms", f(m(&uniform25), 4)),
        ],
    ];
    // Hints must accelerate the early phase and not hurt the final result.
    let shape_holds = m(&hinted10) < m(&uniform10) && m(&hinted25) <= m(&uniform25) * 1.1;
    Report {
        id: "E27",
        title: "Manual-derived knob priors (slides 63-64, DB-BERT/GPTuner)",
        headers: vec!["space", "mean best @10", "mean best @25"],
        rows,
        paper_claim:
            "knowledge extracted from manuals biases the search space and accelerates tuning",
        measured: format!(
            "@10 trials: hinted {} vs uniform {} ms; @25: {} vs {} ms",
            f(m(&hinted10), 4),
            f(m(&uniform10), 4),
            f(m(&hinted25), 4),
            f(m(&uniform25), 4)
        ),
        shape_holds,
    }
}

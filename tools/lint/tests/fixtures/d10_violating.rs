//! D10 fixture (linted as `crates/serve`): durable-state acks built with
//! no durable append before them — the ack outruns the WAL.

pub fn handle_register(&mut self, spec: CampaignSpec) -> Response {
    let id = self.registry.admit(spec);
    Response::Registered { id }
}

pub fn handle_halt(&mut self, id: u64) -> Response {
    let was_active = self.registry.remove(id);
    Response::Stopped { id, was_active }
}

//! E36 (scaling challenges): surrogates that survive 100k observations.
//!
//! "Tuning the Tuner" identifies optimizer overhead as the binding
//! constraint of long campaigns: the dense GP pays O(n²) per observe and
//! O(n²) per candidate prediction, which is hopeless at the 100k
//! observations a service campaign accumulates. This experiment measures
//! the three layers of the escape hatch landed in this PR:
//!
//! * **Quality** — on the DBMS repro target, sparse-GP and trust-region BO
//!   must match dense-GP incumbent quality within tolerance at a normal
//!   campaign budget (the approximations must not cost tuning power).
//! * **Kernels** — at n = 2048 the cache-blocked Cholesky and tiled matmul
//!   must beat their naive references while producing equivalent results.
//! * **Scaling** — grown to n = 100k, the sparse and trust-region
//!   surrogates' suggest latency must stay roughly flat in n and land
//!   ≥ 10× below the dense GP's extrapolated cost at the same n.
//!
//! The scaling arm's per-n latencies are exported through
//! [`scale_points`] and recorded into `BENCH_bo.json` by the `bo_scale`
//! bin so CI tracks them as trajectory metrics.

use crate::report::{f, Report};
use autotune_optimizer::BayesianOptimizer;
use autotune_surrogate::{
    GaussianProcess, Matern52, SparseGaussianProcess, SparseGpConfig, Surrogate, TrustRegionConfig,
    TrustRegionSurrogate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Campaign budget of the quality arm.
const QUALITY_BUDGET: usize = 110;
/// Seeds of the quality arm, shared across all three surrogates. Single
/// campaigns of this budget are noisy enough that one lucky/unlucky start
/// can dominate the comparison; the arm reports the mean best incumbent.
const QUALITY_SEEDS: [u64; 2] = [3_603, 3_604];
/// Sparse/trust-region incumbent quality must stay within this factor of
/// the dense GP's (lower is better; both arms share seeds).
const QUALITY_TOL: f64 = 1.3;
/// Matrix edge of the kernel arm (the "n ≥ 2k" acceptance bar).
const KERNEL_N: usize = 2048;
/// Input dimension of the scaling arm's synthetic target.
const SCALE_DIM: usize = 6;
/// Training-set sizes at which the scaling arm samples latency.
const SCALE_NS: [usize; 3] = [1_000, 10_000, 100_000];
/// Candidates predicted per suggest-latency sample (the model-side work
/// of one BO suggestion).
const SUGGEST_CANDIDATES: usize = 256;
/// Observes timed per observe-latency sample.
const OBSERVE_SAMPLE: usize = 64;

/// One latency sample of the scaling arm.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Surrogate family: `"dense_gp"`, `"sparse_gp"`, or `"trust_region"`.
    pub surrogate: &'static str,
    /// Training-set size at the sample.
    pub n: usize,
    /// Mean model-side nanoseconds of one suggestion (a fixed batch of
    /// 256 posterior predictions, `SUGGEST_CANDIDATES`).
    pub suggest_ns: f64,
    /// Mean nanoseconds of one incremental observe at this n.
    pub observe_ns: f64,
    /// True for the dense GP's 100k row, which is extrapolated from its
    /// measured scaling exponent rather than run (running it would take
    /// hours — that being infeasible is the point of this experiment).
    pub extrapolated: bool,
}

/// Synthetic minimization target of the scaling arm: a smooth anisotropic
/// bowl with a sinusoidal ripple, cheap enough to evaluate 100k times.
fn synthetic(x: &[f64]) -> f64 {
    let mut v = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        let c = 0.2 + 0.1 * i as f64;
        v += (xi - c) * (xi - c) * (1.0 + 0.3 * i as f64);
    }
    v + 0.05 * (7.0 * x[0]).sin()
}

fn sample_point(rng: &mut StdRng) -> Vec<f64> {
    (0..SCALE_DIM).map(|_| rng.gen_range(0.0..1.0)).collect()
}

/// Times the model-side cost of one suggestion: predict
/// [`SUGGEST_CANDIDATES`] fresh candidates and fold the means (the fold
/// keeps the optimizer honest about using every prediction).
fn time_suggest(model: &dyn Surrogate, rng: &mut StdRng) -> f64 {
    let cands: Vec<Vec<f64>> = (0..SUGGEST_CANDIDATES).map(|_| sample_point(rng)).collect();
    let t = Instant::now();
    let mut acc = 0.0;
    for c in &cands {
        acc += model.predict(c).mean;
    }
    let ns = t.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    ns
}

/// Grows `model` to each size in [`SCALE_NS`] through its incremental
/// path, sampling suggest/observe latency at each checkpoint.
fn scale_arm(
    surrogate: &'static str,
    mut model: Box<dyn Surrogate>,
    max_n: usize,
) -> Vec<ScalePoint> {
    let mut rng = StdRng::seed_from_u64(3_601);
    let mut points = Vec::new();
    let mut n = 0usize;
    for &target_n in SCALE_NS.iter().filter(|&&t| t <= max_n) {
        // Grow to target_n - OBSERVE_SAMPLE untimed, then time the rest.
        let untimed = target_n - OBSERVE_SAMPLE - n;
        for _ in 0..untimed {
            let x = sample_point(&mut rng);
            let y = synthetic(&x);
            // The surrogate must absorb every point incrementally; a
            // refused observe here would silently change what is measured.
            model
                .observe(&x, y)
                .expect("scaling surrogates absorb points incrementally");
            n += 1;
        }
        let t = Instant::now();
        for _ in 0..OBSERVE_SAMPLE {
            let x = sample_point(&mut rng);
            let y = synthetic(&x);
            model
                .observe(&x, y)
                .expect("scaling surrogates absorb points incrementally");
            n += 1;
        }
        let observe_ns = t.elapsed().as_nanos() as f64 / OBSERVE_SAMPLE as f64;
        let suggest_ns = time_suggest(model.as_ref(), &mut rng);
        points.push(ScalePoint {
            surrogate,
            n,
            suggest_ns,
            observe_ns,
            extrapolated: false,
        });
    }
    points
}

fn sparse_model() -> Box<dyn Surrogate> {
    Box::new(SparseGaussianProcess::new(
        Box::new(Matern52::ard(vec![0.5; SCALE_DIM], 1.0)),
        SparseGpConfig {
            max_inducing: 128,
            ..SparseGpConfig::default()
        },
    ))
}

fn trust_region_model() -> Box<dyn Surrogate> {
    Box::new(TrustRegionSurrogate::new(
        Box::new(Matern52::ard(vec![0.5; SCALE_DIM], 1.0)),
        TrustRegionConfig {
            max_local: 128,
            ..TrustRegionConfig::default()
        },
    ))
}

/// Dense-GP latency, measured at 1k and 2k and extrapolated to 100k from
/// the fitted power law (exponent clamped to [1, 3]: prediction is
/// provably at least linear and at most cubic in n).
///
/// Each checkpoint batch-fits at `n - OBSERVE_SAMPLE` and times the last
/// [`OBSERVE_SAMPLE`] points through the O(n²) incremental path — growing
/// 2k points one observe at a time would measure the same thing far more
/// slowly.
fn dense_arm() -> Vec<ScalePoint> {
    let mut measured = Vec::new();
    let mut rng = StdRng::seed_from_u64(3_602);
    for target_n in [1_000usize, 2_000] {
        let mut model =
            GaussianProcess::new(Box::new(Matern52::ard(vec![0.5; SCALE_DIM], 1.0)), 1e-6);
        let warm = target_n - OBSERVE_SAMPLE;
        let xs: Vec<Vec<f64>> = (0..warm).map(|_| sample_point(&mut rng)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| synthetic(x)).collect();
        model
            .fit(&xs, &ys)
            .expect("synthetic design matrix is clean");
        let t = Instant::now();
        for _ in 0..OBSERVE_SAMPLE {
            let x = sample_point(&mut rng);
            let y = synthetic(&x);
            model
                .observe(&x, y)
                .expect("dense GP absorbs points incrementally");
        }
        let observe_ns = t.elapsed().as_nanos() as f64 / OBSERVE_SAMPLE as f64;
        let suggest_ns = time_suggest(&model, &mut rng);
        measured.push(ScalePoint {
            surrogate: "dense_gp",
            n: target_n,
            suggest_ns,
            observe_ns,
            extrapolated: false,
        });
    }
    let exp_of = |a: f64, b: f64| (b / a.max(1.0)).log2().clamp(1.0, 3.0);
    let s_exp = exp_of(measured[0].suggest_ns, measured[1].suggest_ns);
    let o_exp = exp_of(measured[0].observe_ns, measured[1].observe_ns);
    let scale = 100_000.0 / measured[0].n as f64;
    measured.push(ScalePoint {
        surrogate: "dense_gp",
        n: 100_000,
        suggest_ns: measured[0].suggest_ns * scale.powf(s_exp),
        observe_ns: measured[0].observe_ns * scale.powf(o_exp),
        extrapolated: true,
    });
    measured
}

/// All scaling-arm latency samples: sparse and trust-region surrogates
/// measured at n ∈ {1k, 10k, 100k}, dense GP measured at {1k, 2k} and
/// extrapolated to 100k. This is what `bo_scale` records into
/// `BENCH_bo.json`.
pub fn scale_points() -> Vec<ScalePoint> {
    let mut points = dense_arm();
    points.extend(scale_arm("sparse_gp", sparse_model(), 100_000));
    points.extend(scale_arm("trust_region", trust_region_model(), 100_000));
    points
}

/// Finds the point for a surrogate at a given n.
fn at<'p>(points: &'p [ScalePoint], surrogate: &str, n: usize) -> &'p ScalePoint {
    points
        .iter()
        .find(|p| p.surrogate == surrogate && p.n == n)
        .expect("scale_points covers every (surrogate, n) pair")
}

/// Kernel-arm result: naive vs blocked wall time and equivalence.
struct KernelArm {
    chol_naive_ms: f64,
    chol_blocked_ms: f64,
    matmul_naive_ms: f64,
    matmul_blocked_ms: f64,
    equivalent: bool,
}

/// Times blocked vs naive Cholesky and matmul on a Kac–Murdock–Szegő-style
/// SPD matrix at [`KERNEL_N`].
fn kernel_arm() -> KernelArm {
    use autotune_linalg::{Cholesky, Matrix, DEFAULT_BLOCK};
    let n = KERNEL_N;
    let a = Matrix::from_fn(n, n, |i, j| {
        (-((i as f64 - j as f64).abs()) / 200.0).exp() + if i == j { 0.1 } else { 0.0 }
    });
    let t = Instant::now();
    let naive = Cholesky::new(&a).expect("KMS matrix is SPD");
    let chol_naive_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let blocked = Cholesky::new_blocked(&a, DEFAULT_BLOCK).expect("KMS matrix is SPD");
    let chol_blocked_ms = t.elapsed().as_secs_f64() * 1e3;
    let chol_equiv = blocked.l().approx_eq(naive.l(), 1e-6);

    let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0 - 0.5);
    let c = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 89) as f64 / 89.0 - 0.5);
    // Best-of-2 timing: the matmul margin is the thinnest of the arm, and
    // a single sample is at the mercy of whatever else the host was doing.
    let time2 = |op: &dyn Fn() -> Matrix| {
        let t = Instant::now();
        let out = op();
        let mut ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        std::hint::black_box(op());
        ms = ms.min(t.elapsed().as_secs_f64() * 1e3);
        (out, ms)
    };
    let (p_naive, matmul_naive_ms) = time2(&|| b.matmul(&c).expect("square operands"));
    let (p_blocked, matmul_blocked_ms) = time2(&|| {
        b.matmul_blocked(&c, DEFAULT_BLOCK)
            .expect("square operands")
    });
    // Identical accumulation order: bitwise, not just tolerance.
    let matmul_equiv = p_naive.as_slice() == p_blocked.as_slice();

    KernelArm {
        chol_naive_ms,
        chol_blocked_ms,
        matmul_naive_ms,
        matmul_blocked_ms,
        equivalent: chol_equiv && matmul_equiv,
    }
}

/// Mean best incumbent over [`QUALITY_SEEDS`] BO campaigns on the DBMS
/// target (a fresh optimizer per seed).
fn quality_arm(make: impl Fn() -> BayesianOptimizer) -> f64 {
    let target = super::dbms_target();
    let total: f64 = QUALITY_SEEDS
        .iter()
        .map(|&seed| {
            let mut opt = make();
            let curve = super::run_campaign(&mut opt, &target, QUALITY_BUDGET, seed);
            curve.last().copied().unwrap_or(f64::INFINITY)
        })
        .sum();
    total / QUALITY_SEEDS.len() as f64
}

/// Runs the experiment.
pub fn run() -> Report {
    let space = super::dbms_target().space().clone();
    let dense_best = quality_arm(|| BayesianOptimizer::gp(space.clone()));
    let sparse_best = quality_arm(|| BayesianOptimizer::sparse_gp(space.clone()));
    let turbo_best = quality_arm(|| BayesianOptimizer::turbo(space.clone()));

    let kernels = kernel_arm();
    let chol_speedup = kernels.chol_naive_ms / kernels.chol_blocked_ms.max(1e-9);
    let matmul_speedup = kernels.matmul_naive_ms / kernels.matmul_blocked_ms.max(1e-9);

    let points = scale_points();
    let dense_100k = at(&points, "dense_gp", 100_000);
    let sparse_1k = at(&points, "sparse_gp", 1_000);
    let sparse_100k = at(&points, "sparse_gp", 100_000);
    let tr_1k = at(&points, "trust_region", 1_000);
    let tr_100k = at(&points, "trust_region", 100_000);

    let mut rows = vec![
        vec![
            "quality: best latency".into(),
            format!("dense {}", f(dense_best, 2)),
            format!("sparse {}", f(sparse_best, 2)),
            format!("turbo {}", f(turbo_best, 2)),
        ],
        vec![
            format!("kernels @ n={KERNEL_N}"),
            format!("chol {}x", f(chol_speedup, 2)),
            format!("matmul {}x", f(matmul_speedup, 2)),
            format!("equivalent: {}", kernels.equivalent),
        ],
    ];
    for p in &points {
        rows.push(vec![
            format!(
                "{} @ n={}{}",
                p.surrogate,
                p.n,
                if p.extrapolated { " (extrap)" } else { "" }
            ),
            format!("suggest {} us", f(p.suggest_ns / 1e3, 1)),
            format!("observe {} us", f(p.observe_ns / 1e3, 1)),
            String::new(),
        ]);
    }

    // Shape: (a) sparse/turbo mean incumbent quality within tolerance of
    // dense over the shared quality seeds;
    // (b) blocked kernels beat naive at n = 2048 and agree with it;
    // (c) at n = 100k both scalable surrogates suggest ≥ 10x below the
    // dense GP's extrapolated cost and stay within 10x of their own
    // n = 1k latency (roughly flat in n).
    let quality_holds =
        sparse_best <= dense_best * QUALITY_TOL && turbo_best <= dense_best * QUALITY_TOL;
    let kernels_hold = kernels.equivalent && chol_speedup > 1.0 && matmul_speedup > 1.0;
    let scaling_holds = [sparse_100k, tr_100k]
        .iter()
        .all(|p| p.suggest_ns * 10.0 <= dense_100k.suggest_ns)
        && sparse_100k.suggest_ns <= 10.0 * sparse_1k.suggest_ns
        && tr_100k.suggest_ns <= 10.0 * tr_1k.suggest_ns;

    Report {
        id: "E36",
        title: "Scalable surrogates: sparse/trust-region GPs at 100k observations",
        headers: vec!["arm", "metric", "metric", "metric"],
        rows,
        paper_claim: "tuner overhead is the binding constraint of long campaigns: surrogates must \
                      hold suggest latency roughly flat in n without giving up tuning quality",
        measured: format!(
            "quality dense/sparse/turbo {}/{}/{}; chol {}x matmul {}x blocked speedup; suggest \
             at 100k: dense (extrap) {} ms, sparse {} us, trust-region {} us",
            f(dense_best, 2),
            f(sparse_best, 2),
            f(turbo_best, 2),
            f(chol_speedup, 2),
            f(matmul_speedup, 2),
            f(dense_100k.suggest_ns / 1e6, 1),
            f(sparse_100k.suggest_ns / 1e3, 1),
            f(tr_100k.suggest_ns / 1e3, 1),
        ),
        shape_holds: quality_holds && kernels_hold && scaling_holds,
    }
}

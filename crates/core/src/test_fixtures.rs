//! Shared targets for this crate's unit tests: one fixture per simulated
//! system instead of a copy in every test module.

use crate::{Objective, Target};
use autotune_sim::{Environment, RedisSim, SparkSim, Workload};

/// The tutorial's running example: Redis P95 latency on a KV-cache
/// workload, medium VM, noise-free.
pub(crate) fn redis_target() -> Target {
    Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    )
}

/// Spark on TPC-H SF-20, large cluster, minimizing elapsed time — trial
/// durations vary wildly with the config, which is what the async
/// scheduling and early-abort tests need.
pub(crate) fn spark_target() -> Target {
    Target::simulated(
        Box::new(SparkSim::new()),
        Workload::tpch(20.0),
        Environment::large(),
        Objective::MinimizeElapsed,
    )
}

//! Free functions on `&[f64]` vectors.
//!
//! These are the hot inner-loop primitives for kernel evaluation and
//! gradient updates; they are kept as plain slice functions so callers never
//! pay for a wrapper type.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (debug builds) if lengths differ; in release the shorter length
/// wins, so callers must pass equal lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// In-place `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Returns `a + alpha * b` as a new vector.
#[inline]
pub fn scaled_add(a: &[f64], alpha: f64, b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "scaled_add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + alpha * y).collect()
}

/// Normalizes `v` to unit Euclidean norm in place. A zero vector is left
/// unchanged (there is no meaningful direction to preserve).
pub fn normalize(v: &mut [f64]) {
    let n = norm2(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn norm_of_345_triangle() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn squared_distance_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(squared_distance(&a, &b), squared_distance(&b, &a));
        assert_eq!(squared_distance(&a, &b), 25.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scaled_add_matches_axpy() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        assert_eq!(scaled_add(&a, 0.5, &b), vec![6.0, 12.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }
}

//! Offline stub of `rand_distr` (see `third_party/README.md`): only the
//! [`LogNormal`] distribution, which is all this workspace samples.

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid log-normal parameters")
    }
}

impl std::error::Error for Error {}

impl LogNormal {
    /// Creates a log-normal with the given mean and standard deviation of
    /// the underlying normal. `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 nudged away from zero to keep ln() finite.
        let u1: f64 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

//! Spark job simulator — the tutorial's "Spark Tuning Game" (slide 14:
//! manually optimize TPC-H Q1 runtime in 100 tries).
//!
//! Models a scan-aggregate job (TPC-H Q1 shape) with the classic Spark
//! knob interactions:
//!
//! * executor count: near-linear speedup, then coordination overhead;
//! * executor memory: a *spill cliff* when partitions no longer fit;
//! * shuffle partitions: a U-shaped sweet spot (few = skew + spill,
//!   many = per-task overhead);
//! * codec: compression trades CPU for shuffle bytes;
//! * broadcast join threshold: helps only the join-bearing queries.

use crate::{Environment, SimSystem, TrialResult, Workload};
use autotune_space::{Config, Param, Space};
use rand::RngCore;

/// Simulated Spark cluster running a TPC-H-like query.
#[derive(Debug)]
pub struct SparkSim {
    space: Space,
}

impl SparkSim {
    /// Creates the simulator with the tuning game's knobs.
    pub fn new() -> Self {
        let space = Space::builder()
            .add(Param::int("executor_count", 1, 32).default_value(2i64))
            .add(
                Param::float("executor_memory_gb", 1.0, 16.0)
                    .log_scale()
                    .default_value(2.0),
            )
            .add(
                Param::int("shuffle_partitions", 8, 4096)
                    .log_scale()
                    .default_value(200i64),
            )
            .add(
                Param::categorical("compression_codec", &["none", "lz4", "zstd"])
                    .default_value("lz4"),
            )
            .add(Param::bool("broadcast_join").default_value(false))
            .build()
            .expect("static space definition is valid"); // lint: allow(D5) static space definition is valid
        SparkSim { space }
    }
}

impl Default for SparkSim {
    fn default() -> Self {
        SparkSim::new()
    }
}

impl SimSystem for SparkSim {
    fn name(&self) -> &str {
        "spark"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn run_trial(
        &self,
        config: &Config,
        workload: &Workload,
        env: &Environment,
        rng: &mut dyn RngCore,
    ) -> TrialResult {
        let executors = config.get_i64("executor_count").unwrap_or(2).max(1) as f64;
        let mem_gb = config.get_f64("executor_memory_gb").unwrap_or(2.0);
        let partitions = config.get_i64("shuffle_partitions").unwrap_or(200).max(1) as f64;
        let codec = config.get_str("compression_codec").unwrap_or("lz4");
        let broadcast = config.get_bool("broadcast_join").unwrap_or(false);

        // Cluster capacity limits how many executors actually run.
        let max_executors = (env.ram_gb / mem_gb).floor().max(1.0);
        if executors > max_executors * 4.0 {
            // Wildly over-provisioned: the resource manager refuses.
            return TrialResult::crash(3.0);
        }
        let running = executors.min(max_executors);

        let data_gb = workload.effective_working_set_gb().max(0.1);

        // --- scan + map phase ---
        // Per-executor scan bandwidth shares the node's disk.
        let scan_bw = env.disk_mbps / 1024.0; // GiB/s aggregate
        let scan_s =
            data_gb / (scan_bw * (0.4 + 0.6 * (running / (running + 2.0)) * running).max(0.1));

        // --- shuffle phase ---
        let shuffle_gb = data_gb * 0.3;
        let (codec_ratio, codec_cpu) = match codec {
            "zstd" => (0.35, 1.5),
            "lz4" => (0.55, 1.1),
            _ => (1.0, 1.0),
        };
        let partition_gb = shuffle_gb / partitions;
        // Spill cliff: a partition must fit in ~40% of executor memory.
        let spill = if partition_gb > 0.4 * mem_gb {
            3.0 + 4.0 * (partition_gb / (0.4 * mem_gb)).ln()
        } else {
            1.0
        };
        // Per-task scheduling overhead: 15 ms per task per wave.
        let waves = (partitions / running).max(1.0);
        let task_overhead_s = waves * 0.015;
        let shuffle_s =
            (shuffle_gb * codec_ratio / (0.2 * running)) * codec_cpu * spill + task_overhead_s;

        // --- join/aggregate phase ---
        let join_s = if broadcast && data_gb < 8.0 {
            0.3 * data_gb / running
        } else {
            0.6 * data_gb / running
        };

        let runtime_s = (scan_s + shuffle_s + join_s).max(0.5) + 2.0; // +driver startup
        let utilization = (running / max_executors).min(0.95);
        // "Latency" for a batch job is runtime; throughput is GB/s processed.
        crate::finish_trial(
            runtime_s * 1000.0,
            utilization,
            data_gb / runtime_s,
            runtime_s,
            env.cost_per_hour * running,
            workload,
            env,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn runtime(sim: &SparkSim, cfg: &Config, sf: f64, seed: u64) -> f64 {
        let env = Environment::large();
        let w = Workload::tpch(sf);
        let mut rng = StdRng::seed_from_u64(seed);
        let runs: Vec<f64> = (0..6)
            .map(|_| {
                let r = sim.run_trial(cfg, &w, &env, &mut rng);
                assert!(!r.crashed);
                r.elapsed_s
            })
            .collect();
        autotune_linalg::stats::mean(&runs)
    }

    #[test]
    fn more_executors_speed_up_until_saturation() {
        let sim = SparkSim::new();
        let t = |n: i64, seed| {
            let cfg = sim.space().default_config().with("executor_count", n);
            runtime(&sim, &cfg, 20.0, seed)
        };
        let two = t(2, 1);
        let eight = t(8, 2);
        assert!(
            eight < two * 0.7,
            "8 executors {eight} vs 2 executors {two}"
        );
    }

    #[test]
    fn shuffle_partitions_sweet_spot() {
        let sim = SparkSim::new();
        // Small executor memory so few partitions spill.
        let base = sim
            .space()
            .default_config()
            .with("executor_count", 8i64)
            .with("executor_memory_gb", 1.0);
        let t = |p: i64, seed| {
            let cfg = base.clone().with("shuffle_partitions", p);
            runtime(&sim, &cfg, 40.0, seed)
        };
        let too_few = t(8, 3);
        let right = t(256, 4);
        let too_many = t(4096, 5);
        assert!(
            right < too_few,
            "256 partitions {right} vs 8 {too_few} (spill)"
        );
        assert!(
            right < too_many,
            "256 partitions {right} vs 4096 {too_many} (task overhead)"
        );
    }

    #[test]
    fn memory_spill_cliff() {
        let sim = SparkSim::new();
        let base = sim
            .space()
            .default_config()
            .with("executor_count", 8i64)
            .with("shuffle_partitions", 16i64);
        let tight = runtime(&sim, &base.clone().with("executor_memory_gb", 1.0), 40.0, 6);
        let roomy = runtime(&sim, &base.clone().with("executor_memory_gb", 8.0), 40.0, 7);
        assert!(
            roomy < tight * 0.6,
            "8 GB {roomy} should clear the spill cliff vs 1 GB {tight}"
        );
    }

    #[test]
    fn compression_tradeoff_visible() {
        let sim = SparkSim::new();
        let base = sim.space().default_config().with("executor_count", 8i64);
        let none = runtime(
            &sim,
            &base.clone().with("compression_codec", "none"),
            40.0,
            8,
        );
        let lz4 = runtime(
            &sim,
            &base.clone().with("compression_codec", "lz4"),
            40.0,
            9,
        );
        assert!(
            lz4 < none,
            "lz4 {lz4} should beat uncompressed {none} on shuffle-heavy data"
        );
    }

    #[test]
    fn broadcast_helps_small_inputs_only() {
        let sim = SparkSim::new();
        let base = sim.space().default_config().with("executor_count", 8i64);
        let on = base.clone().with("broadcast_join", true);
        let small_gain = runtime(&sim, &base, 2.0, 10) - runtime(&sim, &on, 2.0, 11);
        let large_gain = runtime(&sim, &base, 40.0, 12) - runtime(&sim, &on, 40.0, 13);
        assert!(small_gain > 0.0, "broadcast should help at SF-2");
        assert!(
            large_gain.abs() < small_gain.max(0.2) * 3.0,
            "broadcast must not scale its benefit to huge inputs"
        );
    }

    #[test]
    fn absurd_overprovisioning_crashes() {
        let sim = SparkSim::new();
        let cfg = sim
            .space()
            .default_config()
            .with("executor_count", 32i64)
            .with("executor_memory_gb", 16.0);
        // 32 executors x 16 GB on a 64 GB node = 8x over capacity.
        let env = Environment::large();
        let mut rng = StdRng::seed_from_u64(14);
        let r = sim.run_trial(&cfg, &Workload::tpch(1.0), &env, &mut rng);
        assert!(r.crashed);
    }
}

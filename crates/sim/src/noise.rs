//! Cloud noise models (tutorial slides 70-71: "To Learn More … Get
//! Stable!", TUNA, duet benchmarking).
//!
//! Three noise sources the tutorial calls out, all reproducible here:
//!
//! * **machine heterogeneity** — each VM in a fleet has a persistent speed
//!   factor (noisy neighbours, silicon lottery), drawn log-normally;
//! * **temporal drift** — slow sinusoidal capacity change plus occasional
//!   step changes (co-tenant arrives/leaves);
//! * **spikes** — heavy-tailed transient latency events.
//!
//! The [`CloudNoise`] fleet hands out [`Machine`]s; a trial's effective
//! `machine_factor` combines all three, and *duet benchmarking* runs two
//! configs on the same machine at the same time so the factor cancels.

use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Noise magnitudes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// σ of the log-normal machine-factor distribution (0 = homogeneous
    /// fleet).
    pub machine_sigma: f64,
    /// Amplitude of the slow temporal drift (fraction of nominal).
    pub drift_amplitude: f64,
    /// Period of the drift, in trial units.
    pub drift_period: f64,
    /// Probability a trial is hit by a transient spike.
    pub spike_probability: f64,
    /// Mean multiplicative size of a spike (Pareto-ish tail).
    pub spike_scale: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            machine_sigma: 0.12,
            drift_amplitude: 0.08,
            drift_period: 60.0,
            spike_probability: 0.05,
            spike_scale: 0.5,
        }
    }
}

impl NoiseConfig {
    /// A noiseless configuration (lab conditions).
    pub fn none() -> Self {
        NoiseConfig {
            machine_sigma: 0.0,
            drift_amplitude: 0.0,
            drift_period: 60.0,
            spike_probability: 0.0,
            spike_scale: 0.0,
        }
    }
}

/// One machine in the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Stable machine identifier.
    pub id: usize,
    /// Persistent speed factor (1.0 = nominal; > 1 = slower).
    pub base_factor: f64,
    /// Per-machine drift phase offset.
    drift_phase: f64,
}

/// A simulated fleet of cloud machines.
#[derive(Debug, Clone)]
pub struct CloudNoise {
    config: NoiseConfig,
    machines: Vec<Machine>,
}

impl CloudNoise {
    /// Builds a fleet of `n_machines` with factors drawn from the config's
    /// log-normal, deterministically from `seed`.
    pub fn new_fleet(n_machines: usize, config: NoiseConfig, seed: u64) -> Self {
        assert!(n_machines > 0, "fleet needs at least one machine");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist =
            LogNormal::new(0.0, config.machine_sigma.max(1e-12)).expect("sigma validated positive"); // lint: allow(D5) sigma clamped positive on the same line
        let machines = (0..n_machines)
            .map(|id| Machine {
                id,
                base_factor: if config.machine_sigma > 0.0 {
                    dist.sample(&mut rng)
                } else {
                    1.0
                },
                drift_phase: rng.gen::<f64>() * std::f64::consts::TAU,
            })
            .collect();
        CloudNoise { config, machines }
    }

    /// Number of machines in the fleet.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// A machine picked uniformly at random (what the cloud scheduler does
    /// to your trial).
    pub fn random_machine(&self, rng: &mut dyn RngCore) -> &Machine {
        &self.machines[rng.gen_range(0..self.machines.len())]
    }

    /// A machine by id (for duet benchmarking: pin both configs here).
    pub fn machine(&self, id: usize) -> &Machine {
        &self.machines[id]
    }

    /// Effective multiplicative slowdown for a trial on `machine` at time
    /// `t` (trial index). Deterministic except for the spike draw.
    pub fn factor_at(&self, machine: &Machine, t: f64, rng: &mut dyn RngCore) -> f64 {
        let drift = 1.0
            + self.config.drift_amplitude
                * (std::f64::consts::TAU * t / self.config.drift_period + machine.drift_phase)
                    .sin();
        let spike = if rng.gen::<f64>() < self.config.spike_probability {
            // Pareto-ish: 1 + scale * (1/u - 1) capped to keep trials finite.
            let u: f64 = rng.gen::<f64>().max(0.02);
            1.0 + self.config.spike_scale * (1.0 / u - 1.0).min(10.0)
        } else {
            1.0
        };
        machine.base_factor * drift * spike
    }

    /// Identifies statistical outlier machines (factor beyond
    /// `threshold` standard deviations of the fleet). TUNA's outlier
    /// filtering step.
    pub fn outlier_machines(&self, threshold: f64) -> Vec<usize> {
        let factors: Vec<f64> = self.machines.iter().map(|m| m.base_factor).collect();
        let mean = autotune_linalg::stats::mean(&factors);
        let sd = autotune_linalg::stats::std_dev(&factors).max(1e-12);
        self.machines
            .iter()
            .filter(|m| ((m.base_factor - mean) / sd).abs() > threshold)
            .map(|m| m.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = CloudNoise::new_fleet(8, NoiseConfig::default(), 42);
        let b = CloudNoise::new_fleet(8, NoiseConfig::default(), 42);
        for (ma, mb) in a.machines.iter().zip(&b.machines) {
            assert_eq!(ma, mb);
        }
        let c = CloudNoise::new_fleet(8, NoiseConfig::default(), 43);
        assert!(a
            .machines
            .iter()
            .zip(&c.machines)
            .any(|(x, y)| x.base_factor != y.base_factor));
    }

    #[test]
    fn noiseless_config_gives_unit_factors() {
        let fleet = CloudNoise::new_fleet(4, NoiseConfig::none(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        for m in &fleet.machines {
            assert_eq!(m.base_factor, 1.0);
            let f = fleet.factor_at(m, 10.0, &mut rng);
            assert!((f - 1.0).abs() < 1e-12, "factor {f} should be exactly 1");
        }
    }

    #[test]
    fn machine_factors_are_heterogeneous() {
        let fleet = CloudNoise::new_fleet(50, NoiseConfig::default(), 3);
        let factors: Vec<f64> = fleet.machines.iter().map(|m| m.base_factor).collect();
        let sd = autotune_linalg::stats::std_dev(&factors);
        assert!(sd > 0.05, "fleet should be heterogeneous, sd = {sd}");
        assert!(factors.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn drift_moves_factor_over_time() {
        let cfg = NoiseConfig {
            spike_probability: 0.0,
            ..Default::default()
        };
        let fleet = CloudNoise::new_fleet(1, cfg, 4);
        let m = fleet.machine(0);
        let mut rng = StdRng::seed_from_u64(5);
        let f0 = fleet.factor_at(m, 0.0, &mut rng);
        let f_quarter = fleet.factor_at(m, 15.0, &mut rng);
        assert!(
            (f0 - f_quarter).abs() > 1e-6,
            "drift should move the factor"
        );
    }

    #[test]
    fn spikes_are_rare_but_large() {
        let cfg = NoiseConfig {
            machine_sigma: 0.0,
            drift_amplitude: 0.0,
            spike_probability: 0.1,
            spike_scale: 1.0,
            ..Default::default()
        };
        let fleet = CloudNoise::new_fleet(1, cfg, 6);
        let m = fleet.machine(0);
        let mut rng = StdRng::seed_from_u64(7);
        let factors: Vec<f64> = (0..2000)
            .map(|t| fleet.factor_at(m, t as f64, &mut rng))
            .collect();
        let spiked = factors.iter().filter(|&&f| f > 1.5).count();
        assert!(
            (50..600).contains(&spiked),
            "spike frequency off: {spiked}/2000"
        );
    }

    #[test]
    fn outlier_detection_finds_planted_outlier() {
        let mut fleet = CloudNoise::new_fleet(20, NoiseConfig::default(), 8);
        fleet.machines[7].base_factor = 3.0; // plant a lemon
        let outliers = fleet.outlier_machines(2.5);
        assert!(
            outliers.contains(&7),
            "planted outlier not found: {outliers:?}"
        );
        assert!(
            outliers.len() <= 3,
            "too many false positives: {outliers:?}"
        );
    }
}

//! LU factorization with partial pivoting, for general (non-SPD) square
//! systems — used by the linear-model surrogates and the structured-space
//! decision-tree fits where normal equations can be indefinite.

#![allow(clippy::needless_range_loop)] // offset-indexed triangular loops
use crate::{LinalgError, Matrix, Result};

/// LU factorization `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower part holds `L` (unit diagonal
    /// implied), upper triangle holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix. Returns [`LinalgError::Singular`] when a
    /// pivot column is entirely below `1e-12 * max_abs(A)`.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "lu: matrix must be square",
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let tol = 1e-12 * a.max_abs().max(1.0);
        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < tol {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "lu solve: rhs length must match dimension",
            });
        }
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let s = crate::vector::dot(&self.lu.row(i)[..i], &x[..i]);
            x[i] -= s;
        }
        for i in (0..n).rev() {
            let mut s = 0.0;
            for k in (i + 1)..n {
                s += self.lu[(i, k)] * x[k];
            }
            x[i] = (x[i] - s) / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        self.sign * (0..self.dim()).map(|i| self.lu[(i, i)]).product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_general_system() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, -3.0], &[-1.0, 1.0, 2.0]]);
        let x_true = vec![2.0, -1.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn det_with_row_swaps() {
        // Permutation of identity: det = -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn det_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        assert!((Lu::new(&a).unwrap().det() + 14.0).abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(Lu::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}

//! E2-E4 (slides 29-31): grid search, random search, and Bayesian
//! optimization on the Redis running example — the sample-efficiency
//! figure. Reported as mean best-so-far P95 at checkpoints over 20 seeds.

use crate::experiments::{mean_curve, redis_target, trials_to_reach};
use crate::report::{f, Report};
use autotune_optimizer::{BayesianOptimizer, GridSearch, Optimizer, RandomSearch};

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 20;
    let seeds = 0..20u64;
    let grid = mean_curve(
        || {
            Box::new(GridSearch::with_budget(
                redis_target().space().clone(),
                budget,
            )) as Box<dyn Optimizer>
        },
        redis_target,
        budget,
        seeds.clone(),
    );
    let random = mean_curve(
        || Box::new(RandomSearch::new(redis_target().space().clone())),
        redis_target,
        budget,
        seeds.clone(),
    );
    let bo = mean_curve(
        || Box::new(BayesianOptimizer::gp(redis_target().space().clone())),
        redis_target,
        budget,
        seeds,
    );

    let mut rows = Vec::new();
    for t in [1usize, 5, 10, 15, 20] {
        rows.push(vec![
            format!("{t}"),
            format!("{} ms", f(grid[t - 1], 3)),
            format!("{} ms", f(random[t - 1], 3)),
            format!("{} ms", f(bo[t - 1], 3)),
        ]);
    }
    // Trials-to-target: 5% above the best cost any method ever reached.
    let floor = grid
        .iter()
        .chain(&random)
        .chain(&bo)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let target = floor * 1.05;
    let tt = |c: &[f64]| trials_to_reach(c, target).map_or("n/a".into(), |n| n.to_string());
    rows.push(vec![
        format!("trials to {:.2}ms", target),
        tt(&grid),
        tt(&random),
        tt(&bo),
    ]);

    let bo_final = bo[budget - 1];
    let grid_final = grid[budget - 1];
    let random_final = random[budget - 1];
    let bo_tt = trials_to_reach(&bo, target).unwrap_or(budget + 1);
    let others_tt = trials_to_reach(&grid, target)
        .unwrap_or(budget + 1)
        .min(trials_to_reach(&random, target).unwrap_or(budget + 1));
    let shape_holds =
        bo_final <= grid_final * 1.02 && bo_final <= random_final * 1.02 && bo_tt <= others_tt;
    Report {
        id: "E2-E4",
        title: "Grid vs random vs BO on the Redis example (slides 29-31)",
        headers: vec!["trial", "grid", "random", "bo_gp"],
        rows,
        paper_claim: "model-guided BO is the most sample-efficient; grid/random need more trials",
        measured: format!(
            "final P95: grid {}, random {}, BO {} ms; BO reached target in {} vs {} trials",
            f(grid_final, 3),
            f(random_final, 3),
            f(bo_final, 3),
            bo_tt,
            others_tt
        ),
        shape_holds,
    }
}

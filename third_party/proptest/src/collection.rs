//! Collection strategies: `vec(element, size)`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Sizes accepted by [`vec()`]: an exact length or a half-open range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and `size` items.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

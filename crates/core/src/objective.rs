//! Tuning objectives (tutorial slide 9: "What are we autotuning for?").
//!
//! An [`Objective`] maps a benchmark's [`autotune_sim::TrialResult`] to the
//! scalar **cost** (minimization convention) the optimizer consumes.
//! Maximization metrics (throughput) are negated; crashed trials map to
//! NaN, which every optimizer in the workspace treats as "worst possible,
//! remember to avoid".

use autotune_sim::TrialResult;
use serde::{Deserialize, Serialize};

/// What the tuner optimizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize mean latency (ms).
    MinimizeLatencyAvg,
    /// Minimize 95th-percentile latency (ms) — the Redis running example.
    MinimizeLatencyP95,
    /// Minimize 99th-percentile latency (ms).
    MinimizeLatencyP99,
    /// Maximize throughput (ops/s), scored as its negation.
    MaximizeThroughput,
    /// Minimize dollar cost of the trial.
    MinimizeCost,
    /// Minimize benchmark wall-clock (elapsed-time benchmarks like TPC-H).
    MinimizeElapsed,
    /// Weighted sum of normalized latency and cost (a pragmatic
    /// scalarization when a full Pareto study is overkill).
    LatencyCostWeighted {
        /// Weight on mean latency (ms).
        latency_weight: f64,
        /// Weight on cost units.
        cost_weight: f64,
    },
}

impl Objective {
    /// Scalar cost of a trial result (NaN for crashes).
    pub fn cost(&self, r: &TrialResult) -> f64 {
        if r.crashed {
            return f64::NAN;
        }
        match self {
            Objective::MinimizeLatencyAvg => r.latency_avg_ms,
            Objective::MinimizeLatencyP95 => r.latency_p95_ms,
            Objective::MinimizeLatencyP99 => r.latency_p99_ms,
            Objective::MaximizeThroughput => -r.throughput_ops,
            Objective::MinimizeCost => r.cost_units,
            Objective::MinimizeElapsed => r.elapsed_s,
            Objective::LatencyCostWeighted {
                latency_weight,
                cost_weight,
            } => latency_weight * r.latency_avg_ms + cost_weight * r.cost_units,
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Objective::MinimizeLatencyAvg => "latency_avg_ms".into(),
            Objective::MinimizeLatencyP95 => "latency_p95_ms".into(),
            Objective::MinimizeLatencyP99 => "latency_p99_ms".into(),
            Objective::MaximizeThroughput => "-throughput_ops".into(),
            Objective::MinimizeCost => "cost_units".into(),
            Objective::MinimizeElapsed => "elapsed_s".into(),
            Objective::LatencyCostWeighted {
                latency_weight,
                cost_weight,
            } => format!("{latency_weight}*latency + {cost_weight}*cost"),
        }
    }

    /// Renders a cost back into the metric's natural reading (throughput
    /// costs are negated back to positive ops/s).
    pub fn display_value(&self, cost: f64) -> f64 {
        match self {
            Objective::MaximizeThroughput => -cost,
            _ => cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> TrialResult {
        TrialResult {
            latency_avg_ms: 5.0,
            latency_p95_ms: 12.0,
            latency_p99_ms: 30.0,
            throughput_ops: 1000.0,
            cost_units: 0.02,
            elapsed_s: 60.0,
            crashed: false,
            failure: None,
            telemetry: Vec::new(),
            profile: Vec::new(),
        }
    }

    #[test]
    fn each_objective_reads_its_metric() {
        let r = result();
        assert_eq!(Objective::MinimizeLatencyAvg.cost(&r), 5.0);
        assert_eq!(Objective::MinimizeLatencyP95.cost(&r), 12.0);
        assert_eq!(Objective::MinimizeLatencyP99.cost(&r), 30.0);
        assert_eq!(Objective::MaximizeThroughput.cost(&r), -1000.0);
        assert_eq!(Objective::MinimizeCost.cost(&r), 0.02);
        assert_eq!(Objective::MinimizeElapsed.cost(&r), 60.0);
    }

    #[test]
    fn weighted_combination() {
        let obj = Objective::LatencyCostWeighted {
            latency_weight: 1.0,
            cost_weight: 100.0,
        };
        assert!((obj.cost(&result()) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn crash_is_nan_for_every_objective() {
        let crash = TrialResult::crash(5.0);
        for obj in [
            Objective::MinimizeLatencyAvg,
            Objective::MaximizeThroughput,
            Objective::MinimizeCost,
            Objective::MinimizeElapsed,
        ] {
            assert!(
                obj.cost(&crash).is_nan(),
                "{} not NaN on crash",
                obj.label()
            );
        }
    }

    #[test]
    fn display_value_restores_throughput_sign() {
        let obj = Objective::MaximizeThroughput;
        let c = obj.cost(&result());
        assert_eq!(obj.display_value(c), 1000.0);
        assert_eq!(Objective::MinimizeCost.display_value(0.5), 0.5);
    }
}

//! Pass 2: per-file symbol table and intraprocedural statement flow.
//!
//! The token rules in [`crate::rules`] see one token at a time; the
//! concurrency pack (D7–D12) needs more: which function a token is in,
//! which lock guards are live at a given statement, and whether an ack
//! construction is preceded by a durable append. This module extracts
//! that structure from the same lexed stream, still dependency-free:
//!
//! * [`analyze`] discovers every `fn` body (a brace-matched span over the
//!   dense non-comment token index) and, per function, extracts lock
//!   **acquisitions** with an estimated guard lifetime and a list of
//!   flow **events** (risky calls, relaxed atomics, ack constructions,
//!   durable calls, parallel reductions, poison unwraps).
//! * Guard lifetimes are estimated conservatively from statement shape:
//!   a `let`-bound guard lives until `drop(guard)` or its block's `}`;
//!   a temporary guard dies at the end of its statement (`;`, or the `{`
//!   opening the block its condition guards).
//!
//! The analysis is intraprocedural and name-based: a lock is identified
//! by the last field/call name of its receiver chain (`self.shards[i]
//! .read()` → `shards`), which is exactly the granularity the global
//! lock-order graph in [`crate::graph`] unifies on across crates.

use crate::lexer::{Tok, TokKind};

/// How an acquisition takes its lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// `read()` / `pread()` / `read_lock(..)` — shared.
    Read,
    /// `write()` / `pwrite()` / `write_lock(..)` — exclusive RwLock.
    Write,
    /// `lock()` / `plock()` / `lock_queue(..)` — Mutex.
    Exclusive,
}

/// One lock acquisition with its estimated guard lifetime.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Unified lock name (receiver field or helper-argument name).
    pub lock: String,
    /// Shared/exclusive mode.
    pub mode: LockMode,
    /// Dense index of the acquiring method/helper identifier.
    pub di: usize,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// Dense index past which the guard is certainly dead (exclusive).
    pub release: usize,
    /// Binding name for `let`-bound guards; `None` for temporaries.
    pub binding: Option<String>,
}

/// What a flow event is.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// Call that must not run under a held guard (D8): `catch_unwind`,
    /// `par_map*`, WAL `append`/`append_aux`.
    Risky {
        /// Callee identifier.
        callee: String,
        /// Receiver chain name for method calls, when recoverable.
        receiver: Option<String>,
    },
    /// Atomic op passing `Ordering::Relaxed` (D9); `fetch_add`/`fetch_sub`
    /// counters are exempt at extraction time.
    RelaxedAtomic {
        /// The atomic method (`load`, `store`, `swap`, ...).
        method: String,
    },
    /// `Response::Variant { .. }` construction (D10). Patterns (match
    /// arms, `if let`, `..` rests) are filtered out.
    Ack {
        /// Variant name.
        variant: String,
        /// Dense index of the construction's closing brace; durable calls
        /// anywhere before this dominate the ack (field expressions are
        /// evaluated before the value exists).
        end: usize,
    },
    /// Call into the durability layer (D10 dominator).
    Durable {
        /// Callee identifier.
        callee: String,
    },
    /// Non-associative float reduction inside a `par_map*` argument list
    /// (D11).
    Reduction {
        /// Human description of the reduction shape.
        what: String,
    },
    /// `.lock()/.read()/.write()` immediately followed by a
    /// poison-panicking adapter (D12).
    PoisonUnwrap {
        /// The adapter (`unwrap`, `expect`, `unwrap_or_else`).
        method: String,
        /// The lock method it follows.
        lock: String,
    },
}

/// One flow event at a source position.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event payload.
    pub kind: EventKind,
    /// Dense index of the anchor token.
    pub di: usize,
    /// 1-based source line.
    pub line: u32,
}

/// Everything the statement-flow pass learned about one function.
#[derive(Debug)]
pub struct FnFlow {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Dense index of the body's `{`.
    pub open: usize,
    /// Dense index of the body's `}`.
    pub close: usize,
    /// Lock acquisitions in source order.
    pub acquires: Vec<Acquire>,
    /// Flow events in source order.
    pub events: Vec<Event>,
}

const ATOMIC_METHODS: [&str; 12] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_nand",
    "fetch_min",
    "fetch_max",
];

const RISKY_CALLS: [&str; 5] = [
    "catch_unwind",
    "par_map",
    "par_map_threads",
    "append",
    "append_aux",
];

const DURABLE_CALLS: [&str; 7] = [
    "append",
    "append_aux",
    "journal_op",
    "admit_spec",
    "register_spec",
    "stop",
    "lookup",
];

const POISON_ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

fn tok<'a>(toks: &'a [Tok], sig: &[usize], di: usize) -> Option<&'a Tok> {
    sig.get(di).map(|&ti| &toks[ti])
}

fn is_punct(toks: &[Tok], sig: &[usize], di: usize, c: char) -> bool {
    tok(toks, sig, di).is_some_and(|t| t.is_punct(c))
}

fn is_ident(toks: &[Tok], sig: &[usize], di: usize) -> bool {
    tok(toks, sig, di).is_some_and(|t| t.kind == TokKind::Ident)
}

/// Dense index of the closer matching the opener at `di` (`(`/`[`/`{`).
fn match_forward(toks: &[Tok], sig: &[usize], di: usize) -> Option<usize> {
    let (open, close) = match tok(toks, sig, di)?.text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut j = di;
    while let Some(t) = tok(toks, sig, j) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Dense index of the opener matching the closer at `di` (`)`/`]`/`}`).
fn match_backward(toks: &[Tok], sig: &[usize], di: usize) -> Option<usize> {
    let (open, close) = match tok(toks, sig, di)?.text.as_str() {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        "}" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut j = di;
    loop {
        let t = tok(toks, sig, j)?;
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Name of the receiver chain segment closest to the `.` before the
/// method at `di`: `self.state.lock()` → `state`, `self.shard_of(f)
/// .read()` → `shard_of`, `shards[i].write()` → `shards`.
fn receiver_name(toks: &[Tok], sig: &[usize], di: usize) -> Option<String> {
    if !is_punct(toks, sig, di.checked_sub(1)?, '.') {
        return None;
    }
    let mut j = di.checked_sub(2)?;
    loop {
        let t = tok(toks, sig, j)?;
        if t.is_punct(')') || t.is_punct(']') {
            j = match_backward(toks, sig, j)?.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        }
        return None;
    }
}

/// Lock name for the helper form `read_lock(&self.clusters)` /
/// `write_lock(cache.shard_of(f))`: the last *called* identifier inside
/// the argument list, else the last non-`self` identifier.
fn helper_arg_name(toks: &[Tok], sig: &[usize], open: usize, close: usize) -> Option<String> {
    let mut last_ident = None;
    let mut last_call = None;
    for j in open + 1..close {
        let t = tok(toks, sig, j)?;
        if t.kind == TokKind::Ident && t.text != "self" {
            if is_punct(toks, sig, j + 1, '(') {
                last_call = Some(t.text.clone());
            } else {
                last_ident = Some(t.text.clone());
            }
        }
    }
    last_call.or(last_ident)
}

/// Dense index where the statement containing `di` starts (never before
/// `floor`, the function's opening brace).
fn stmt_start(toks: &[Tok], sig: &[usize], di: usize, floor: usize) -> usize {
    let (mut p, mut bk) = (0i32, 0i32);
    let mut j = di;
    while j > floor + 1 {
        j -= 1;
        let Some(t) = tok(toks, sig, j) else {
            break;
        };
        if t.is_punct(')') {
            p += 1;
        } else if t.is_punct('(') {
            if p == 0 {
                return j + 1;
            }
            p -= 1;
        } else if t.is_punct(']') {
            bk += 1;
        } else if t.is_punct('[') {
            if bk == 0 {
                return j + 1;
            }
            bk -= 1;
        } else if p == 0
            && bk == 0
            && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(','))
        {
            return j + 1;
        }
    }
    floor + 1
}

/// If the statement starting at `start` begins `let [mut] name =`,
/// returns `name`.
fn let_binding(toks: &[Tok], sig: &[usize], start: usize) -> Option<String> {
    if !tok(toks, sig, start)?.is_ident("let") {
        return None;
    }
    let mut k = start + 1;
    if tok(toks, sig, k)?.is_ident("mut") {
        k += 1;
    }
    let name = tok(toks, sig, k)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    if !is_punct(toks, sig, k + 1, '=') {
        return None;
    }
    Some(name.text.clone())
}

/// True when, after the acquisition call's `)` at `call_close`, the only
/// tokens before the statement's `;` are poison adapters (`.unwrap()`,
/// `.expect(..)`, `.unwrap_or_else(..)`) and `?` — i.e. the statement's
/// bound value *is* the guard, not something derived from it.
fn guard_is_statement_value(toks: &[Tok], sig: &[usize], call_close: usize) -> bool {
    let mut j = call_close + 1;
    loop {
        let Some(t) = tok(toks, sig, j) else {
            return false;
        };
        if t.is_punct('?') {
            j += 1;
            continue;
        }
        if t.is_punct(';') {
            return true;
        }
        if t.is_punct('.') {
            let adapter = tok(toks, sig, j + 1);
            if adapter.is_some_and(|a| POISON_ADAPTERS.contains(&a.text.as_str()))
                && is_punct(toks, sig, j + 2, '(')
            {
                match match_forward(toks, sig, j + 2) {
                    Some(close) => {
                        j = close + 1;
                        continue;
                    }
                    None => return false,
                }
            }
            return false;
        }
        return false;
    }
}

/// Release point for a temporary guard acquired at `di`: the end of its
/// statement (`;`), the `{` opening the block its condition guards, or
/// the `}` closing the enclosing block.
fn temp_release(toks: &[Tok], sig: &[usize], di: usize, limit: usize) -> usize {
    let (mut p, mut bk, mut bc) = (0i32, 0i32, 0i32);
    let mut j = di;
    while j < limit {
        let Some(t) = tok(toks, sig, j) else {
            break;
        };
        if t.is_punct('(') {
            p += 1;
        } else if t.is_punct(')') {
            p -= 1;
        } else if t.is_punct('[') {
            bk += 1;
        } else if t.is_punct(']') {
            bk -= 1;
        } else if t.is_punct('{') {
            if p <= 0 && bk <= 0 && bc == 0 {
                return j;
            }
            bc += 1;
        } else if t.is_punct('}') {
            if bc == 0 {
                return j;
            }
            bc -= 1;
        } else if t.is_punct(';') && p <= 0 && bk <= 0 && bc == 0 {
            return j;
        }
        j += 1;
    }
    limit
}

/// Release point for a `let`-bound guard: the first `drop(binding)` after
/// `di`, else the `}` closing the binding's block.
fn binding_release(toks: &[Tok], sig: &[usize], di: usize, limit: usize, binding: &str) -> usize {
    let mut bc = 0i32;
    let mut block_end = limit;
    let mut j = di;
    let mut found_end = false;
    while j < limit {
        let Some(t) = tok(toks, sig, j) else {
            break;
        };
        if t.is_ident("drop")
            && is_punct(toks, sig, j + 1, '(')
            && tok(toks, sig, j + 2).is_some_and(|t| t.is_ident(binding))
            && is_punct(toks, sig, j + 3, ')')
        {
            return j + 3;
        }
        if t.is_punct('{') {
            bc += 1;
        } else if t.is_punct('}') {
            if bc == 0 && !found_end {
                block_end = j;
                found_end = true;
            }
            if bc > 0 {
                bc -= 1;
            }
        }
        j += 1;
    }
    block_end
}

/// Idents declared inside the span (`let`/`for` bindings and closure
/// params) — used to tell closure-local accumulators from captured ones.
fn declared_names(toks: &[Tok], sig: &[usize], open: usize, close: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = open;
    while j < close {
        let Some(t) = tok(toks, sig, j) else {
            break;
        };
        if t.is_ident("let") || t.is_ident("for") {
            // Collect pattern idents up to `=` / `in` / statement break.
            let mut k = j + 1;
            while k < close {
                let Some(u) = tok(toks, sig, k) else {
                    break;
                };
                if u.is_punct('=') || u.is_ident("in") || u.is_punct(';') || u.is_punct('{') {
                    break;
                }
                if u.kind == TokKind::Ident && !u.is_ident("mut") {
                    names.push(u.text.clone());
                }
                k += 1;
            }
            j = k;
            continue;
        }
        if t.is_punct('|') {
            // Closure params: idents until the closing `|` (loose — also
            // harvests pattern idents, which is the right direction).
            let mut k = j + 1;
            while k < close {
                let Some(u) = tok(toks, sig, k) else {
                    break;
                };
                if u.is_punct('|') {
                    break;
                }
                if u.kind == TokKind::Ident {
                    names.push(u.text.clone());
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        j += 1;
    }
    names
}

/// Scans a `par_map*` argument list for non-associative reductions:
/// `.sum()` / `.product()` calls and `+=` onto captured (not
/// closure-declared) accumulators.
fn scan_par_reductions(
    toks: &[Tok],
    sig: &[usize],
    open: usize,
    close: usize,
    events: &mut Vec<Event>,
) {
    let declared = declared_names(toks, sig, open, close);
    for j in open + 1..close {
        let Some(t) = tok(toks, sig, j) else {
            break;
        };
        if (t.is_ident("sum") || t.is_ident("product"))
            && is_punct(toks, sig, j.wrapping_sub(1), '.')
        {
            // Plain call or turbofish `sum::<f64>()`.
            let called = is_punct(toks, sig, j + 1, '(')
                || (is_punct(toks, sig, j + 1, ':') && is_punct(toks, sig, j + 2, ':'));
            if called {
                events.push(Event {
                    kind: EventKind::Reduction {
                        what: format!("`.{}()`", t.text),
                    },
                    di: j,
                    line: t.line,
                });
            }
        }
        if t.is_punct('+') && is_punct(toks, sig, j + 1, '=') {
            // Target: ident directly before, skipping one index group.
            let mut k = j.wrapping_sub(1);
            if is_punct(toks, sig, k, ']') {
                match match_backward(toks, sig, k).and_then(|o| o.checked_sub(1)) {
                    Some(o) => k = o,
                    None => continue,
                }
            }
            if let Some(target) = tok(toks, sig, k) {
                if target.kind == TokKind::Ident && !declared.contains(&target.text) {
                    events.push(Event {
                        kind: EventKind::Reduction {
                            what: format!("`{} +=` on a captured accumulator", target.text),
                        },
                        di: j,
                        line: target.line,
                    });
                }
            }
        }
    }
}

/// Discovers every `fn` body: `(name, line, open, close)` over dense
/// indices. Nested functions are discovered too; [`analyze`] assigns each
/// token to its innermost function.
fn functions(toks: &[Tok], sig: &[usize]) -> Vec<(String, u32, usize, usize)> {
    let mut fns = Vec::new();
    let mut di = 0usize;
    while di < sig.len() {
        let t = &toks[sig[di]];
        if !t.is_ident("fn") || !is_ident(toks, sig, di + 1) {
            di += 1;
            continue;
        }
        let name = toks[sig[di + 1]].text.clone();
        let line = t.line;
        // Scan the signature for the body's `{` (a `;` at depth 0 means a
        // trait declaration without a body).
        let (mut p, mut bk) = (0i32, 0i32);
        let mut j = di + 2;
        let mut open = None;
        while let Some(u) = tok(toks, sig, j) {
            if u.is_punct('(') {
                p += 1;
            } else if u.is_punct(')') {
                p -= 1;
            } else if u.is_punct('[') {
                bk += 1;
            } else if u.is_punct(']') {
                bk -= 1;
            } else if u.is_punct('{') {
                if p == 0 && bk == 0 {
                    open = Some(j);
                    break;
                }
                // Brace group inside the signature (const-generic expr):
                // skip it wholesale.
                match match_forward(toks, sig, j) {
                    Some(c) => j = c,
                    None => break,
                }
            } else if u.is_punct(';') && p == 0 && bk == 0 {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            di = j + 1;
            continue;
        };
        let Some(close) = match_forward(toks, sig, open) else {
            break;
        };
        fns.push((name, line, open, close));
        di = open + 1;
    }
    fns
}

/// Runs the statement-flow pass over a lexed file. `mask[ti]` marks
/// test-scope tokens (exempt from extraction).
pub fn analyze(toks: &[Tok], sig: &[usize], mask: &[bool]) -> Vec<FnFlow> {
    let fns = functions(toks, sig);
    // Innermost-function ownership per dense index: later (inner) fns
    // overwrite their enclosing fn's claim.
    let mut owner = vec![usize::MAX; sig.len()];
    for (k, f) in fns.iter().enumerate() {
        for slot in owner.iter_mut().take(f.3 + 1).skip(f.2) {
            *slot = k;
        }
    }
    let mut flows: Vec<FnFlow> = fns
        .iter()
        .map(|(name, line, open, close)| FnFlow {
            name: name.clone(),
            line: *line,
            open: *open,
            close: *close,
            acquires: Vec::new(),
            events: Vec::new(),
        })
        .collect();

    for (k, f) in fns.iter().enumerate() {
        let (open, close) = (f.2, f.3);
        let mut d = open + 1;
        while d < close {
            if owner[d] != k || mask[sig[d]] {
                d += 1;
                continue;
            }
            let t = &toks[sig[d]];
            if t.kind != TokKind::Ident && !t.is_punct('+') {
                d += 1;
                continue;
            }
            let flow = &mut flows[k];
            let dotted = is_punct(toks, sig, d.wrapping_sub(1), '.') && d > 0;
            let called = is_punct(toks, sig, d + 1, '(');

            // Lock acquisition, method form: `.lock()/.read()/.write()`
            // and the PoisonFree `.plock()/.pread()/.pwrite()` — empty
            // argument lists only, so `io::Read::read(&mut buf)` never
            // matches.
            let mode = match t.text.as_str() {
                "lock" | "plock" => Some(LockMode::Exclusive),
                "read" | "pread" => Some(LockMode::Read),
                "write" | "pwrite" => Some(LockMode::Write),
                _ => None,
            };
            if let Some(mode) = mode {
                if dotted && called && is_punct(toks, sig, d + 2, ')') {
                    let lock = receiver_name(toks, sig, d).unwrap_or_else(|| "?".to_string());
                    push_acquire(toks, sig, flow, d, close, lock, mode, t.line);
                    d += 1;
                    continue;
                }
            }
            // Lock acquisition, helper form: `read_lock(..)` etc. —
            // skipping the helper *definitions* themselves.
            let helper_mode = match t.text.as_str() {
                "read_lock" => Some(LockMode::Read),
                "write_lock" => Some(LockMode::Write),
                "lock_queue" => Some(LockMode::Exclusive),
                _ => None,
            };
            if let Some(mode) = helper_mode {
                let defined_here = d > 0 && tok(toks, sig, d - 1).is_some_and(|p| p.is_ident("fn"));
                if called && !defined_here {
                    if let Some(args_close) = match_forward(toks, sig, d + 1) {
                        let lock = helper_arg_name(toks, sig, d + 1, args_close)
                            .unwrap_or_else(|| t.text.clone());
                        push_acquire(toks, sig, flow, d, close, lock, mode, t.line);
                    }
                    d += 1;
                    continue;
                }
            }

            // Risky calls (D8) — `append` is disambiguated from
            // `Vec::append` by receiver name in the rules layer.
            if called && RISKY_CALLS.contains(&t.text.as_str()) {
                flow.events.push(Event {
                    kind: EventKind::Risky {
                        callee: t.text.clone(),
                        receiver: if dotted {
                            receiver_name(toks, sig, d)
                        } else {
                            None
                        },
                    },
                    di: d,
                    line: t.line,
                });
            }
            // Durable calls (D10 dominators).
            if called && DURABLE_CALLS.contains(&t.text.as_str()) {
                flow.events.push(Event {
                    kind: EventKind::Durable {
                        callee: t.text.clone(),
                    },
                    di: d,
                    line: t.line,
                });
            }
            // par_map* argument lists: scan once for reductions (D11).
            if called && (t.is_ident("par_map") || t.is_ident("par_map_threads")) {
                if let Some(args_close) = match_forward(toks, sig, d + 1) {
                    scan_par_reductions(toks, sig, d + 1, args_close, &mut flow.events);
                }
            }
            // Relaxed atomics (D9) — fetch_add/fetch_sub counters exempt.
            if dotted && called && ATOMIC_METHODS.contains(&t.text.as_str()) {
                if let Some(args_close) = match_forward(toks, sig, d + 1) {
                    let relaxed = (d + 2..args_close)
                        .any(|j| tok(toks, sig, j).is_some_and(|u| u.is_ident("Relaxed")));
                    if relaxed {
                        flow.events.push(Event {
                            kind: EventKind::RelaxedAtomic {
                                method: t.text.clone(),
                            },
                            di: d,
                            line: t.line,
                        });
                    }
                }
            }
            // Ack constructions (D10): `Response::Variant { .. }` used as
            // a value, not a pattern.
            if t.is_ident("Response")
                && is_punct(toks, sig, d + 1, ':')
                && is_punct(toks, sig, d + 2, ':')
                && is_ident(toks, sig, d + 3)
                && is_punct(toks, sig, d + 4, '{')
            {
                if let Some(end) = match_forward(toks, sig, d + 4) {
                    let rest_pattern = (d + 5..end)
                        .any(|j| is_punct(toks, sig, j, '.') && is_punct(toks, sig, j + 1, '.'));
                    let arm_or_let = is_punct(toks, sig, end + 1, '=');
                    if !rest_pattern && !arm_or_let {
                        let variant = toks[sig[d + 3]].text.clone();
                        flow.events.push(Event {
                            kind: EventKind::Ack { variant, end },
                            di: d,
                            line: t.line,
                        });
                    }
                }
            }
            // Poison unwraps (D12): adapter directly after an empty-arg
            // `.lock()/.read()/.write()` call.
            if dotted
                && called
                && POISON_ADAPTERS.contains(&t.text.as_str())
                && d >= 2
                && is_punct(toks, sig, d - 2, ')')
            {
                if let Some(lock_open) = match_backward(toks, sig, d - 2) {
                    let empty = lock_open + 1 == d - 2;
                    let lock_method = lock_open
                        .checked_sub(1)
                        .and_then(|j| tok(toks, sig, j))
                        .filter(|u| {
                            u.is_ident("lock") || u.is_ident("read") || u.is_ident("write")
                        });
                    if empty {
                        if let Some(lm) = lock_method {
                            flow.events.push(Event {
                                kind: EventKind::PoisonUnwrap {
                                    method: t.text.clone(),
                                    lock: lm.text.clone(),
                                },
                                di: d,
                                line: t.line,
                            });
                        }
                    }
                }
            }
            d += 1;
        }
    }
    flows
}

/// Builds one [`Acquire`] (lifetime estimation) and records it.
#[allow(clippy::too_many_arguments)]
fn push_acquire(
    toks: &[Tok],
    sig: &[usize],
    flow: &mut FnFlow,
    d: usize,
    fn_close: usize,
    lock: String,
    mode: LockMode,
    line: u32,
) {
    // The call's closing paren: method form has `( )` at d+1..d+2; helper
    // form has a balanced list.
    let call_close = match match_forward(toks, sig, d + 1) {
        Some(c) => c,
        None => {
            return;
        }
    };
    let start = stmt_start(toks, sig, d, flow.open);
    let binding =
        let_binding(toks, sig, start).filter(|_| guard_is_statement_value(toks, sig, call_close));
    let release = match &binding {
        Some(name) => binding_release(toks, sig, d, fn_close, name),
        None => temp_release(toks, sig, call_close, fn_close),
    };
    flow.acquires.push(Acquire {
        lock,
        mode,
        di: d,
        line,
        release,
        binding,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope;

    fn flows(src: &str) -> Vec<FnFlow> {
        let toks = lex(src);
        let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let mask = scope::test_mask(&toks);
        analyze(&toks, &sig, &mask)
    }

    #[test]
    fn finds_functions_and_nesting() {
        let src = "fn outer() { fn inner() { x.lock(); } y.read(); }";
        let fs = flows(src);
        assert_eq!(fs.len(), 2);
        let outer = fs.iter().find(|f| f.name == "outer").unwrap();
        let inner = fs.iter().find(|f| f.name == "inner").unwrap();
        // Each acquisition belongs to its innermost fn.
        assert_eq!(outer.acquires.len(), 1);
        assert_eq!(outer.acquires[0].lock, "y");
        assert_eq!(inner.acquires.len(), 1);
        assert_eq!(inner.acquires[0].lock, "x");
    }

    #[test]
    fn binding_guard_lives_to_block_end_or_drop() {
        let src = "fn f() { let g = m.lock().unwrap(); touch(); drop(g); after(); }";
        let fs = flows(src);
        let a = &fs[0].acquires[0];
        assert_eq!(a.binding.as_deref(), Some("g"));
        // Released at the `)` of drop(g) — before `after()`.
        let after_di = fs[0].close - 4;
        assert!(
            a.release < after_di,
            "release {} after {}",
            a.release,
            after_di
        );
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn f() { m.lock().unwrap().push(1); n.lock(); }";
        let fs = flows(src);
        let a = &fs[0].acquires[0];
        assert!(a.binding.is_none());
        let b = &fs[0].acquires[1];
        assert!(
            a.release < b.di,
            "temporary must be dead before second lock"
        );
    }

    #[test]
    fn derived_value_is_not_a_guard_binding() {
        // `let n = m.read().unwrap().len();` — n is a usize, not a guard.
        let src = "fn f() { let n = m.read().unwrap().len(); other.write(); }";
        let fs = flows(src);
        let a = &fs[0].acquires[0];
        assert!(a.binding.is_none());
        assert!(a.release < fs[0].acquires[1].di);
    }

    #[test]
    fn condition_guard_dies_at_block_open() {
        let src = "fn f() { if m.lock().unwrap().ready { n.lock(); } }";
        let fs = flows(src);
        let a = &fs[0].acquires[0];
        let b = &fs[0].acquires[1];
        assert!(a.release <= b.di, "condition temporary must die at `{{`");
    }

    #[test]
    fn helper_form_names_the_argument() {
        let src =
            "fn f() { let g = read_lock(&self.clusters); let h = write_lock(self.shard_of(k)); }";
        let fs = flows(src);
        assert_eq!(fs[0].acquires[0].lock, "clusters");
        assert_eq!(fs[0].acquires[0].mode, LockMode::Read);
        assert_eq!(fs[0].acquires[1].lock, "shard_of");
        assert_eq!(fs[0].acquires[1].mode, LockMode::Write);
    }

    #[test]
    fn helper_definition_is_not_an_acquisition() {
        let src = "fn read_lock(l: &RwLock<T>) -> Guard { l.read().unwrap_or_else(p) }";
        let fs = flows(src);
        // The body's `l.read()` is a real acquisition; the `fn read_lock`
        // ident itself is not.
        assert_eq!(fs[0].acquires.len(), 1);
        assert_eq!(fs[0].acquires[0].lock, "l");
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let src = "fn f() { file.read(&mut buf).unwrap(); }";
        let fs = flows(src);
        assert!(fs[0].acquires.is_empty());
        assert!(fs[0].events.is_empty());
    }

    #[test]
    fn ack_construction_vs_pattern() {
        let src = r#"
fn f() -> Response {
    match r {
        Response::Registered { id } => use_it(id),
        Response::CacheHit { .. } => other(),
    }
    Response::Stopped { was_active: true }
}
"#;
        let fs = flows(src);
        let acks: Vec<&str> = fs[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Ack { variant, .. } => Some(variant.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec!["Stopped"]);
    }

    #[test]
    fn durable_call_inside_ack_braces_is_recorded() {
        let src = "fn f() -> R { Ok(Response::Registered { id: self.admit_spec(&spec, rid)?, }) }";
        let fs = flows(src);
        let ack_end = fs[0]
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Ack { end, .. } => Some(*end),
                _ => None,
            })
            .unwrap();
        let durable_di = fs[0]
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Durable { .. } => Some(e.di),
                _ => None,
            })
            .unwrap();
        assert!(
            durable_di < ack_end,
            "field-expr durable call dominates the ack"
        );
    }

    #[test]
    fn relaxed_atomics_flagged_counters_exempt() {
        let src = "fn f() { c.fetch_add(1, Ordering::Relaxed); h.store(t, Ordering::Relaxed); h.load(Ordering::Acquire); }";
        let fs = flows(src);
        let relaxed: Vec<&str> = fs[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::RelaxedAtomic { method } => Some(method.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(relaxed, vec!["store"]);
    }

    #[test]
    fn captured_accumulator_in_par_map_flagged_local_not() {
        let src = "fn f() { par_map(&pool, xs, |x| { let mut local = 0.0; local += x; total += x; local }); }";
        let fs = flows(src);
        let red: Vec<String> = fs[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Reduction { what } => Some(what.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(red.len(), 1, "{red:?}");
        assert!(red[0].contains("total"));
    }

    #[test]
    fn poison_unwrap_detected_only_on_empty_arg_locks() {
        let src =
            "fn f() { m.lock().unwrap(); r.read().expect(\"x\"); file.read(&mut b).unwrap(); }";
        let fs = flows(src);
        let pu: Vec<&str> = fs[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::PoisonUnwrap { lock, .. } => Some(lock.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(pu, vec!["lock", "read"]);
    }
}

//! D11 clean fixture: the map stays parallel, the fold is sequential —
//! either via the blessed ordered helpers or a closure-local
//! accumulator that never crosses items.

pub fn mean_cost(xs: &[f64]) -> f64 {
    let scored = par_map(xs, 2, |_, x| x * 1.5);
    ordered_mean(&scored)
}

pub fn per_chunk_fold(chunks: &[Vec<f64>]) -> Vec<f64> {
    par_map(chunks, 2, |_, c| {
        let mut acc = 0.0;
        for v in c {
            acc += v;
        }
        acc
    })
}

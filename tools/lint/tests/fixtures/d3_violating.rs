//! D3 fixture: unseeded randomness.
use rand::Rng;

pub fn noise() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>() + rand::random::<f64>()
}

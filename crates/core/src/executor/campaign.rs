//! The resumable campaign state machine.
//!
//! A [`Campaign`] owns everything one tuning run needs — target, source,
//! middleware, telemetry fan-out, virtual clock — and advances in
//! discrete **ticks**: stage a wave of trial requests, measure it,
//! absorb the results. [`Executor::run`](super::Executor::run) drives
//! the very same [`CampaignState`] in a loop, so a campaign advanced
//! tick-by-tick (e.g. multiplexed with thousands of others by
//! `autotune-serve`) produces byte-identical trial histories to a
//! standalone executor run.
//!
//! # The event log and the replay contract
//!
//! Every campaign appends to an append-only, serde-serializable event
//! log ([`CampaignEvent`]): the dispatched [`TrialRequest`]s, every raw
//! [`Measurement`] (keyed by `(trial, attempt)`), the finalized
//! [`TrialOutcome`]s, and the optimizer-side [`OptEvent`]s (with
//! `wall_ns` zeroed — real time never enters the log). Only the raw
//! measurements are *inputs*; everything else is deterministically
//! recomputable from the campaign seed and the determinism contract:
//!
//! * suggestions re-draw from `StdRng::seed_from_u64(seed)`,
//! * fault rolls are a pure function of `(trial, attempt, machine, time)`,
//! * middleware transforms replay identically over identical inputs.
//!
//! [`Campaign::snapshot`] therefore only persists `(seed, policy, log)`,
//! and [`Campaign::resume`] replays the log through a freshly built
//! campaign — re-running suggestion and middleware code live while
//! serving recorded measurements instead of touching the target — then
//! verifies the rebuilt log is byte-identical to the snapshot before
//! handing the campaign back, mid-flight state and all.

use super::event::{Measurement, TrialEvent, TrialOutcome, TrialRequest};
use super::policy::SchedulePolicy;
use super::source::{SourceStep, TrialSource};
use super::{apply_fault, measure_request, measure_wave, trial_seed, ExecReport, FanOut};
use crate::telemetry::{
    MetricsCollector, MetricsSnapshot, NullTimer, OptEvent, Subscriber, WallTimer,
};
use crate::{Middleware, NoiseStrategy, Objective, Target, Trial, TrialStatus, TrialStorage};
use autotune_sim::FailureKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Snapshot format version, bumped on incompatible log changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A dispatched trial awaiting measurement: the request plus the private
/// evaluation seed its measurement must draw from. Pure data — a worker
/// pool can measure items from many campaigns in any order or thread
/// without perturbing any campaign's history.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Trial id within its campaign (dispatch order).
    pub id: u64,
    /// What to run.
    pub req: TrialRequest,
    /// Seed of the trial's private measurement RNG stream.
    pub eval_seed: u64,
}

/// A measured trial waiting for its virtual finish time.
pub(crate) struct Scheduled {
    pub(crate) id: u64,
    pub(crate) req: TrialRequest,
    pub(crate) m: Measurement,
    pub(crate) finish: f64,
    pub(crate) retries: u32,
}

/// One record of a campaign's append-only event log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// A trial was dispatched (request as finalized by `before_dispatch`
    /// middleware).
    Suggested {
        /// Trial id.
        id: u64,
        /// The dispatched request.
        request: TrialRequest,
    },
    /// A raw measurement came back from the target — the only
    /// non-recomputable input in the log. `attempt` 0 is the first
    /// measurement; retries append their re-measurements.
    Measured {
        /// Trial id.
        id: u64,
        /// Attempt index (0 = first try).
        attempt: u32,
        /// The raw measurement, before fault injection and middleware.
        m: Measurement,
    },
    /// A trial was finalized and reported to the source.
    Outcome {
        /// The finalized outcome, after the middleware chain.
        outcome: TrialOutcome,
    },
    /// An optimizer-side lifecycle event (`wall_ns` zeroed: real time
    /// never enters the log).
    Opt {
        /// The event.
        event: OptEvent,
    },
}

/// A serializable point-in-time capture of a campaign: seed, policy and
/// the event log. Everything else — optimizer state, middleware state,
/// in-flight trials, metrics — is rebuilt by [`Campaign::resume`]'s
/// deterministic replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The campaign seed.
    pub seed: u64,
    /// The schedule policy.
    pub policy: SchedulePolicy,
    /// Ticks completed when the snapshot was taken (diagnostics).
    pub n_ticks: u64,
    /// Position of the target's temporal-drift clock at the snapshot
    /// point. Replay serves recorded measurements instead of evaluating,
    /// so resume fast-forwards the fresh target's clock here to keep the
    /// continuation on the original drift trajectory.
    #[serde(default)]
    pub target_clock: u64,
    /// The append-only event log up to the snapshot point.
    pub log: Vec<CampaignEvent>,
}

impl CampaignSnapshot {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a snapshot back from [`CampaignSnapshot::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Why a campaign operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The campaign was built with its event log disabled.
    LogDisabled,
    /// Snapshot requested while a staged wave is awaiting measurements.
    MidTick,
    /// [`Campaign::complete_wave`] got the wrong number of measurements.
    WaveSizeMismatch {
        /// Unmeasured staged items.
        expected: usize,
        /// Measurements supplied.
        got: usize,
    },
    /// The snapshot doesn't match the freshly built campaign (version,
    /// seed or policy).
    SnapshotMismatch {
        /// What differed.
        reason: String,
    },
    /// Resume was handed a campaign that has already run ticks.
    NotPristine,
    /// The snapshot log lacks a measurement the replay needs.
    MissingMeasurement {
        /// Trial id.
        id: u64,
        /// Attempt index.
        attempt: u32,
    },
    /// Replaying the log did not reproduce it byte-identically — the
    /// rebuilt campaign was constructed over a different target, source
    /// or middleware chain than the snapshotted one.
    ReplayDiverged {
        /// What diverged.
        reason: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::LogDisabled => write!(f, "campaign event log is disabled"),
            CampaignError::MidTick => {
                write!(f, "operation requires a tick boundary (wave staged)")
            }
            CampaignError::WaveSizeMismatch { expected, got } => {
                write!(f, "expected {expected} measurements, got {got}")
            }
            CampaignError::SnapshotMismatch { reason } => {
                write!(f, "snapshot mismatch: {reason}")
            }
            CampaignError::NotPristine => {
                write!(f, "resume requires a freshly built campaign")
            }
            CampaignError::MissingMeasurement { id, attempt } => {
                write!(
                    f,
                    "snapshot log lacks the measurement for trial {id} attempt {attempt}"
                )
            }
            CampaignError::ReplayDiverged { reason } => {
                write!(f, "replay diverged from snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// The mutable per-campaign loop state, extracted from what used to live
/// in `Executor::run`'s stack frame. [`super::Executor`] and [`Campaign`]
/// both drive it tick by tick, so the two paths cannot drift apart.
pub(crate) struct CampaignState {
    seed: u64,
    policy: SchedulePolicy,
    cost_is_elapsed: bool,
    suggest_rng: StdRng,
    clock: f64,
    machine_seconds: f64,
    n_trials: usize,
    n_aborted: usize,
    n_transient: usize,
    n_retried: usize,
    quarantined: BTreeSet<usize>,
    saved_s: f64,
    next_id: u64,
    in_flight: Vec<Scheduled>,
    exhausted: bool,
    done: bool,
    primed: bool,
    last_refits: usize,
    last_updates: usize,
    events: Vec<TrialEvent>,
    log: Option<Vec<CampaignEvent>>,
    replay: BTreeMap<(u64, u32), Measurement>,
    pub(crate) staged: Vec<(WorkItem, Option<Measurement>)>,
    n_ticks: u64,
}

/// The live measurement for the next unreplayed staged item.
fn next_live(live: &mut std::vec::IntoIter<Measurement>) -> Measurement {
    live.next().expect("one live measurement per staged item") // lint: allow(D5) merge_staged callers measure exactly `staged_live()`
}

impl CampaignState {
    pub(crate) fn new(
        seed: u64,
        policy: SchedulePolicy,
        cost_is_elapsed: bool,
        log_enabled: bool,
    ) -> Self {
        CampaignState {
            seed,
            policy,
            cost_is_elapsed,
            suggest_rng: StdRng::seed_from_u64(seed),
            clock: 0.0,
            machine_seconds: 0.0,
            n_trials: 0,
            n_aborted: 0,
            n_transient: 0,
            n_retried: 0,
            quarantined: BTreeSet::new(),
            saved_s: 0.0,
            next_id: 0,
            in_flight: Vec::new(),
            exhausted: false,
            done: false,
            primed: false,
            last_refits: 0,
            last_updates: 0,
            events: Vec::new(),
            log: log_enabled.then(Vec::new),
            replay: BTreeMap::new(),
            staged: Vec::new(),
            n_ticks: 0,
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    fn log_push(&mut self, f: impl FnOnce() -> CampaignEvent) {
        if let Some(log) = &mut self.log {
            log.push(f());
        }
    }

    fn emit_trial(&mut self, fan: &mut FanOut<'_>, at_s: f64, ev: TrialEvent) {
        fan.trial(at_s, &ev);
        self.events.push(ev);
    }

    /// Fans an optimizer-side event out and logs it with `wall_ns`
    /// zeroed, keeping the log independent of any injected real timer.
    fn emit_opt(&mut self, fan: &mut FanOut<'_>, ev: &OptEvent) {
        fan.opt(self.clock, ev);
        if self.log.is_some() {
            let mut e = *ev;
            match &mut e {
                OptEvent::SuggestEnd { wall_ns, .. } | OptEvent::ObserveEnd { wall_ns, .. } => {
                    *wall_ns = 0;
                }
                _ => {}
            }
            self.log_push(|| CampaignEvent::Opt { event: e });
        }
    }

    /// Announces increases of the source's cumulative refit/update
    /// counters, attributed to trial `id`.
    fn poll_model_counters(&mut self, source: &dyn TrialSource, fan: &mut FanOut<'_>, id: u64) {
        let refits = source.n_refits();
        if refits > self.last_refits {
            self.last_refits = refits;
            self.emit_opt(
                fan,
                &OptEvent::SurrogateRefit {
                    id,
                    n_refits: refits,
                },
            );
        }
        let updates = source.n_model_updates();
        if updates > self.last_updates {
            self.last_updates = updates;
            self.emit_opt(
                fan,
                &OptEvent::ModelUpdate {
                    id,
                    n_updates: updates,
                },
            );
        }
    }

    /// Admission: fills free slots from the source and stages the wave,
    /// serving any replayed measurements from the log. No-op when a wave
    /// is already staged or the campaign is done.
    pub(crate) fn stage(
        &mut self,
        source: &mut dyn TrialSource,
        middleware: &mut [Box<dyn Middleware + '_>],
        fan: &mut FanOut<'_>,
        timer: &mut dyn WallTimer,
    ) {
        if self.done || !self.staged.is_empty() {
            return;
        }
        if !self.primed {
            // Mirror the executor's pre-loop baseline read of the
            // source's cumulative counters.
            self.last_refits = source.n_refits();
            self.last_updates = source.n_model_updates();
            self.primed = true;
        }
        let capacity = self.policy.capacity();
        let mut wave: Vec<WorkItem> = Vec::new();
        while !self.exhausted && self.in_flight.len() + wave.len() < capacity {
            let prospective = self.next_id;
            self.emit_opt(fan, &OptEvent::SuggestBegin { id: prospective });
            let t0 = timer.now_ns();
            let step = source.next(&mut self.suggest_rng);
            let wall_ns = timer.now_ns().saturating_sub(t0);
            self.emit_opt(
                fan,
                &OptEvent::SuggestEnd {
                    id: prospective,
                    wall_ns,
                    dispatched: matches!(step, SourceStep::Dispatch(_)),
                },
            );
            self.poll_model_counters(&*source, fan, prospective);
            match step {
                SourceStep::Dispatch(mut req) => {
                    for mw in middleware.iter_mut() {
                        mw.before_dispatch(&mut req, &mut self.suggest_rng);
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    let ev = TrialEvent::Suggested {
                        id,
                        config: req.config.clone(),
                    };
                    self.emit_trial(fan, self.clock, ev);
                    self.log_push(|| CampaignEvent::Suggested {
                        id,
                        request: req.clone(),
                    });
                    wave.push(WorkItem {
                        id,
                        req,
                        eval_seed: trial_seed(self.seed, id),
                    });
                }
                SourceStep::Wait => break,
                SourceStep::Exhausted => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        for (config, rung) in source.take_promotions() {
            let ev = TrialEvent::Promoted { config, rung };
            self.emit_trial(fan, self.clock, ev);
        }
        self.staged = Vec::with_capacity(wave.len());
        for w in wave {
            let m = self.replay.remove(&(w.id, 0));
            self.staged.push((w, m));
        }
    }

    /// The staged items that still need a live measurement (in wave
    /// order); the rest were served from the replay queue.
    pub(crate) fn staged_live(&self) -> Vec<&WorkItem> {
        self.staged
            .iter()
            .filter(|(_, m)| m.is_none())
            .map(|(w, _)| w)
            .collect()
    }

    /// Latest drift-clock position among the staged wave's replayed
    /// measurements (0 when none carry a stamp). Measurements within a
    /// wave run in wave order, so the max is the clock after the last
    /// replayed one — where live measurement of the rest must begin.
    pub(crate) fn staged_replayed_clock(&self) -> u64 {
        self.staged
            .iter()
            .filter_map(|(_, m)| m.as_ref().map(|m| m.clock))
            .max()
            .unwrap_or(0)
    }

    /// Pairs the staged wave with its measurements: replayed ones from
    /// the stage step, live ones from `live` in wave order.
    pub(crate) fn merge_staged(&mut self, live: Vec<Measurement>) -> Vec<(WorkItem, Measurement)> {
        let staged = std::mem::take(&mut self.staged);
        let mut live = live.into_iter();
        staged
            .into_iter()
            .map(|(w, m)| {
                let m = m.unwrap_or_else(|| next_live(&mut live));
                (w, m)
            })
            .collect()
    }

    /// The back half of one tick: absorb the measured wave (fault rolls,
    /// middleware, retries), advance the virtual clock to the next
    /// completion, finalize completed trials and report them to the
    /// source. Sets `done` when the campaign has drained.
    #[allow(clippy::too_many_arguments)] // the executor's collaborators, threaded explicitly
    pub(crate) fn finish_tick(
        &mut self,
        target: &Target,
        noise: &NoiseStrategy,
        source: &mut dyn TrialSource,
        middleware: &mut [Box<dyn Middleware + '_>],
        fan: &mut FanOut<'_>,
        timer: &mut dyn WallTimer,
        storage: &mut TrialStorage,
        merged: Vec<(WorkItem, Measurement)>,
    ) {
        if self.done {
            return;
        }
        self.n_ticks += 1;
        let barrier = self.policy.barrier();

        // Measurement absorption: per trial, log the raw measurement,
        // inject any planned fault, run censoring middleware, and loop on
        // retries — a retry re-measures with a fresh per-attempt seed and
        // a fresh fault roll, charging the failed attempt plus backoff to
        // the trial's elapsed time.
        for (p, m) in merged {
            self.log_push(|| CampaignEvent::Measured {
                id: p.id,
                attempt: 0,
                m: m.clone(),
            });
            let ev = TrialEvent::Started {
                id: p.id,
                at_s: self.clock,
                machine_id: m.machine_id.or(p.req.machine_id),
            };
            self.emit_trial(fan, self.clock, ev);
            let mut m = m;
            let mut attempt: u32 = 0;
            let mut carried_s = 0.0_f64;
            loop {
                if m.fault.is_none() {
                    // ConfigCrash already set by the target; otherwise
                    // roll this attempt's infrastructure fate.
                    if let Some(plan) = target.faults() {
                        let machine = m.machine_id.or(p.req.machine_id);
                        if let Some(f) = plan.roll(p.id, attempt, machine, self.clock + carried_s) {
                            apply_fault(&f, &mut m, self.cost_is_elapsed);
                        }
                    }
                }
                for mw in middleware.iter_mut() {
                    mw.after_measure(&mut m, self.cost_is_elapsed);
                }
                let backoff = middleware
                    .iter_mut()
                    .find_map(|mw| mw.retry_after(&m, attempt));
                match backoff {
                    Some(backoff_s) => {
                        carried_s += m.elapsed_s + backoff_s;
                        attempt += 1;
                        let ev = TrialEvent::Retried {
                            id: p.id,
                            attempt,
                            backoff_s,
                            at_s: self.clock + carried_s,
                        };
                        self.emit_trial(fan, self.clock + carried_s, ev);
                        m = match self.replay.remove(&(p.id, attempt)) {
                            Some(m) => {
                                // A replayed re-measurement advanced the
                                // original target's drift clock; keep the
                                // fresh target in step so any *live*
                                // measurement later in this replay starts
                                // from the recorded trajectory.
                                if m.clock > target.noise_clock() {
                                    target.set_noise_clock(m.clock);
                                }
                                m
                            }
                            None => measure_request(
                                target,
                                noise,
                                &p.req,
                                trial_seed(p.eval_seed, u64::from(attempt)),
                            ),
                        };
                        self.log_push(|| CampaignEvent::Measured {
                            id: p.id,
                            attempt,
                            m: m.clone(),
                        });
                    }
                    None => break,
                }
            }
            m.elapsed_s += carried_s;
            self.in_flight.push(Scheduled {
                id: p.id,
                req: p.req,
                finish: self.clock + m.elapsed_s,
                retries: attempt,
                m,
            });
        }

        if self.in_flight.is_empty() {
            // Exhausted and drained — or a source that waits with
            // nothing in flight, which would never unblock.
            self.done = true;
            fan.end(self.clock);
            return;
        }

        // Completion: a full wave under a batch barrier, else the
        // earliest virtual finisher (ties go to dispatch order).
        let completed: Vec<Scheduled> = if barrier {
            let batch_max = self
                .in_flight
                .iter()
                .map(|s| s.m.elapsed_s)
                .fold(0.0_f64, f64::max);
            self.clock += batch_max;
            std::mem::take(&mut self.in_flight)
        } else {
            let i = self
                .in_flight
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.finish.total_cmp(&b.finish))
                .map(|(i, _)| i)
                .expect("in_flight nonempty"); // lint: allow(D5) emptiness handled above
            let s = self.in_flight.remove(i);
            self.clock = self.clock.max(s.finish);
            vec![s]
        };

        for s in completed {
            let status = if s.m.aborted {
                TrialStatus::Aborted
            } else if s.m.cost.is_nan() && s.m.fault.is_some_and(|f| f.is_transient()) {
                TrialStatus::TransientFailure
            } else if !s.m.cost.is_finite() {
                TrialStatus::Crashed
            } else {
                TrialStatus::Complete
            };
            let mut outcome = TrialOutcome {
                id: s.id,
                config: s.req.config,
                cost: s.m.cost,
                learn_cost: s.m.cost,
                elapsed_s: s.m.elapsed_s,
                fidelity: s.req.fidelity,
                machine_id: s.m.machine_id,
                status,
                retries: s.retries,
                fault: s.m.fault,
                telemetry: s.m.telemetry,
            };
            for mw in middleware.iter_mut() {
                mw.on_outcome(&mut outcome);
            }
            self.log_push(|| CampaignEvent::Outcome {
                outcome: outcome.clone(),
            });
            self.emit_opt(fan, &OptEvent::ObserveBegin { id: outcome.id });
            let t0 = timer.now_ns();
            source.report(&outcome);
            let wall_ns = timer.now_ns().saturating_sub(t0);
            self.emit_opt(
                fan,
                &OptEvent::ObserveEnd {
                    id: outcome.id,
                    wall_ns,
                },
            );
            self.poll_model_counters(&*source, fan, outcome.id);
            self.machine_seconds += outcome.elapsed_s;
            self.n_trials += 1;
            self.n_retried += s.retries as usize;
            self.saved_s += s.m.saved_s;
            let ev = match status {
                TrialStatus::Crashed => TrialEvent::Crashed {
                    id: outcome.id,
                    elapsed_s: outcome.elapsed_s,
                },
                TrialStatus::Aborted => {
                    self.n_aborted += 1;
                    TrialEvent::Aborted {
                        id: outcome.id,
                        cost: outcome.cost,
                        elapsed_s: outcome.elapsed_s,
                    }
                }
                TrialStatus::TransientFailure => {
                    self.n_transient += 1;
                    TrialEvent::FailedTransient {
                        id: outcome.id,
                        kind: outcome.fault.unwrap_or(FailureKind::Transient),
                        elapsed_s: outcome.elapsed_s,
                    }
                }
                TrialStatus::Complete => TrialEvent::Finished {
                    id: outcome.id,
                    cost: outcome.cost,
                    elapsed_s: outcome.elapsed_s,
                },
            };
            self.emit_trial(fan, self.clock, ev);
            fan.outcome(self.clock, &outcome);
            let mut trial = match status {
                TrialStatus::Aborted => {
                    Trial::aborted(outcome.config, outcome.cost, outcome.elapsed_s)
                }
                TrialStatus::TransientFailure => {
                    Trial::transient_failure(outcome.config, outcome.elapsed_s)
                }
                TrialStatus::Crashed => {
                    let mut t = Trial::crashed(outcome.config, outcome.elapsed_s);
                    t.cost = outcome.cost; // preserve ±inf vs NaN
                    t
                }
                TrialStatus::Complete => {
                    Trial::complete(outcome.config, outcome.cost, outcome.elapsed_s)
                }
            }
            .at_fidelity(outcome.fidelity)
            .with_retries(outcome.retries);
            if let Some(m) = outcome.machine_id {
                trial = trial.on_machine(m);
            }
            storage.record(trial);
        }

        // Drain middleware lifecycle events (quarantines, releases).
        for mw in middleware.iter_mut() {
            for ev in mw.take_events() {
                if let TrialEvent::Quarantined { machine_id } = ev {
                    self.quarantined.insert(machine_id);
                }
                self.emit_trial(fan, self.clock, ev);
            }
        }
    }

    fn report_fields(&self, metrics: MetricsSnapshot, events: Vec<TrialEvent>) -> ExecReport {
        ExecReport {
            events,
            wall_clock_s: self.clock,
            machine_seconds: self.machine_seconds,
            n_trials: self.n_trials,
            n_aborted: self.n_aborted,
            n_transient: self.n_transient,
            n_retried: self.n_retried,
            n_quarantined_machines: self.quarantined.len(),
            saved_s: self.saved_s,
            metrics,
        }
    }

    /// Builds a report, cloning the event stream.
    pub(crate) fn report(&self, metrics: MetricsSnapshot) -> ExecReport {
        self.report_fields(metrics, self.events.clone())
    }

    /// Builds a report, consuming the state.
    pub(crate) fn into_report(mut self, metrics: MetricsSnapshot) -> ExecReport {
        let events = std::mem::take(&mut self.events);
        self.report_fields(metrics, events)
    }
}

/// An owned, resumable tuning campaign.
///
/// Unlike [`super::Executor`] (which borrows its target and is driven in
/// one blocking `run` call), a `Campaign` owns its whole world behind an
/// [`Arc<Target>`] and advances in discrete ticks, so thousands can be
/// interleaved by a scheduler. With `'static` collaborators (an owned
/// source, owned middleware) the campaign itself is `'static` and can be
/// parked in a registry indefinitely.
///
/// ```
/// use autotune::executor::{Campaign, OptimizerSource, SchedulePolicy};
/// use autotune::{Objective, Target};
/// use autotune_optimizer::RandomSearch;
/// use autotune_sim::{Environment, RedisSim, Workload};
///
/// let target = Target::simulated(
///     Box::new(RedisSim::new()),
///     Workload::kv_cache(10_000.0),
///     Environment::medium(),
///     Objective::MinimizeLatencyP95,
/// );
/// let mut opt = RandomSearch::new(target.space().clone());
/// let mut campaign = Campaign::new(
///     target,
///     Box::new(OptimizerSource::new(&mut opt, 8)),
///     SchedulePolicy::AsyncSlots { k: 4 },
///     1,
/// );
/// let report = campaign.run();
/// assert_eq!(report.n_trials, 8);
/// let snapshot = campaign.snapshot().expect("log is on by default");
/// assert!(!snapshot.log.is_empty());
/// ```
pub struct Campaign<'a> {
    target: Arc<Target>,
    noise_strategy: NoiseStrategy,
    source: Box<dyn TrialSource + 'a>,
    middleware: Vec<Box<dyn Middleware + 'a>>,
    fan: FanOut<'a>,
    timer: Box<dyn WallTimer + 'a>,
    storage: TrialStorage,
    state: CampaignState,
}

impl<'a> Campaign<'a> {
    /// A campaign over `target` drawing trials from `source` under the
    /// given scheduling policy and campaign seed. The event log is
    /// enabled by default ([`Campaign::with_event_log`] turns it off for
    /// fleets that never snapshot).
    pub fn new(
        target: impl Into<Arc<Target>>,
        source: Box<dyn TrialSource + 'a>,
        policy: SchedulePolicy,
        seed: u64,
    ) -> Self {
        let target = target.into();
        let cost_is_elapsed = matches!(target.objective(), Objective::MinimizeElapsed);
        Campaign {
            target,
            noise_strategy: NoiseStrategy::Single,
            source,
            middleware: Vec::new(),
            fan: FanOut {
                collector: MetricsCollector::new(),
                subs: Vec::new(),
            },
            timer: Box::new(NullTimer),
            storage: TrialStorage::new(),
            state: CampaignState::new(seed, policy, cost_is_elapsed, true),
        }
    }

    /// Sets the measurement policy per trial (default: one raw run).
    pub fn with_noise_strategy(mut self, strategy: NoiseStrategy) -> Self {
        self.noise_strategy = strategy;
        self
    }

    /// Appends a middleware to the chain (applied in insertion order).
    pub fn with_middleware(mut self, mw: Box<dyn Middleware + 'a>) -> Self {
        self.middleware.push(mw);
        self
    }

    /// Attaches a telemetry subscriber (pure observer; see
    /// [`super::Executor::with_subscriber`]).
    pub fn with_subscriber(mut self, sub: Box<dyn Subscriber + 'a>) -> Self {
        self.fan.subs.push(sub);
        self
    }

    /// Injects a real-time source for optimizer overhead attribution
    /// (default: [`NullTimer`]). Readings flow only into subscriber-side
    /// metrics — the event log records them as 0.
    pub fn with_timer(mut self, timer: Box<dyn WallTimer + 'a>) -> Self {
        self.timer = timer;
        self
    }

    /// Enables or disables the append-only event log (default: on).
    /// Snapshots require it; a fleet that never snapshots can turn it
    /// off to drop the bookkeeping.
    pub fn with_event_log(mut self, enabled: bool) -> Self {
        self.state.log = enabled.then(Vec::new);
        self
    }

    /// The target under tuning.
    pub fn target(&self) -> &Arc<Target> {
        &self.target
    }

    /// The per-trial measurement policy.
    pub fn noise_strategy(&self) -> &NoiseStrategy {
        &self.noise_strategy
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.state.seed
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.state.policy
    }

    /// Whether the campaign has drained.
    pub fn is_done(&self) -> bool {
        self.state.done
    }

    /// Ticks completed so far.
    pub fn n_ticks(&self) -> u64 {
        self.state.n_ticks
    }

    /// The trial history so far.
    pub fn storage(&self) -> &TrialStorage {
        &self.storage
    }

    /// Consumes the campaign, returning its trial history.
    pub fn into_storage(self) -> TrialStorage {
        self.storage
    }

    /// The rolled-up telemetry so far (`wall_clock_s` is final once the
    /// campaign is done).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.fan.collector.snapshot()
    }

    /// The event log, when enabled.
    pub fn log(&self) -> Option<&[CampaignEvent]> {
        self.state.log.as_deref()
    }

    fn log_len(&self) -> usize {
        self.state.log.as_ref().map_or(0, Vec::len)
    }

    /// Accounting report of the campaign so far (clones the event
    /// stream; final once [`Campaign::is_done`]).
    pub fn report(&self) -> ExecReport {
        self.state.report(self.fan.collector.snapshot())
    }

    /// Stages the next wave and returns the items needing a **live**
    /// measurement (replayed items are filled internally). The caller
    /// measures them — in any order, on any thread, via
    /// [`measure_request`](super::measure_request) with each item's
    /// `eval_seed` — and hands the results back to
    /// [`Campaign::complete_wave`] in the returned order. Idempotent
    /// until the wave completes; empty when the campaign is done or the
    /// tick needs no live measurement.
    pub fn ready_wave(&mut self) -> Vec<WorkItem> {
        self.stage_synced();
        self.state.staged_live().into_iter().cloned().collect()
    }

    /// Stages the next wave and fast-forwards the target's drift clock
    /// past any measurements served from the replay queue, so a
    /// partially replayed wave's remaining items measure live from the
    /// recorded trajectory. A no-op outside replay (the queue is empty
    /// and stamped clocks never run ahead of a live target's).
    fn stage_synced(&mut self) {
        self.state.stage(
            self.source.as_mut(),
            &mut self.middleware,
            &mut self.fan,
            self.timer.as_mut(),
        );
        let replayed = self.state.staged_replayed_clock();
        if replayed > self.target.noise_clock() {
            self.target.set_noise_clock(replayed);
        }
    }

    /// Completes the staged wave with the live measurements for
    /// [`Campaign::ready_wave`]'s items, in that order. Returns whether
    /// the campaign is done.
    pub fn complete_wave(&mut self, live: Vec<Measurement>) -> Result<bool, CampaignError> {
        let expected = self.state.staged_live().len();
        if live.len() != expected {
            return Err(CampaignError::WaveSizeMismatch {
                expected,
                got: live.len(),
            });
        }
        self.apply_wave(live);
        Ok(self.state.done)
    }

    fn apply_wave(&mut self, live: Vec<Measurement>) {
        let merged = self.state.merge_staged(live);
        self.state.finish_tick(
            &self.target,
            &self.noise_strategy,
            self.source.as_mut(),
            &mut self.middleware,
            &mut self.fan,
            self.timer.as_mut(),
            &mut self.storage,
            merged,
        );
    }

    /// Advances one tick inline (stage, measure, absorb), measuring the
    /// wave on scoped worker threads exactly like [`super::Executor`].
    /// Returns whether the campaign is done.
    pub fn tick(&mut self) -> bool {
        if self.state.done {
            return true;
        }
        self.stage_synced();
        let live = measure_wave(
            &self.target,
            &self.noise_strategy,
            &self.state.staged_live(),
        );
        self.apply_wave(live);
        self.state.done
    }

    /// Drives the campaign to exhaustion and reports. Byte-identical to
    /// [`super::Executor::run`] over the same collaborators and seed.
    pub fn run(&mut self) -> ExecReport {
        while !self.tick() {}
        self.report()
    }

    /// Captures the campaign as `(seed, policy, event log)`. Requires
    /// the event log and a tick boundary (no wave staged via
    /// [`Campaign::ready_wave`] awaiting completion).
    pub fn snapshot(&self) -> Result<CampaignSnapshot, CampaignError> {
        let log = self.state.log.as_ref().ok_or(CampaignError::LogDisabled)?;
        if !self.state.staged.is_empty() {
            return Err(CampaignError::MidTick);
        }
        Ok(CampaignSnapshot {
            version: SNAPSHOT_VERSION,
            seed: self.state.seed,
            policy: self.state.policy,
            n_ticks: self.state.n_ticks,
            target_clock: self.target.noise_clock(),
            log: log.clone(),
        })
    }

    /// Rebuilds a snapshotted campaign into `fresh` — a pristine campaign
    /// constructed over the *same* target, source, middleware and seed as
    /// the original — by replaying the snapshot's event log: suggestions,
    /// fault rolls and middleware transforms are recomputed live under
    /// the determinism contract while recorded measurements substitute
    /// for the target. The rebuilt log is verified byte-identical to the
    /// snapshot before the campaign is handed back; continuing it then
    /// produces exactly what the original campaign would have produced.
    /// Shared front half of [`Campaign::resume`] and
    /// [`Campaign::resume_prefix`]: header compatibility checks plus
    /// loading the snapshot's recorded measurements into the replay
    /// queue.
    fn prepare_replay(&mut self, snapshot: &CampaignSnapshot) -> Result<(), CampaignError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(CampaignError::SnapshotMismatch {
                reason: format!(
                    "snapshot version {} != supported {}",
                    snapshot.version, SNAPSHOT_VERSION
                ),
            });
        }
        if self.state.policy != snapshot.policy {
            return Err(CampaignError::SnapshotMismatch {
                reason: format!(
                    "policy {} != snapshot {}",
                    self.state.policy.label(),
                    snapshot.policy.label()
                ),
            });
        }
        if self.state.seed != snapshot.seed {
            return Err(CampaignError::SnapshotMismatch {
                reason: format!("seed {} != snapshot {}", self.state.seed, snapshot.seed),
            });
        }
        if self.state.n_ticks != 0 || self.state.next_id != 0 {
            return Err(CampaignError::NotPristine);
        }
        if self.state.log.is_none() {
            return Err(CampaignError::LogDisabled);
        }
        for ev in &snapshot.log {
            if let CampaignEvent::Measured { id, attempt, m } = ev {
                self.state.replay.insert((*id, *attempt), m.clone());
            }
        }
        Ok(())
    }

    pub fn resume(
        snapshot: &CampaignSnapshot,
        fresh: Campaign<'a>,
    ) -> Result<Campaign<'a>, CampaignError> {
        let mut c = fresh;
        c.prepare_replay(snapshot)?;
        // Drive whole ticks until the rebuilt log catches up with the
        // snapshot. Snapshots are taken at tick boundaries, so a healthy
        // replay lands exactly on the snapshot length and never needs a
        // live measurement.
        let target_len = snapshot.log.len();
        while c.log_len() < target_len && !c.state.done {
            let before = c.log_len();
            let wave = c.ready_wave();
            if let Some(w) = wave.first() {
                return Err(CampaignError::MissingMeasurement {
                    id: w.id,
                    attempt: 0,
                });
            }
            c.complete_wave(Vec::new())?;
            if c.log_len() == before && !c.state.done {
                return Err(CampaignError::ReplayDiverged {
                    reason: "replay stalled without appending events".into(),
                });
            }
        }
        if !c.state.replay.is_empty() {
            return Err(CampaignError::ReplayDiverged {
                reason: format!(
                    "{} recorded measurements were never consumed",
                    c.state.replay.len()
                ),
            });
        }
        if c.log_len() != target_len {
            return Err(CampaignError::ReplayDiverged {
                reason: format!(
                    "rebuilt log has {} events, snapshot has {target_len}",
                    c.log_len()
                ),
            });
        }
        let rebuilt = serde_json::to_string(&c.state.log).unwrap_or_default();
        let original = serde_json::to_string(&Some(snapshot.log.clone())).unwrap_or_default();
        if rebuilt != original {
            return Err(CampaignError::ReplayDiverged {
                reason: "replayed log differs from the snapshot (different target, source \
                         or middleware than the original campaign)"
                    .into(),
            });
        }
        // Replay served recorded measurements without evaluating, so the
        // fresh target's drift clock lags the original's; fast-forward it
        // so the continuation sees the same drift trajectory.
        c.target.set_noise_clock(snapshot.target_clock);
        Ok(c)
    }

    /// Rebuilds as much of a snapshotted campaign as its (possibly
    /// torn) event log supports. Where [`Campaign::resume`] demands a
    /// complete tick-boundary log and fails on any shortfall,
    /// `resume_prefix` replays the longest replayable prefix and hands
    /// back a *live* campaign:
    ///
    /// * a log cut at a tick boundary resumes exactly like `resume`;
    /// * a log cut mid-tick (e.g. a write-ahead log whose tail was
    ///   truncated after a crash) replays every complete tick, stages
    ///   the partial tick's wave, serves whatever measurements the log
    ///   still holds, and returns with the remaining items awaiting
    ///   live measurement through the normal
    ///   [`ready_wave`](Campaign::ready_wave)/[`complete_wave`](Campaign::complete_wave)
    ///   cycle — the stamped [`Measurement::clock`] values keep the
    ///   target's drift trajectory aligned so the continuation is
    ///   byte-identical to a run that never crashed;
    /// * a log cut between a tick's last measurement and its outcomes
    ///   recomputes the missing suffix deterministically (the rebuilt
    ///   log then *extends* the snapshot's — callers persisting the log
    ///   should re-sync from [`Campaign::log`]).
    ///
    /// Every event the snapshot does carry is verified byte-identical
    /// against the rebuilt log; divergence still fails, exactly as in
    /// `resume`. Returns the campaign and a [`ResumeReport`].
    pub fn resume_prefix(
        snapshot: &CampaignSnapshot,
        fresh: Campaign<'a>,
    ) -> Result<(Campaign<'a>, ResumeReport), CampaignError> {
        let mut c = fresh;
        c.prepare_replay(snapshot)?;
        let target_len = snapshot.log.len();
        let mut mid_tick = false;
        while c.log_len() < target_len && !c.state.done {
            let before = c.log_len();
            let wave = c.ready_wave();
            if !wave.is_empty() {
                // The log ran out inside this tick: its wave needs live
                // measurements the snapshot never recorded. Stop here
                // and leave the wave staged for the caller.
                mid_tick = true;
                break;
            }
            c.complete_wave(Vec::new())?;
            if c.log_len() == before && !c.state.done {
                return Err(CampaignError::ReplayDiverged {
                    reason: "replay stalled without appending events".into(),
                });
            }
        }
        // Verify the rebuilt log against the snapshot over their common
        // prefix. The rebuilt side may be shorter (stopped mid-tick) or
        // longer (a cut between measurements and outcomes recomputed the
        // tick's tail); either way every event both sides hold must
        // agree byte-for-byte.
        let rebuilt_len = c.log_len();
        let matched = rebuilt_len.min(target_len);
        if let Some(log) = &c.state.log {
            for (i, (got, want)) in log.iter().zip(&snapshot.log).enumerate() {
                let got = serde_json::to_string(got).unwrap_or_default();
                let want = serde_json::to_string(want).unwrap_or_default();
                if got != want {
                    return Err(CampaignError::ReplayDiverged {
                        reason: format!(
                            "event {i} differs from the snapshot (different target, source \
                             or middleware than the original campaign)"
                        ),
                    });
                }
            }
        }
        if !mid_tick && !c.state.replay.is_empty() {
            // Leftover measurements are only legitimate mid-tick (they
            // belong to the staged wave's retries and will be consumed
            // as the caller completes it).
            return Err(CampaignError::ReplayDiverged {
                reason: format!(
                    "{} recorded measurements were never consumed",
                    c.state.replay.len()
                ),
            });
        }
        if !mid_tick && rebuilt_len < target_len {
            // The campaign drained before reproducing the whole log: the
            // snapshot describes more history than this construction can
            // generate (e.g. a larger budget than the fresh build's).
            return Err(CampaignError::ReplayDiverged {
                reason: format!(
                    "campaign drained after {rebuilt_events} events but the snapshot \
                     holds {target_len}",
                    rebuilt_events = rebuilt_len
                ),
            });
        }
        // The per-measurement clock stamps already fast-forwarded the
        // drift clock through everything replayed; the snapshot's
        // boundary clock only ever adds information for legacy logs
        // without stamps.
        if snapshot.target_clock > c.target.noise_clock() {
            c.target.set_noise_clock(snapshot.target_clock);
        }
        Ok((
            c,
            ResumeReport {
                snapshot_events: target_len,
                rebuilt_events: rebuilt_len,
                matched_events: matched,
                mid_tick,
            },
        ))
    }
}

/// What [`Campaign::resume_prefix`] managed to rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeReport {
    /// Events the snapshot log carried.
    pub snapshot_events: usize,
    /// Events in the rebuilt log when replay stopped (may exceed
    /// `snapshot_events` when a cut tick's tail was recomputed).
    pub rebuilt_events: usize,
    /// Events verified byte-identical between the two logs.
    pub matched_events: usize,
    /// Whether the campaign resumed with a staged wave awaiting live
    /// measurement (the log was cut inside a tick).
    pub mid_tick: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{EarlyAbortMw, Executor, OptimizerSource, OwnedOptimizerSource, RetryMw};
    use crate::test_fixtures::redis_target;
    use autotune_optimizer::RandomSearch;

    fn campaign_for(policy: SchedulePolicy, budget: usize, seed: u64) -> Campaign<'static> {
        let target = redis_target();
        let opt = RandomSearch::new(target.space().clone());
        Campaign::new(
            target,
            Box::new(OwnedOptimizerSource::new(Box::new(opt), budget)),
            policy,
            seed,
        )
    }

    fn exec_run(policy: SchedulePolicy, budget: usize, seed: u64) -> (String, ExecReport) {
        let target = redis_target();
        let mut opt = RandomSearch::new(target.space().clone());
        let mut source = OptimizerSource::new(&mut opt, budget);
        let mut storage = TrialStorage::new();
        let report = Executor::new(&target, policy).run(&mut source, &mut storage, seed);
        (storage.to_json(), report)
    }

    #[test]
    fn campaign_run_matches_executor_byte_for_byte() {
        for policy in [
            SchedulePolicy::Sequential,
            SchedulePolicy::SyncBatch { k: 3 },
            SchedulePolicy::AsyncSlots { k: 3 },
        ] {
            let (exec_json, exec_report) = exec_run(policy, 14, 33);
            let mut campaign = campaign_for(policy, 14, 33);
            let report = campaign.run();
            assert_eq!(campaign.storage().to_json(), exec_json, "{policy:?}");
            assert_eq!(
                report.wall_clock_s.to_bits(),
                exec_report.wall_clock_s.to_bits()
            );
            assert_eq!(report.n_trials, exec_report.n_trials);
        }
    }

    #[test]
    fn wave_api_matches_inline_ticks() {
        // Driving via ready_wave/complete_wave (what a registry does)
        // must equal the inline tick path byte for byte.
        let mut inline = campaign_for(SchedulePolicy::AsyncSlots { k: 2 }, 10, 9);
        let inline_report = inline.run();
        let mut waved = campaign_for(SchedulePolicy::AsyncSlots { k: 2 }, 10, 9);
        loop {
            let wave = waved.ready_wave();
            let live: Vec<Measurement> = wave
                .iter()
                .map(|w| {
                    measure_request(waved.target(), waved.noise_strategy(), &w.req, w.eval_seed)
                })
                .collect();
            if waved.complete_wave(live).expect("sizes match") {
                break;
            }
        }
        assert_eq!(inline.storage().to_json(), waved.storage().to_json());
        assert_eq!(
            inline_report.wall_clock_s.to_bits(),
            waved.report().wall_clock_s.to_bits()
        );
    }

    #[test]
    fn snapshot_resume_mid_campaign_is_byte_identical() {
        let mut straight = campaign_for(SchedulePolicy::AsyncSlots { k: 2 }, 12, 5);
        straight.run();

        let mut half = campaign_for(SchedulePolicy::AsyncSlots { k: 2 }, 12, 5);
        for _ in 0..5 {
            half.tick();
        }
        let snap = half.snapshot().expect("log enabled");
        let json = snap.to_json();
        let parsed = CampaignSnapshot::from_json(&json).expect("round-trips");

        let fresh = campaign_for(SchedulePolicy::AsyncSlots { k: 2 }, 12, 5);
        let mut resumed = Campaign::resume(&parsed, fresh).expect("replay succeeds");
        assert_eq!(resumed.n_ticks(), half.n_ticks());
        assert_eq!(resumed.storage().to_json(), half.storage().to_json());
        resumed.run();
        assert_eq!(resumed.storage().to_json(), straight.storage().to_json());
        assert_eq!(
            resumed.report().wall_clock_s.to_bits(),
            straight.report().wall_clock_s.to_bits()
        );
    }

    #[test]
    fn resume_prefix_recovers_any_truncation_point() {
        let mut straight = campaign_for(SchedulePolicy::AsyncSlots { k: 2 }, 12, 7);
        straight.run();
        let full = straight.snapshot().expect("log enabled");
        // A log torn at any event boundary: the prefix replays, the
        // partially-covered wave finishes live on the recorded drift
        // trajectory, and the continuation is byte-identical.
        for cut in 0..=full.log.len() {
            let mut torn = full.clone();
            torn.log.truncate(cut);
            torn.target_clock = 0; // stamps on replayed measurements carry the clock
            let fresh = campaign_for(SchedulePolicy::AsyncSlots { k: 2 }, 12, 7);
            let (mut resumed, report) =
                Campaign::resume_prefix(&torn, fresh).expect("prefix replays");
            assert_eq!(report.snapshot_events, cut);
            assert!(report.matched_events <= cut);
            resumed.run();
            assert_eq!(
                resumed.storage().to_json(),
                straight.storage().to_json(),
                "cut at {cut}"
            );
            assert_eq!(
                resumed.report().wall_clock_s.to_bits(),
                straight.report().wall_clock_s.to_bits(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn resume_prefix_rejects_foreign_history() {
        let mut a = campaign_for(SchedulePolicy::Sequential, 8, 3);
        a.run();
        let mut snap = a.snapshot().expect("log enabled");
        // Graft one event from a different campaign's history into the
        // log: replay must notice the divergence, not absorb it.
        let mut b = campaign_for(SchedulePolicy::Sequential, 8, 4);
        b.run();
        let foreign = b.snapshot().expect("log enabled");
        snap.log[2] = foreign.log[2].clone();
        snap.seed = 3; // keep the header valid; only the body lies
        let fresh = campaign_for(SchedulePolicy::Sequential, 8, 3);
        assert!(matches!(
            Campaign::resume_prefix(&snap, fresh),
            Err(CampaignError::ReplayDiverged { .. })
        ));
    }

    #[test]
    fn resume_rejects_mismatched_campaigns() {
        let mut c = campaign_for(SchedulePolicy::Sequential, 6, 1);
        c.run();
        let snap = c.snapshot().expect("log enabled");

        let wrong_seed = campaign_for(SchedulePolicy::Sequential, 6, 2);
        assert!(matches!(
            Campaign::resume(&snap, wrong_seed),
            Err(CampaignError::SnapshotMismatch { .. })
        ));
        let wrong_policy = campaign_for(SchedulePolicy::SyncBatch { k: 2 }, 6, 1);
        assert!(matches!(
            Campaign::resume(&snap, wrong_policy),
            Err(CampaignError::SnapshotMismatch { .. })
        ));
        let mut stale = campaign_for(SchedulePolicy::Sequential, 6, 1);
        stale.tick();
        assert!(matches!(
            Campaign::resume(&snap, stale),
            Err(CampaignError::NotPristine)
        ));
    }

    #[test]
    fn resume_detects_divergent_construction() {
        // Resuming over a different budget changes the suggestion
        // stream's exhaustion point — the rebuilt log must not silently
        // pass verification.
        let mut c = campaign_for(SchedulePolicy::Sequential, 8, 3);
        c.run();
        let snap = c.snapshot().expect("log enabled");
        let shorter = campaign_for(SchedulePolicy::Sequential, 4, 3);
        assert!(Campaign::resume(&snap, shorter).is_err());
    }

    #[test]
    fn event_log_survives_faults_and_retries() {
        use autotune_sim::{CloudNoise, FaultPlan, NoiseConfig};
        let build = || {
            let target = redis_target()
                .with_noise(CloudNoise::new_fleet(4, NoiseConfig::default(), 5))
                .with_faults(FaultPlan::aggressive(5));
            let opt = RandomSearch::new(target.space().clone());
            Campaign::new(
                target,
                Box::new(OwnedOptimizerSource::new(Box::new(opt), 16)),
                SchedulePolicy::Sequential,
                5,
            )
            .with_middleware(Box::new(RetryMw::new(3, 5.0)))
            .with_middleware(Box::new(EarlyAbortMw::new(1.3)))
        };
        let mut straight = build();
        let report = straight.run();
        assert!(report.n_retried > 0, "aggressive plan should retry");
        // Retry re-measurements land in the log with attempt > 0.
        assert!(straight
            .log()
            .expect("enabled")
            .iter()
            .any(|e| matches!(e, CampaignEvent::Measured { attempt, .. } if *attempt > 0)));

        let mut half = build();
        for _ in 0..7 {
            half.tick();
        }
        let snap = half.snapshot().expect("log enabled");
        let mut resumed = Campaign::resume(&snap, build()).expect("replay succeeds");
        resumed.run();
        assert_eq!(resumed.storage().to_json(), straight.storage().to_json());
    }
}

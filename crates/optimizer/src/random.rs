//! Random search (tutorial slide 30): fixed trial budget, configurations
//! sampled independently from the space's priors.
//!
//! The baseline every model-guided method must beat — and, thanks to
//! priors and special-value biasing in [`autotune_space`], a surprisingly
//! strong one in high dimensions.

use crate::{BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use rand::RngCore;

/// Independent random sampling from the configuration space.
#[derive(Debug)]
pub struct RandomSearch {
    space: Space,
    tracker: BestTracker,
}

impl RandomSearch {
    /// Creates a random-search optimizer over `space`.
    pub fn new(space: Space) -> Self {
        RandomSearch {
            space,
            tracker: BestTracker::default(),
        }
    }
}

impl Optimizer for RandomSearch {
    fn suggest(&mut self, mut rng: &mut dyn RngCore) -> Config {
        self.space.sample(&mut rng)
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        "random"
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};

    #[test]
    fn finds_decent_sphere_solution() {
        let mut opt = RandomSearch::new(sphere_space());
        let best = run_loop(&mut opt, sphere, 200, 1);
        assert!(
            best < 0.3,
            "random search best {best} too poor after 200 trials"
        );
        assert_eq!(opt.n_observed(), 200);
    }

    #[test]
    fn best_tracks_minimum() {
        let space = sphere_space();
        let mut opt = RandomSearch::new(space.clone());
        let c1 = space.default_config();
        let c2 = space.default_config().with("x", 0.5).with("y", -0.5);
        opt.observe(&c1, 5.0);
        opt.observe(&c2, 1.0);
        opt.observe(&c1, 3.0);
        let best = opt.best().unwrap();
        assert_eq!(best.value, 1.0);
        assert_eq!(best.config.get_f64("x"), Some(0.5));
    }

    #[test]
    fn nan_observation_never_wins() {
        let space = sphere_space();
        let mut opt = RandomSearch::new(space.clone());
        opt.observe(&space.default_config(), f64::NAN);
        assert!(opt.best().is_none());
        opt.observe(&space.default_config(), 2.0);
        assert_eq!(opt.best().unwrap().value, 2.0);
    }

    #[test]
    fn suggestions_are_valid() {
        let space = sphere_space();
        let mut opt = RandomSearch::new(space.clone());
        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9E3779B97F4A7C15);
        for _ in 0..50 {
            let c = opt.suggest(&mut rng);
            assert!(space.validate_config(&c).is_ok());
        }
    }
}

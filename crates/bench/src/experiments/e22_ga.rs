//! E22 (slide 81): genetic algorithms for online tuning (HUNTER/RFHOC
//! lineage) — GA vs random search on the DBMS target, plus the
//! HUNTER-style trick of evaluating offspring on a *cloned* instance so
//! production never sees a crashing individual.

use crate::experiments::{dbms_target, mean_curve};
use crate::report::{f, Report};
use autotune_optimizer::{GaConfig, GeneticAlgorithm, Optimizer, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GA hyperparameters sized for an 80-trial online budget: a small
/// population buys 8 generations of selection pressure, and a high
/// mutation rate keeps exploring a space where most of the volume crashes.
fn ga_config() -> GaConfig {
    GaConfig {
        population: 10,
        mutation_rate: 0.6,
        ..Default::default()
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 80;
    let seeds = 0..8u64;
    let ga = mean_curve(
        || {
            Box::new(GeneticAlgorithm::new(
                dbms_target().space().clone(),
                ga_config(),
            )) as Box<dyn Optimizer>
        },
        dbms_target,
        budget,
        seeds.clone(),
    );
    let random = mean_curve(
        || Box::new(RandomSearch::new(dbms_target().space().clone())),
        dbms_target,
        budget,
        seeds,
    );

    // HUNTER-style clone evaluation: all GA individuals run against the
    // clone; production only ever receives the generation's verified best.
    // Count crashes production would have seen if individuals were served
    // directly vs behind the clone.
    let target = dbms_target();
    let mut opt = GeneticAlgorithm::new(target.space().clone(), ga_config());
    let mut rng = StdRng::seed_from_u64(99);
    let mut direct_crashes = 0;
    let mut prod_crashes = 0;
    let mut verified_best: Option<autotune_space::Config> = None;
    for _ in 0..budget {
        let cfg = opt.suggest(&mut rng);
        let e = target.evaluate(&cfg, &mut rng); // clone evaluation
        if e.cost.is_nan() {
            direct_crashes += 1;
        }
        opt.observe(&cfg, e.cost);
        if e.cost.is_finite() {
            verified_best = Some(opt.best().expect("finite obs").config.clone());
        }
        // Production serves only the verified incumbent.
        if let Some(best) = &verified_best {
            let p = target.evaluate(best, &mut rng);
            if p.cost.is_nan() {
                prod_crashes += 1;
            }
        }
    }

    let rows = vec![
        vec![
            "genetic".into(),
            format!("{} ms", f(ga[39], 4)),
            format!("{} ms", f(ga[budget - 1], 4)),
        ],
        vec![
            "random".into(),
            format!("{} ms", f(random[39], 4)),
            format!("{} ms", f(random[budget - 1], 4)),
        ],
        vec![
            "clone-eval crashes".into(),
            format!("explored: {direct_crashes}"),
            format!("production: {prod_crashes}"),
        ],
    ];
    // GA must converge (late best far below its own early exploration) and
    // stay competitive with random at the full budget; the slide's claim
    // is viability for online tuning, not dominance over random.
    let converged = ga[budget - 1] < ga[15] * 0.9;
    let shape_holds = ga[budget - 1] <= random[budget - 1] * 1.1 && converged && prod_crashes == 0;
    Report {
        id: "E22",
        title: "Genetic algorithm + HUNTER-style clone evaluation (slide 81)",
        headers: vec!["method", "best@40", "best@80"],
        rows,
        paper_claim:
            "GA converges past random; evaluating on clones keeps crashes out of production",
        measured: format!(
            "GA {} vs random {} ms at 80 trials; {} exploratory crashes, {} reached production",
            f(ga[budget - 1], 4),
            f(random[budget - 1], 4),
            direct_crashes,
            prod_crashes
        ),
        shape_holds,
    }
}

//! Multi-task Gaussian process via the intrinsic coregionalization model
//! (tutorial slide 59: "Multi-Target Optimization").
//!
//! Separable multi-output kernel: `K((i,x),(j,x')) = B[i,j] * k(x,x')`,
//! where `B` is a task-similarity matrix. With `B = (1-ρ) I + ρ 11ᵀ`
//! (uniform coregionalization) a single correlation parameter ρ controls
//! how much data collected while optimizing task *i* (say, latency)
//! informs task *j* (say, throughput). ρ is fitted by a marginal-likelihood
//! grid search.

use crate::{Kernel, Prediction, Result, SurrogateError};
use autotune_linalg::{Cholesky, Matrix};

/// One observation attributed to a task.
#[derive(Debug, Clone)]
pub struct TaskObservation {
    /// Task index in `0..n_tasks`.
    pub task: usize,
    /// Input point (encoded configuration).
    pub x: Vec<f64>,
    /// Observed value.
    pub y: f64,
}

/// A multi-task GP over a shared input space.
pub struct MultiTaskGp {
    kernel: Box<dyn Kernel>,
    noise: f64,
    n_tasks: usize,
    /// Cross-task correlation in `[0, 1)`.
    rho: f64,
    obs: Vec<TaskObservation>,
    /// Per-task standardization (mean, std) so tasks with different units
    /// can share a kernel.
    shifts: Vec<(f64, f64)>,
    chol: Option<Cholesky>,
    alpha: Vec<f64>,
}

impl std::fmt::Debug for MultiTaskGp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiTaskGp")
            .field("n_tasks", &self.n_tasks)
            .field("rho", &self.rho)
            .field("n_obs", &self.obs.len())
            .finish()
    }
}

impl MultiTaskGp {
    /// Creates an unfitted multi-task GP.
    pub fn new(kernel: Box<dyn Kernel>, noise: f64, n_tasks: usize) -> Self {
        assert!(n_tasks >= 1, "need at least one task");
        MultiTaskGp {
            kernel,
            noise,
            n_tasks,
            rho: 0.5,
            obs: Vec::new(),
            shifts: vec![(0.0, 1.0); n_tasks],
            chol: None,
            alpha: Vec::new(),
        }
    }

    /// Current cross-task correlation.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of observations in the fit.
    pub fn n_obs(&self) -> usize {
        self.obs.len()
    }

    /// Task-similarity entry `B[i,j]`.
    fn b(&self, i: usize, j: usize) -> f64 {
        if i == j {
            1.0
        } else {
            self.rho
        }
    }

    /// Standardized target for observation `o`.
    fn y_std(&self, o: &TaskObservation) -> f64 {
        let (m, s) = self.shifts[o.task];
        (o.y - m) / s
    }

    /// Fits the model, selecting ρ from a grid by marginal likelihood.
    pub fn fit(&mut self, observations: &[TaskObservation]) -> Result<()> {
        if observations.is_empty() {
            return Err(SurrogateError::EmptyTrainingSet);
        }
        let d = observations[0].x.len();
        for o in observations {
            if o.task >= self.n_tasks {
                return Err(SurrogateError::DimensionMismatch {
                    context: format!("task {} out of range (n_tasks={})", o.task, self.n_tasks),
                });
            }
            if o.x.len() != d {
                return Err(SurrogateError::DimensionMismatch {
                    context: "inconsistent input dimensions".into(),
                });
            }
            if !o.y.is_finite() || o.x.iter().any(|v| !v.is_finite()) {
                return Err(SurrogateError::NonFiniteTarget);
            }
        }
        self.obs = observations.to_vec();
        // Per-task standardization.
        for t in 0..self.n_tasks {
            let ys: Vec<f64> = self
                .obs
                .iter()
                .filter(|o| o.task == t)
                .map(|o| o.y)
                .collect();
            let m = autotune_linalg::stats::mean(&ys);
            let s = autotune_linalg::stats::std_dev(&ys);
            self.shifts[t] = (m, if s > 1e-12 { s } else { 1.0 });
        }
        // Grid-search rho by LML.
        let mut best: Option<(f64, f64)> = None; // (rho, lml)
        for step in 0..10 {
            let rho = step as f64 / 10.0;
            self.rho = rho;
            if self.refit().is_err() {
                continue;
            }
            let lml = self.log_marginal_likelihood();
            if best.is_none_or(|(_, b)| lml > b) {
                best = Some((rho, lml));
            }
        }
        let (rho, _) = best.ok_or(SurrogateError::NumericalFailure)?;
        self.rho = rho;
        self.refit()
    }

    /// Absorbs one observation in O(n²) by extending the Cholesky factor
    /// of the ICM kernel matrix in place instead of rebuilding it.
    ///
    /// The cross-task correlation ρ is kept fixed (it is re-selected by
    /// the grid search on the next full [`MultiTaskGp::fit`]); the
    /// per-task standardization of the observation's task is refreshed,
    /// and `alpha` is recomputed with two triangular solves. Falls back to a
    /// full factorization when the new point is numerically dependent on
    /// the training set; on error the model is left as it was.
    pub fn observe(&mut self, obs: TaskObservation) -> Result<()> {
        if obs.task >= self.n_tasks {
            return Err(SurrogateError::DimensionMismatch {
                context: format!("task {} out of range (n_tasks={})", obs.task, self.n_tasks),
            });
        }
        if !obs.y.is_finite() || obs.x.iter().any(|v| !v.is_finite()) {
            return Err(SurrogateError::NonFiniteTarget);
        }
        if self.obs.is_empty() {
            return self.fit(std::slice::from_ref(&obs));
        }
        if obs.x.len() != self.obs[0].x.len() {
            return Err(SurrogateError::DimensionMismatch {
                context: "inconsistent input dimensions".into(),
            });
        }
        let k_col: Vec<f64> = self
            .obs
            .iter()
            .map(|o| self.b(o.task, obs.task) * self.kernel.eval(&o.x, &obs.x))
            .collect();
        let k_diag = self.kernel.eval(&obs.x, &obs.x) + self.noise.max(1e-10);
        let extended = match &mut self.chol {
            Some(chol) => chol.extend(&k_col, k_diag).is_ok(),
            None => false,
        };
        self.obs.push(obs);
        let task = self.obs.last().expect("just pushed").task; // lint: allow(D5) element pushed on the previous line
        let saved_shift = self.shifts[task];
        let ys: Vec<f64> = self
            .obs
            .iter()
            .filter(|o| o.task == task)
            .map(|o| o.y)
            .collect();
        let m = autotune_linalg::stats::mean(&ys);
        let s = autotune_linalg::stats::std_dev(&ys);
        self.shifts[task] = (m, if s > 1e-12 { s } else { 1.0 });
        if extended {
            let chol = self.chol.as_ref().expect("factor present when extended"); // lint: allow(D5) extend success implies factor present
            let y: Vec<f64> = self.obs.iter().map(|o| self.y_std(o)).collect();
            self.alpha = chol.solve_vec(&y);
            return Ok(());
        }
        if let Err(e) = self.refit() {
            self.obs.pop();
            self.shifts[task] = saved_shift;
            return Err(e);
        }
        Ok(())
    }

    fn refit(&mut self) -> Result<()> {
        let n = self.obs.len();
        let mut k = Matrix::from_fn(n, n, |i, j| {
            let (a, b) = (&self.obs[i], &self.obs[j]);
            self.b(a.task, b.task) * self.kernel.eval(&a.x, &b.x)
        });
        k.add_diag(self.noise.max(1e-10));
        let chol = Cholesky::new(&k).map_err(|_| SurrogateError::NumericalFailure)?;
        let y: Vec<f64> = self.obs.iter().map(|o| self.y_std(o)).collect();
        self.alpha = chol.solve_vec(&y);
        self.chol = Some(chol);
        Ok(())
    }

    /// Log marginal likelihood of the current fit.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let Some(chol) = &self.chol else {
            return f64::NEG_INFINITY;
        };
        let y: Vec<f64> = self.obs.iter().map(|o| self.y_std(o)).collect();
        let n = y.len() as f64;
        -0.5 * autotune_linalg::dot(&y, &self.alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Predictive distribution for `task` at `x`.
    pub fn predict(&self, task: usize, x: &[f64]) -> Prediction {
        assert!(task < self.n_tasks, "task index out of range");
        let Some(chol) = &self.chol else {
            return Prediction {
                mean: 0.0,
                variance: self.kernel.diag(x),
            };
        };
        let k: Vec<f64> = self
            .obs
            .iter()
            .map(|o| self.b(task, o.task) * self.kernel.eval(&o.x, x))
            .collect();
        let mean_std = autotune_linalg::dot(&k, &self.alpha);
        let v = chol.solve_lower(&k);
        let var_std = (self.kernel.diag(x) - autotune_linalg::dot(&v, &v)).max(0.0);
        let (m, s) = self.shifts[task];
        Prediction {
            mean: m + s * mean_std,
            variance: s * s * var_std,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rbf;

    /// Two correlated tasks: task 1 = task 0 shifted by a constant.
    fn correlated_observations() -> Vec<TaskObservation> {
        let f = |x: f64| (3.0 * x).sin();
        let mut obs = Vec::new();
        // Task 0 densely observed.
        for i in 0..12 {
            let x = i as f64 / 11.0;
            obs.push(TaskObservation {
                task: 0,
                x: vec![x],
                y: f(x),
            });
        }
        // Task 1 sparsely observed (same shape, offset +10).
        for &x in &[0.0, 0.5, 1.0] {
            obs.push(TaskObservation {
                task: 1,
                x: vec![x],
                y: f(x) + 10.0,
            });
        }
        obs
    }

    #[test]
    fn transfer_improves_sparse_task() {
        let obs = correlated_observations();
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-6, 2);
        mt.fit(&obs).unwrap();
        // Predict task 1 at a point it never observed; the dense task-0
        // data should shape the interpolation.
        let truth = (3.0f64 * 0.25).sin() + 10.0;
        let p = mt.predict(1, &[0.25]);
        assert!(
            (p.mean - truth).abs() < 0.4,
            "transfer prediction {} vs truth {truth}",
            p.mean
        );
        // Fitted correlation should be clearly positive.
        assert!(
            mt.rho() >= 0.5,
            "rho {} too small for perfectly correlated tasks",
            mt.rho()
        );
    }

    #[test]
    fn uncorrelated_tasks_learn_low_rho() {
        let mut obs = Vec::new();
        // Task 0: increasing; task 1: an unrelated oscillation, both dense.
        for i in 0..15 {
            let x = i as f64 / 14.0;
            obs.push(TaskObservation {
                task: 0,
                x: vec![x],
                y: x,
            });
            obs.push(TaskObservation {
                task: 1,
                x: vec![x],
                y: (20.0 * x).sin(),
            });
        }
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-4, 2);
        mt.fit(&obs).unwrap();
        assert!(
            mt.rho() <= 0.5,
            "rho {} too large for unrelated tasks",
            mt.rho()
        );
    }

    #[test]
    fn single_task_reduces_to_gp() {
        let obs: Vec<TaskObservation> = (0..8)
            .map(|i| {
                let x = i as f64 / 7.0;
                TaskObservation {
                    task: 0,
                    x: vec![x],
                    y: x * x,
                }
            })
            .collect();
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(0.4, 1.0)), 1e-8, 1);
        mt.fit(&obs).unwrap();
        let p = mt.predict(0, &[0.5]);
        assert!((p.mean - 0.25).abs() < 0.05, "mean {}", p.mean);
    }

    #[test]
    fn rejects_out_of_range_task() {
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(1.0, 1.0)), 1e-6, 2);
        let bad = vec![TaskObservation {
            task: 5,
            x: vec![0.0],
            y: 1.0,
        }];
        assert!(mt.fit(&bad).is_err());
    }

    #[test]
    fn rejects_empty() {
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(1.0, 1.0)), 1e-6, 2);
        assert_eq!(mt.fit(&[]).unwrap_err(), SurrogateError::EmptyTrainingSet);
    }

    #[test]
    fn incremental_observe_matches_full_refit() {
        let obs = correlated_observations();
        // Seed both models with the same prefix so they share the same
        // fitted rho, then feed the tail incrementally vs. via full fit
        // with that rho frozen.
        let (head, tail) = obs.split_at(obs.len() - 4);
        let mut inc = MultiTaskGp::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-6, 2);
        inc.fit(head).unwrap();
        let rho = inc.rho();
        for o in tail {
            inc.observe(o.clone()).unwrap();
        }
        assert_eq!(inc.rho(), rho, "observe must not move rho");
        let mut full = MultiTaskGp::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-6, 2);
        full.fit(head).unwrap();
        full.obs = obs.clone();
        for t in 0..2 {
            let ys: Vec<f64> = obs.iter().filter(|o| o.task == t).map(|o| o.y).collect();
            let m = autotune_linalg::stats::mean(&ys);
            let s = autotune_linalg::stats::std_dev(&ys);
            full.shifts[t] = (m, if s > 1e-12 { s } else { 1.0 });
        }
        full.rho = rho;
        full.refit().unwrap();
        for task in 0..2 {
            for q in [0.1, 0.25, 0.6, 0.9] {
                let a = inc.predict(task, &[q]);
                let b = full.predict(task, &[q]);
                assert!(
                    (a.mean - b.mean).abs() < 1e-7,
                    "task {task} mean at {q}: {} vs {}",
                    a.mean,
                    b.mean
                );
                assert!(
                    (a.variance - b.variance).abs() < 1e-7,
                    "task {task} variance at {q}: {} vs {}",
                    a.variance,
                    b.variance
                );
            }
        }
        assert_eq!(inc.n_obs(), full.n_obs());
    }

    #[test]
    fn observe_from_empty_bootstraps_a_fit() {
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(0.4, 1.0)), 1e-6, 2);
        mt.observe(TaskObservation {
            task: 0,
            x: vec![0.2],
            y: 3.0,
        })
        .unwrap();
        assert_eq!(mt.n_obs(), 1);
        let p = mt.predict(0, &[0.2]);
        assert!((p.mean - 3.0).abs() < 0.1, "mean {}", p.mean);
    }

    #[test]
    fn observe_duplicate_point_falls_back_to_full_refit() {
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(0.4, 1.0)), 0.0, 1);
        for y in [1.0, 1.1, 0.9] {
            mt.observe(TaskObservation {
                task: 0,
                x: vec![0.5],
                y,
            })
            .unwrap();
        }
        assert_eq!(mt.n_obs(), 3);
        let p = mt.predict(0, &[0.5]);
        assert!((p.mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn observe_rejects_bad_input_without_mutating() {
        let obs = correlated_observations();
        let mut mt = MultiTaskGp::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-6, 2);
        mt.fit(&obs).unwrap();
        let before = mt.predict(1, &[0.4]);
        assert!(mt
            .observe(TaskObservation {
                task: 7,
                x: vec![0.1],
                y: 1.0,
            })
            .is_err());
        assert!(mt
            .observe(TaskObservation {
                task: 0,
                x: vec![0.1, 0.2],
                y: 1.0,
            })
            .is_err());
        assert!(mt
            .observe(TaskObservation {
                task: 0,
                x: vec![0.1],
                y: f64::NAN,
            })
            .is_err());
        assert_eq!(mt.n_obs(), obs.len());
        assert_eq!(mt.predict(1, &[0.4]), before);
    }

    #[test]
    fn unfitted_predicts_prior() {
        let mt = MultiTaskGp::new(Box::new(Rbf::isotropic(1.0, 2.0)), 1e-6, 2);
        let p = mt.predict(1, &[0.3]);
        assert_eq!(p.mean, 0.0);
        assert!((p.variance - 4.0).abs() < 1e-12);
    }
}

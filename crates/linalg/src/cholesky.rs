//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! This is the workhorse of Gaussian-process regression: the posterior mean
//! and variance are both triangular solves against the factor of
//! `K + sigma^2 I`, and the log marginal likelihood needs the
//! log-determinant, which falls out of the factor's diagonal for free.

#![allow(clippy::needless_range_loop)] // offset-indexed triangular loops
use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L * L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that had to be added to the diagonal for the factorization to
    /// succeed (0.0 when the input was well-conditioned).
    jitter: f64,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Kernel matrices are often *numerically* semi-definite (duplicated
    /// trial configurations produce identical rows), so on failure the
    /// factorization retries with exponentially growing diagonal jitter up
    /// to `1e-4 * mean(diag)`. The jitter actually used is reported by
    /// [`Cholesky::jitter`].
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky: matrix must be square",
            });
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            a.diag().iter().map(|d| d.abs()).sum::<f64>() / n as f64
        };
        let mut jitter = 0.0;
        // 1e-12 .. 1e-4 of the mean diagonal, one decade per retry.
        for attempt in 0..=9 {
            if attempt > 0 {
                jitter = mean_diag.max(1e-300) * 1e-12 * 10f64.powi(attempt - 1);
            }
            if let Some(l) = Self::try_factor(a, jitter) {
                return Ok(Cholesky { l, jitter });
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    /// Factorizes a symmetric positive-definite matrix with a cache-blocked
    /// (tiled) right-looking algorithm.
    ///
    /// Identical contract to [`Cholesky::new`] — same jitter-retry ladder,
    /// same error — but the O(n³) work is organized as block-column panels:
    /// factor a `block`×`block` diagonal tile, triangular-solve the panel
    /// below it, then apply the trailing SYRK update tile-by-tile so every
    /// tile is reused from cache. At a few thousand rows this runs several
    /// times faster than the naive loop; the factor agrees with the naive
    /// one to rounding (the trailing updates are regrouped per panel, so
    /// agreement is tolerance-level, not bitwise).
    pub fn new_blocked(a: &Matrix, block: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky: matrix must be square",
            });
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            a.diag().iter().map(|d| d.abs()).sum::<f64>() / n as f64
        };
        let mut jitter = 0.0;
        for attempt in 0..=9 {
            if attempt > 0 {
                jitter = mean_diag.max(1e-300) * 1e-12 * 10f64.powi(attempt - 1);
            }
            if let Some(l) = Self::try_factor_blocked(a, jitter, block) {
                return Ok(Cholesky { l, jitter });
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    /// One blocked factorization attempt; `None` when a pivot is
    /// non-positive. Works on a lower-triangle copy in place: factor the
    /// diagonal tile, panel-solve the rows below, subtract the panel's
    /// outer product from the trailing triangle.
    fn try_factor_blocked(a: &Matrix, jitter: f64, block: usize) -> Option<Matrix> {
        let n = a.rows();
        let b = block.max(1);
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
            l[(i, i)] += jitter;
        }
        for kk in (0..n).step_by(b) {
            let ke = (kk + b).min(n);
            // Factor the diagonal block in place (unblocked, it's small).
            for j in kk..ke {
                let s = crate::vector::dot(&l.row(j)[kk..j], &l.row(j)[kk..j]);
                let d = l[(j, j)] - s;
                if d <= 0.0 || !d.is_finite() {
                    return None;
                }
                let ljj = d.sqrt();
                l[(j, j)] = ljj;
                for i in (j + 1)..ke {
                    let s = crate::vector::dot(&l.row(i)[kk..j], &l.row(j)[kk..j]);
                    l[(i, j)] = (l[(i, j)] - s) / ljj;
                }
            }
            // Panel solve: L21 = A21 * L11⁻ᵀ, row by row against the block.
            for i in ke..n {
                for j in kk..ke {
                    let s = crate::vector::dot(&l.row(i)[kk..j], &l.row(j)[kk..j]);
                    l[(i, j)] = (l[(i, j)] - s) / l[(j, j)];
                }
            }
            if ke == n {
                break;
            }
            // Trailing update: A22 -= L21 * L21ᵀ, tiled over the lower
            // triangle. The panel is copied out once so the tile loops can
            // read it contiguously while writing into `l`.
            let kb = ke - kk;
            let panel = Matrix::from_fn(n - ke, kb, |r, c| l[(ke + r, kk + c)]);
            for ii in (ke..n).step_by(b) {
                let ie = (ii + b).min(n);
                for jj in (ke..=ii).step_by(b) {
                    let je = (jj + b).min(n);
                    for i in ii..ie {
                        let pi = panel.row(i - ke);
                        for j in jj..je.min(i + 1) {
                            let s = crate::vector::dot(pi, panel.row(j - ke));
                            l[(i, j)] -= s;
                        }
                    }
                }
            }
        }
        Some(l)
    }

    /// Single factorization attempt with the given diagonal jitter;
    /// returns `None` when a pivot is non-positive.
    fn try_factor(a: &Matrix, jitter: f64) -> Option<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum_{k<j} L[i,k] * L[j,k]
                let s = crate::vector::dot(&l.row(i)[..j], &l.row(j)[..j]);
                if i == j {
                    let d = a[(i, i)] + jitter - s;
                    if d <= 0.0 || !d.is_finite() {
                        return None;
                    }
                    l[(i, j)] = d.sqrt();
                } else {
                    l[(i, j)] = (a[(i, j)] - s) / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter that was added to make the factorization succeed.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let s = crate::vector::dot(&self.l.row(i)[..i], &y[..i]);
            y[i] = (b[i] - s) / self.l[(i, i)];
        }
        y
    }

    /// Solves `L^T x = y` (back substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper: rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = 0.0;
            for k in (i + 1)..n {
                s += self.l[(k, i)] * x[k];
            }
            x[i] = (y[i] - s) / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` via the two triangular solves.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky solve: rhs rows must match dimension",
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col);
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// `log det(A) = 2 * sum_i log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse of `A`. Prefer the `solve_*` methods; the explicit
    /// inverse is only needed by multi-task kernels.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        self.solve_matrix(&Matrix::identity(n))
            .expect("identity always matches dimension") // lint: allow(D5) identity matches the factor dimension
    }

    /// Rank-1 extension: given the factor of the leading n×n principal
    /// submatrix, absorbs one bordering row/column in O(n²).
    ///
    /// `col` holds the off-diagonal covariances `A[0..n, n]` and `diag` the
    /// new diagonal entry `A[n, n]`. The jitter chosen when this factor was
    /// built is applied to the new diagonal entry too, so the extended
    /// factor is exactly the factor of the bordered `A + jitter * I`.
    ///
    /// With `w = L⁻¹ col` and `d = diag + jitter − ‖w‖²`, the new factor row
    /// is `[wᵀ, √d]`. When `d` is non-positive (the new point is linearly
    /// dependent on the existing ones to working precision) the extension
    /// is rejected with [`LinalgError::NotPositiveDefinite`] and the factor
    /// is left untouched — callers should fall back to a full, re-jittered
    /// factorization.
    /// Rank-1 *update*: replaces this factor of `A` with the factor of
    /// `A + v vᵀ` in O(n²) (the classic `cholupdate` Givens sweep).
    ///
    /// Unlike [`Cholesky::extend`] the dimension does not change — this is
    /// the workhorse of fixed-size information-matrix maintenance (e.g. a
    /// sparse GP absorbing one observation into `σ²K_mm + Σ k kᵀ`).
    /// Because `v vᵀ` is PSD the update cannot leave the SPD cone, so
    /// failures only arise from non-finite input; on any error the factor
    /// is left exactly as it was.
    pub fn rank_one_update(&mut self, v: &[f64]) -> Result<()> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky rank_one_update: vector length must match dimension",
            });
        }
        let mut w = v.to_vec();
        let mut l = self.l.clone();
        for j in 0..n {
            let ljj = l[(j, j)];
            let r2 = ljj * ljj + w[j] * w[j];
            // NaN falls through to the finiteness check.
            if r2 <= 0.0 || !r2.is_finite() {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let r = r2.sqrt();
            let c = r / ljj;
            let s = w[j] / ljj;
            l[(j, j)] = r;
            for i in (j + 1)..n {
                let lij = (l[(i, j)] + s * w[i]) / c;
                w[i] = c * w[i] - s * lij;
                l[(i, j)] = lij;
            }
        }
        self.l = l;
        Ok(())
    }

    pub fn extend(&mut self, col: &[f64], diag: f64) -> Result<()> {
        let n = self.dim();
        if col.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky extend: column length must match dimension",
            });
        }
        let w = self.solve_lower(col);
        let d = diag + self.jitter - crate::vector::dot(&w, &w);
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        l.row_mut(n)[..n].copy_from_slice(&w);
        l[(n, n)] = d.sqrt();
        self.l = l;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn known_factor() {
        // Classic textbook example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve_vec(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    fn log_det_matches_direct() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse();
        let eye = a.matmul(&inv).unwrap();
        assert!(eye.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn semidefinite_rescued_by_jitter() {
        // Rank-1 matrix: vv^T with v = [1, 1] — singular but PSD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let c = Cholesky::new(&a).unwrap();
        assert!(c.jitter() > 0.0);
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-4));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn extend_matches_from_scratch_on_random_spd() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // 100 random well-conditioned SPD matrices: factor the leading
        // (n-1)-dimensional principal submatrix, extend by the last
        // row/column, and demand entrywise agreement with a from-scratch
        // factorization of the full matrix.
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3 + (seed % 6) as usize;
            let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
            let mut a = b.matmul(&b.transpose()).unwrap();
            a.add_diag(n as f64); // keep it far from singular
            let lead = Matrix::from_fn(n - 1, n - 1, |i, j| a[(i, j)]);
            let mut inc = Cholesky::new(&lead).unwrap();
            assert_eq!(inc.jitter(), 0.0, "seed {seed}: unexpected jitter");
            let col: Vec<f64> = (0..n - 1).map(|i| a[(i, n - 1)]).collect();
            inc.extend(&col, a[(n - 1, n - 1)]).unwrap();
            let full = Cholesky::new(&a).unwrap();
            assert!(
                inc.l().approx_eq(full.l(), 1e-10),
                "seed {seed}: incremental factor diverged from scratch"
            );
        }
    }

    #[test]
    fn extend_rejects_linearly_dependent_point() {
        // Bordering [[1]] with a duplicate row gives the singular matrix
        // [[1,1],[1,1]]: the Schur complement d = 1 - 1 = 0 must be
        // rejected and the factor left untouched.
        let mut c = Cholesky::new(&Matrix::from_rows(&[&[1.0]])).unwrap();
        assert_eq!(
            c.extend(&[1.0], 1.0).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        assert_eq!(c.dim(), 1, "failed extend must not grow the factor");
        assert!((c.l()[(0, 0)] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn extend_rejects_shape_mismatch_and_nonfinite() {
        let mut c = Cholesky::new(&spd3()).unwrap();
        assert!(matches!(
            c.extend(&[1.0], 1.0),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert_eq!(
            c.extend(&[1.0, 2.0, 3.0], f64::NAN).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn extend_applies_existing_jitter_to_new_diagonal() {
        // A factor that needed jitter keeps using it: the extended factor
        // reconstructs A + jitter * I, not A.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let mut c = Cholesky::new(&a).unwrap();
        let j = c.jitter();
        assert!(j > 0.0);
        c.extend(&[0.5, 0.5], 2.0).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        let mut want = Matrix::from_rows(&[&[1.0, 1.0, 0.5], &[1.0, 1.0, 0.5], &[0.5, 0.5, 2.0]]);
        want.add_diag(j);
        assert!(back.approx_eq(&want, 1e-9));
    }

    fn random_spd(n: usize, seed: u64) -> Matrix {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut a = b.syrk_blocked(32);
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn blocked_factor_matches_naive_across_block_sizes() {
        // Including blocks of 1, blocks that don't divide n, and blocks
        // larger than n (which degenerates to the unblocked algorithm).
        for n in [1, 2, 7, 33, 64, 97] {
            let a = random_spd(n, 500 + n as u64);
            let naive = Cholesky::new(&a).unwrap();
            for block in [1, 5, 16, 64, 256] {
                let blocked = Cholesky::new_blocked(&a, block).unwrap();
                assert_eq!(blocked.jitter(), 0.0, "n={n} block={block}");
                assert!(
                    blocked.l().approx_eq(naive.l(), 1e-9 * n as f64),
                    "n={n} block={block}: blocked factor diverged from naive"
                );
            }
        }
    }

    #[test]
    fn blocked_factor_reconstructs_and_solves() {
        let a = random_spd(50, 9);
        let c = Cholesky::new_blocked(&a, 16).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve_vec(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn blocked_factor_rejects_indefinite_and_rescues_semidefinite() {
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            Cholesky::new_blocked(&indef, 8).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        let psd = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let c = Cholesky::new_blocked(&psd, 8).unwrap();
        assert!(c.jitter() > 0.0);
        let non_square = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new_blocked(&non_square, 8),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn blocked_factor_extends_like_naive() {
        // A blocked factor must keep working with the O(n²) rank-1
        // extension the incremental GP path uses.
        let a = random_spd(20, 31);
        let lead = Matrix::from_fn(19, 19, |i, j| a[(i, j)]);
        let mut inc = Cholesky::new_blocked(&lead, 7).unwrap();
        let col: Vec<f64> = (0..19).map(|i| a[(i, 19)]).collect();
        inc.extend(&col, a[(19, 19)]).unwrap();
        let full = Cholesky::new(&a).unwrap();
        assert!(inc.l().approx_eq(full.l(), 1e-8));
    }

    #[test]
    fn rank_one_update_matches_from_scratch() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 2 + (seed % 7) as usize;
            let a = random_spd(n, 900 + seed);
            let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut c = Cholesky::new(&a).unwrap();
            c.rank_one_update(&v).unwrap();
            let mut updated = a.clone();
            for i in 0..n {
                for j in 0..n {
                    updated[(i, j)] += v[i] * v[j];
                }
            }
            let scratch = Cholesky::new(&updated).unwrap();
            assert!(
                c.l().approx_eq(scratch.l(), 1e-8 * n as f64),
                "seed {seed}: rank-1 update diverged from scratch factor"
            );
        }
    }

    #[test]
    fn rank_one_update_rejects_bad_input_atomically() {
        let a = spd3();
        let mut c = Cholesky::new(&a).unwrap();
        let before = c.l().clone();
        assert!(matches!(
            c.rank_one_update(&[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert_eq!(
            c.rank_one_update(&[1.0, f64::NAN, 0.0]).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        assert_eq!(
            c.l(),
            &before,
            "failed update must leave the factor untouched"
        );
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let x = c.solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-8));
    }
}

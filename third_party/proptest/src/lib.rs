//! Offline stub of `proptest` (see `third_party/README.md`).
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, range strategies over numbers,
//! [`collection::vec`], tuple strategies, [`Strategy::prop_map`],
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics: each test body runs for `cases` deterministic seeds
//! (case index → SplitMix-derived RNG). There is **no shrinking**; a
//! failure reports the case number, which reproduces exactly on rerun.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one property case: `Err` carries a failure or rejection.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert!` failed.
    Fail(String),
    /// `prop_assume!` rejected the inputs (case is skipped, not failed).
    Reject(String),
}

/// A generator of values for property tests.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, E 3)
}

/// Runs `body` for each seeded case. Used by the [`proptest!`] macro;
/// not part of the public proptest API.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    for case in 0..config.cases {
        // Seed by case index so every case reproduces in isolation.
        let mut rng =
            StdRng::seed_from_u64(0x9E37_79B9 ^ (case as u64).wrapping_mul(0x0100_0000_01B3));
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {case}/{}: {msg}",
                    config.cases
                );
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over seeded samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&__cfg, stringify!($name), |__rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts within a property body; failures abort only the current case
/// with a message (no unwinding mid-sample).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

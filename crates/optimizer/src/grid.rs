//! Grid search (tutorial slide 29): evaluate configurations at even
//! intervals over each axis, try them all, pick the best.
//!
//! "Not so naïve" — with a fixed budget and a low-dimensional space it is a
//! perfectly reasonable strategy, and its complete coverage makes results
//! easy to explain to operators.

use crate::{BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use rand::RngCore;

/// Exhaustive sweep over an axis-aligned grid.
///
/// Once the grid is exhausted, further `suggest` calls fall back to random
/// sampling so a fixed-budget experiment loop never stalls.
#[derive(Debug)]
pub struct GridSearch {
    space: Space,
    queue: std::collections::VecDeque<Config>,
    grid_size: usize,
    tracker: BestTracker,
}

impl GridSearch {
    /// Creates a grid search with `per_dim` points per parameter axis
    /// (categoricals contribute their exact cardinality).
    pub fn new(space: Space, per_dim: usize) -> Self {
        let grid = space.grid(per_dim);
        let grid_size = grid.len();
        GridSearch {
            space,
            queue: grid.into(),
            grid_size,
            tracker: BestTracker::default(),
        }
    }

    /// Creates a grid sized to approximately `budget` total points by
    /// choosing the largest `per_dim` whose full grid fits within budget.
    pub fn with_budget(space: Space, budget: usize) -> Self {
        let d = space.len().max(1) as f64;
        // per_dim^d <= budget  =>  per_dim = floor(budget^(1/d))
        let per_dim = (budget.max(1) as f64).powf(1.0 / d).floor() as usize;
        GridSearch::new(space, per_dim.max(1))
    }

    /// Total number of grid points.
    pub fn grid_size(&self) -> usize {
        self.grid_size
    }

    /// Points remaining in the sweep.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl Optimizer for GridSearch {
    fn suggest(&mut self, mut rng: &mut dyn RngCore) -> Config {
        self.queue
            .pop_front()
            .unwrap_or_else(|| self.space.sample(&mut rng))
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        "grid"
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};

    #[test]
    fn sweeps_every_grid_point_once() {
        let space = sphere_space();
        let mut opt = GridSearch::new(space, 5);
        assert_eq!(opt.grid_size(), 25);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..25 {
            let c = opt.suggest(&mut rng);
            assert!(seen.insert(c.render()), "grid repeated a point");
        }
        assert_eq!(opt.remaining(), 0);
    }

    #[test]
    fn falls_back_to_random_after_exhaustion() {
        let space = sphere_space();
        let mut opt = GridSearch::new(space.clone(), 2);
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x9E3779B97F4A7C15);
        for _ in 0..4 {
            opt.suggest(&mut rng);
        }
        // Past the grid: still produces valid configs.
        let c = opt.suggest(&mut rng);
        assert!(space.validate_config(&c).is_ok());
    }

    #[test]
    fn dense_grid_finds_sphere_optimum_region() {
        let mut opt = GridSearch::new(sphere_space(), 9);
        let best = run_loop(&mut opt, sphere, 81, 3);
        assert!(best < 0.1, "9x9 grid best {best} should land near optimum");
    }

    #[test]
    fn with_budget_caps_grid() {
        let opt = GridSearch::with_budget(sphere_space(), 30);
        assert!(
            opt.grid_size() <= 30,
            "grid {} exceeds budget",
            opt.grid_size()
        );
        assert!(opt.grid_size() >= 25); // 5x5 fits
    }

    #[test]
    fn budget_smaller_than_axes_still_works() {
        let opt = GridSearch::with_budget(sphere_space(), 1);
        assert!(opt.grid_size() >= 1);
    }
}

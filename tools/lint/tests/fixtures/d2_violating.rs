//! D2 fixture: hash-ordered containers in a deterministic crate.
use std::collections::HashMap;

pub fn histogram(keys: &[u32]) -> HashMap<u32, usize> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

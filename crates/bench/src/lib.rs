//! Experiment harness regenerating every table and figure of the SIGMOD
//! 2025 autotuning tutorial.
//!
//! Each experiment in [`all_experiments`] corresponds to one slide-level
//! claim (see `DESIGN.md`'s experiment index E1-E26) and produces a
//! [`Report`]: the table/series the tutorial shows, the paper's expected
//! shape, and a pass/fail check of that shape against our measurement.
//!
//! Run everything with:
//! ```text
//! cargo run -p autotune-bench --release --bin repro
//! ```
//! or a single experiment with `-- e15`.

pub mod experiments;
mod report;

pub use report::{Report, Row};

/// An experiment entry: CLI key plus the function that runs it.
pub type Experiment = (&'static str, fn() -> Report);

/// Returns every experiment in index order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("e01", experiments::e01_tuning_wins::run as fn() -> Report),
        ("e02", experiments::e02_classic_search::run),
        ("e05", experiments::e05_gp_visuals::run),
        ("e06", experiments::e06_kernels::run),
        ("e07", experiments::e07_acquisitions::run),
        ("e08", experiments::e08_surrogates::run),
        ("e09", experiments::e09_discrete::run),
        ("e10", experiments::e10_parallel::run),
        ("e11", experiments::e11_moo::run),
        ("e12", experiments::e12_multitask::run),
        ("e13", experiments::e13_constraints::run),
        ("e14", experiments::e14_structured::run),
        ("e15", experiments::e15_llamatune::run),
        ("e16", experiments::e16_multifidelity::run),
        ("e17", experiments::e17_transfer::run),
        ("e18", experiments::e18_importance::run),
        ("e19", experiments::e19_early_abort::run),
        ("e20", experiments::e20_noise::run),
        ("e21", experiments::e21_rl::run),
        ("e22", experiments::e22_ga::run),
        ("e23", experiments::e23_context::run),
        ("e24", experiments::e24_safety::run),
        ("e25", experiments::e25_wid::run),
        ("e26", experiments::e26_synth::run),
        ("e27", experiments::e27_llm_priors::run),
        ("e28", experiments::e28_profile_guided::run),
        ("e29", experiments::e29_async::run),
        ("e30", experiments::e30_faults::run),
        ("e31", experiments::e31_overhead::run),
        ("e32", experiments::e32_hotpath::run),
        ("e33", experiments::e33_serve::run),
        ("e34", experiments::e34_chaos::run),
        ("e35", experiments::e35_cache::run),
        ("e36", experiments::e36_scale::run),
        ("ablations", experiments::ablations::run),
    ]
}

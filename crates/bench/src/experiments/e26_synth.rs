//! E26 (slide 92): synthetic benchmark generation — match a production
//! workload's telemetry with a mixture of base benchmarks (Stitcher
//! style), tune offline against the synthetic mixture, and check the tuned
//! config transfers back to "production".

use crate::report::{f, Report};
use autotune::{Objective, SessionConfig, Target, TuningSession};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{DbmsSim, Environment, SimSystem, Workload};
use autotune_wid::{synthesize_mixture, Fingerprint};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Average fingerprint of a workload over several runs.
fn fingerprint_of(sim: &DbmsSim, w: &Workload, env: &Environment, rng: &mut StdRng) -> Fingerprint {
    let prints: Vec<Fingerprint> = (0..6)
        .map(|_| {
            let r = sim.run_trial(&sim.space().default_config(), w, env, rng);
            Fingerprint::from_telemetry(&r.telemetry)
        })
        .collect();
    Fingerprint::mean_of(&prints).expect("non-empty")
}

/// Runs the experiment.
pub fn run() -> Report {
    let env = Environment::medium();
    let sim = DbmsSim::new();
    let mut rng = StdRng::seed_from_u64(1);

    // "Production": a 60/40 blend of read-only and update-heavy traffic
    // (we can observe its telemetry but must not replay it).
    let production = Workload {
        read_fraction: 0.8, // between ycsb-c (1.0) and ycsb-a (0.5)
        ..Workload::ycsb_a(2_000.0)
    };
    let prod_fp = fingerprint_of(&sim, &production, &env, &mut rng);

    // Base benchmark dictionary.
    let basis_workloads = [
        Workload::ycsb_c(2_000.0),
        Workload::ycsb_a(2_000.0),
        Workload::tpch(2.0),
    ];
    let basis_fps: Vec<Fingerprint> = basis_workloads
        .iter()
        .map(|w| fingerprint_of(&sim, w, &env, &mut rng))
        .collect();

    let (weights, residual) = synthesize_mixture(&basis_fps, &prod_fp).expect("basis non-empty");

    // Tune against the synthetic mixture: evaluate a config as the
    // weights-blend of per-benchmark latencies.
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        production.clone(),
        env.clone(),
        Objective::MinimizeLatencyAvg,
    );
    let space = target.space().clone();
    let sim2 = DbmsSim::new();
    let env2 = env.clone();
    let weights2 = weights.clone();
    let basis2 = basis_workloads.clone();
    let synth_target =
        Target::black_box(space.clone(), Objective::MinimizeLatencyAvg, move |cfg| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut total = 0.0;
            for (w, bw) in weights2.iter().zip(&basis2) {
                if *w < 1e-3 {
                    continue;
                }
                let r = sim2.run_trial(cfg, bw, &env2, &mut rng);
                if r.crashed {
                    return f64::NAN;
                }
                total += w * r.latency_avg_ms;
            }
            total
        });
    let opt = BayesianOptimizer::gp(space.clone());
    let mut session = TuningSession::new(synth_target, Box::new(opt), SessionConfig::default());
    let synth_summary = session.run(30, 3).expect("tuning campaign succeeds");

    // Deploy the synthetic-tuned config on real production traffic.
    let mut rng2 = StdRng::seed_from_u64(9);
    let deployed = (0..8)
        .map(|_| target.evaluate(&synth_summary.best_config, &mut rng2).cost)
        .sum::<f64>()
        / 8.0;
    let default_cost = (0..8)
        .map(|_| target.evaluate(&space.default_config(), &mut rng2).cost)
        .sum::<f64>()
        / 8.0;
    // Oracle: tune directly on production (privacy-violating upper bound).
    let opt = BayesianOptimizer::gp(space.clone());
    let mut oracle = TuningSession::new(
        Target::simulated(
            Box::new(DbmsSim::new()),
            production,
            env,
            Objective::MinimizeLatencyAvg,
        ),
        Box::new(opt),
        SessionConfig::default(),
    );
    let oracle_summary = oracle.run(30, 3).expect("tuning campaign succeeds");

    let rows = vec![
        vec![
            "mixture weights".into(),
            format!(
                "ycsb-c {:.2} / ycsb-a {:.2} / tpc-h {:.2}",
                weights[0], weights[1], weights[2]
            ),
        ],
        vec!["fit residual".into(), f(residual, 3)],
        vec![
            "default on production".into(),
            format!("{} ms", f(default_cost, 4)),
        ],
        vec![
            "synthetic-tuned on production".into(),
            format!("{} ms", f(deployed, 4)),
        ],
        vec![
            "oracle (tuned on production)".into(),
            format!("{} ms", f(oracle_summary.best_cost, 4)),
        ],
    ];
    // The mixture should be dominated by the two YCSB components, and the
    // synthetic-tuned config should recover most of the oracle's win.
    let ycsb_mass = weights[0] + weights[1];
    let win_recovered =
        (default_cost - deployed) / (default_cost - oracle_summary.best_cost).max(1e-9);
    let shape_holds = ycsb_mass > 0.7 && residual < 1.0 && win_recovered > 0.6;
    Report {
        id: "E26",
        title: "Synthetic benchmark generation (slide 92)",
        headers: vec!["quantity", "value"],
        rows,
        paper_claim:
            "a telemetry-matched benchmark mixture lets offline tuning transfer to production",
        measured: format!(
            "YCSB mass {:.2}, residual {}, {:.0}% of oracle win recovered",
            ycsb_mass,
            f(residual, 3),
            100.0 * win_recovered
        ),
        shape_holds,
    }
}

//! One module per experiment of the index in `DESIGN.md`.

pub mod ablations;
pub mod e01_tuning_wins;
pub mod e02_classic_search;
pub mod e05_gp_visuals;
pub mod e06_kernels;
pub mod e07_acquisitions;
pub mod e08_surrogates;
pub mod e09_discrete;
pub mod e10_parallel;
pub mod e11_moo;
pub mod e12_multitask;
pub mod e13_constraints;
pub mod e14_structured;
pub mod e15_llamatune;
pub mod e16_multifidelity;
pub mod e17_transfer;
pub mod e18_importance;
pub mod e19_early_abort;
pub mod e20_noise;
pub mod e21_rl;
pub mod e22_ga;
pub mod e23_context;
pub mod e24_safety;
pub mod e25_wid;
pub mod e26_synth;
pub mod e27_llm_priors;
pub mod e28_profile_guided;
pub mod e29_async;
pub mod e30_faults;
pub mod e31_overhead;
pub mod e32_hotpath;
pub mod e33_serve;
pub mod e34_chaos;
pub mod e35_cache;
pub mod e36_scale;

use autotune::{Objective, Target};
use autotune_optimizer::Optimizer;
use autotune_sim::{DbmsSim, Environment, RedisSim, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tutorial's running example target: Redis P95 vs the scheduler knob.
pub(crate) fn redis_target() -> Target {
    Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    )
}

/// The DBMS workhorse target (TPC-C-like, latency objective). Offered
/// load is set so decently-tuned configs serve it below saturation while
/// bad ones overload — latency then separates configurations cleanly.
pub(crate) fn dbms_target() -> Target {
    Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpcc(500.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    )
}

/// Runs an ask/tell campaign and returns the best-so-far curve.
pub(crate) fn run_campaign(
    opt: &mut dyn Optimizer,
    target: &Target,
    budget: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    let mut curve = Vec::with_capacity(budget);
    for _ in 0..budget {
        let cfg = opt.suggest(&mut rng);
        let e = target.evaluate(&cfg, &mut rng);
        opt.observe(&cfg, e.cost);
        if e.cost.is_finite() {
            best = best.min(e.cost);
        }
        curve.push(best);
    }
    curve
}

/// Mean best-so-far curve over seeds.
pub(crate) fn mean_curve(
    make_opt: impl Fn() -> Box<dyn Optimizer>,
    make_target: impl Fn() -> Target,
    budget: usize,
    seeds: std::ops::Range<u64>,
) -> Vec<f64> {
    let n = seeds.clone().count() as f64;
    let mut acc = vec![0.0; budget];
    for seed in seeds {
        let mut opt = make_opt();
        let target = make_target();
        let curve = run_campaign(opt.as_mut(), &target, budget, seed);
        for (a, c) in acc.iter_mut().zip(&curve) {
            *a += c / n;
        }
    }
    acc
}

/// First index (1-based) at which a curve reaches `target`, if ever.
pub(crate) fn trials_to_reach(curve: &[f64], target: f64) -> Option<usize> {
    curve.iter().position(|&c| c <= target).map(|i| i + 1)
}

//! D1 fixture: wall-clock reads in library code.
use std::time::{Instant, SystemTime};

pub fn elapsed_s(start: Instant) -> f64 {
    let now = Instant::now();
    now.duration_since(start).as_secs_f64()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}

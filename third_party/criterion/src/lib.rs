//! Offline stub of `criterion` (see `third_party/README.md`).
//!
//! Compiles the workspace's benches and runs each benchmark a small,
//! fixed number of iterations, printing mean wall-clock time. No
//! statistical analysis, warm-up control, or HTML reports.

use std::time::Instant;

pub use std::hint::black_box;

const ITERS: u32 = 10;

/// Benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Times a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Times one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }
}

/// Passed to benchmark closures; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `f` over the stub's fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 1,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns / u128::from(b.iters.max(1));
    println!("  {id}: {per_iter} ns/iter (n={})", b.iters);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Cache-first tenant routing over a durable campaign registry.
//!
//! The paper's amortization premise: in a fleet, most incoming workloads
//! resemble one already tuned, so request-time serving should consult a
//! config cache first and fall back to a fresh campaign only on a genuine
//! miss. [`TenantRouter`] is that front door:
//!
//! * a lookup carries a workload fingerprint; the
//!   [`ShardedCache`] routes it to a workload family and answers hits
//!   instantly with the family's tuned incumbent;
//! * a miss enqueues the supplied [`CampaignSpec`] through the
//!   [`DurableRegistry`] admission path (durable before the miss is
//!   acknowledged) and the campaign's best trial is **backfilled** into
//!   the cache when it completes;
//! * misses are **single-flight per family**: concurrent tenants of the
//!   same family share one in-flight campaign instead of stampeding the
//!   worker pool.
//!
//! # Durability and replay
//!
//! Cache state is not checkpointed — it is *re-derived*. Every routing
//! operation is journaled as a compact [`RouterOp`] in the registry WAL's
//! auxiliary stream ([`DurableRegistry::append_aux`]), and
//! [`TenantRouter::open`] replays the ops in order against a fresh cache.
//! Because the cache is a pure function of its operation sequence
//! (seeded clustering, logical-tick LRU, `BTreeMap` shards), replay
//! rebuilds the exact pre-crash hit/miss behavior — including tick
//! counters and eviction decisions — as long as hits are journaled
//! ([`RouterConfig::journal_hits`], the default).
//!
//! Crash windows are safe by ordering: the `Lookup` op lands before the
//! admission write (so a shed request replays as the same clustering
//! mutation), the campaign registration is durable before the `Admit` op
//! (an orphaned campaign self-heals because the fingerprint-derived
//! idempotency key makes the retry land on it), and the `Backfill` op is
//! journaled only after the campaign's completion is durable (a finished
//! campaign's best trial is stable, so replay at any position agrees).

use crate::durability::{DurableRegistry, DurableRound, RecoveryReport, WalConfig};
use crate::protocol::{
    pipe, Client, PipeEnd, Request, Response, ServeBackend, Server, ServerConfig,
};
use crate::registry::{AdmissionConfig, CampaignRegistry, FleetStats, ServeError};
use crate::spec::CampaignSpec;
use autotune::MetricsSnapshot;
use autotune_cache::{fingerprint_key, CacheHit, CacheLookup, CacheStats, ShardedCache};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

pub use autotune_cache::CacheConfig;

/// Auxiliary-journal key for the router's op stream.
const OPS_KEY: &str = "router-ops";
/// Auxiliary-journal key for the router's pinned configuration.
const CONFIG_KEY: &str = "router-config";
/// Salt folded into the fingerprint key to form campaign idempotency
/// keys, so router-issued request ids cannot collide with client-chosen
/// ones built from small integers.
const REQUEST_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Shape and policy of a [`TenantRouter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// The config cache's shape (clustering threshold, shards, capacity,
    /// eviction policy). Pinned into the WAL at create time; `open`
    /// reads it back, so a recovered router cannot silently diverge.
    pub cache: CacheConfig,
    /// Journal cache hits too, not just misses. Required for byte-exact
    /// replay (hits advance the LRU clock and entry heat, which eviction
    /// decisions depend on); turn off only when recovery fidelity of
    /// *eviction order* does not matter and journal volume does.
    pub journal_hits: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            cache: CacheConfig::default(),
            journal_hits: true,
        }
    }
}

/// One journaled routing operation. Replayed in append order by
/// [`TenantRouter::open`] to rebuild cache + routing state.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RouterOp {
    /// A lookup was served (hit) or classified (miss). Replay re-runs
    /// the cache lookup, which re-derives the same hit/miss and, on a
    /// miss, the same clustering mutation.
    Lookup { features: Vec<f64> },
    /// A miss admitted (or idempotently re-joined) a tuning campaign
    /// for a family.
    Admit {
        campaign: u64,
        family: u64,
        features: Vec<f64>,
    },
    /// A completed campaign's best trial was folded into the cache.
    Backfill { campaign: u64 },
}

/// A pending cache fill: the family and exact fingerprint a campaign
/// was admitted for.
#[derive(Debug, Clone)]
struct PendingFill {
    family: u64,
    features: Vec<f64>,
}

/// Outcome of [`TenantRouter::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum RouterLookup {
    /// Served from the config cache.
    Hit(CacheHit),
    /// No cached config; a tuning campaign covers this family.
    Miss {
        /// The covering campaign's registry id.
        campaign: u64,
        /// True when this miss admitted the campaign; false when it
        /// joined one already in flight for the family.
        enqueued: bool,
    },
}

/// Cache-first request router over a [`DurableRegistry`]. See the
/// module docs for the serving flow and the durability argument.
pub struct TenantRouter {
    durable: DurableRegistry,
    cache: Arc<ShardedCache>,
    config: RouterConfig,
    /// campaign id → the fill it owes the cache.
    pending: BTreeMap<u64, PendingFill>,
    /// family → campaign currently tuning it (single-flight).
    inflight: BTreeMap<u64, u64>,
}

impl TenantRouter {
    /// Creates a fresh router writing its WAL to `dir` (created if
    /// missing; must not already hold segments). The router config is
    /// pinned into the journal so recovery rebuilds the same cache.
    pub fn create(
        dir: impl Into<PathBuf>,
        workers: usize,
        wal: WalConfig,
        config: RouterConfig,
    ) -> Result<Self, ServeError> {
        let mut durable = DurableRegistry::create(dir, workers, wal)?;
        let json = serde_json::to_string(&config)
            .map_err(|e| ServeError::Storage(format!("encode router config: {e}")))?;
        durable.append_aux(CONFIG_KEY, json)?;
        let cache = Arc::new(ShardedCache::new(config.cache.clone()));
        Ok(TenantRouter {
            durable,
            cache,
            config,
            pending: BTreeMap::new(),
            inflight: BTreeMap::new(),
        })
    }

    /// Reopens a router from its WAL: recovers the campaign fleet, reads
    /// the pinned [`RouterConfig`], and replays the journaled op stream
    /// against a fresh cache, rebuilding the exact pre-crash hit/miss
    /// state (see the module docs).
    pub fn open(
        dir: impl Into<PathBuf>,
        workers: usize,
        wal: WalConfig,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        let (durable, report) = DurableRegistry::open(dir, workers, wal)?;
        let config_json = durable
            .aux_log(CONFIG_KEY)
            .first()
            .copied()
            .ok_or_else(|| {
                ServeError::Storage("WAL holds no router config record; not a router WAL".into())
            })?
            .to_string();
        let config: RouterConfig = serde_json::from_str(&config_json)
            .map_err(|e| ServeError::Storage(format!("decode router config: {e}")))?;
        let ops = durable
            .aux_log(OPS_KEY)
            .iter()
            .map(|json| serde_json::from_str::<RouterOp>(json))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ServeError::Storage(format!("decode router op: {e}")))?;
        let cache = Arc::new(ShardedCache::new(config.cache.clone()));
        let mut router = TenantRouter {
            durable,
            cache,
            config,
            pending: BTreeMap::new(),
            inflight: BTreeMap::new(),
        };
        for op in ops {
            router.replay(op)?;
        }
        Ok((router, report))
    }

    /// Applies admission limits to the underlying registry.
    pub fn set_admission(&mut self, admission: AdmissionConfig) {
        self.durable.set_admission(admission);
    }

    /// The shared config cache. Clone the `Arc` to serve lookups from
    /// other threads while this handle drives campaigns.
    pub fn cache(&self) -> &Arc<ShardedCache> {
        &self.cache
    }

    /// The router's pinned configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The underlying durable registry.
    pub fn durable(&self) -> &DurableRegistry {
        &self.durable
    }

    /// The wrapped campaign registry (stats, snapshots).
    pub fn registry(&self) -> &CampaignRegistry {
        self.durable.registry()
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Campaigns admitted but not yet backfilled into the cache.
    pub fn pending_backfills(&self) -> usize {
        self.pending.len()
    }

    /// Merged campaign telemetry with the cache counters folded in.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut merged = self.durable.registry().merged_metrics();
        let stats = self.cache.stats();
        merged.cache_hits = stats.hits;
        merged.cache_misses = stats.misses;
        merged.cache_evictions = stats.evictions;
        merged.cache_backfills = stats.backfills;
        merged
    }

    fn journal_op(&mut self, op: &RouterOp) -> Result<(), ServeError> {
        let json = serde_json::to_string(op)
            .map_err(|e| ServeError::Storage(format!("encode router op: {e}")))?;
        self.durable.append_aux(OPS_KEY, json)
    }

    /// Serves one tenant request: a cache hit answers instantly; a miss
    /// admits `spec` through the durable registry (or joins the family's
    /// in-flight campaign) and the cache is backfilled when it completes.
    ///
    /// Admission sheds surface as [`ServeError::Overloaded`]; the
    /// clustering mutation is journaled before admission, so a shed
    /// request still replays identically.
    pub fn lookup(
        &mut self,
        features: &[f64],
        spec: &CampaignSpec,
    ) -> Result<RouterLookup, ServeError> {
        if let CacheLookup::Hit(hit) = self.cache.lookup(features) {
            if self.config.journal_hits {
                self.journal_op(&RouterOp::Lookup {
                    features: features.to_vec(),
                })?;
            }
            return Ok(RouterLookup::Hit(hit));
        }
        self.journal_op(&RouterOp::Lookup {
            features: features.to_vec(),
        })?;
        let assignment = self.cache.admit_family(features);
        let family = assignment.family as u64;
        if let Some(&campaign) = self.inflight.get(&family) {
            return Ok(RouterLookup::Miss {
                campaign,
                enqueued: false,
            });
        }
        // The idempotency key is a pure function of the fingerprint: a
        // crash between the (durable) registration and the Admit op
        // leaves an orphan campaign that the next miss of this tenant
        // re-joins instead of double-creating.
        let request_id = fingerprint_key(features) ^ REQUEST_SALT;
        let campaign = self.durable.admit_spec(spec, Some(request_id))?;
        self.journal_op(&RouterOp::Admit {
            campaign,
            family,
            features: features.to_vec(),
        })?;
        self.pending.insert(
            campaign,
            PendingFill {
                family,
                features: features.to_vec(),
            },
        );
        self.inflight.insert(family, campaign);
        Ok(RouterLookup::Miss {
            campaign,
            enqueued: true,
        })
    }

    /// One durable scheduling round, then backfills the cache from every
    /// pending campaign that completed during it.
    pub fn step_round(&mut self) -> Result<DurableRound, ServeError> {
        let round = self.durable.step_round()?;
        self.backfill_completed()?;
        Ok(round)
    }

    /// Runs rounds until the fleet drains; returns rounds executed.
    pub fn run_all(&mut self) -> Result<u64, ServeError> {
        let mut rounds = 0;
        while self.durable.registry().has_runnable() {
            self.step_round()?;
            rounds += 1;
        }
        Ok(rounds)
    }

    /// Folds every completed-but-pending campaign's best trial into the
    /// cache; returns how many fills landed.
    fn backfill_completed(&mut self) -> Result<u64, ServeError> {
        let completed: Vec<u64> = self
            .pending
            .keys()
            .copied()
            .filter(|&id| {
                self.durable
                    .registry()
                    .stats(id)
                    .map(|s| s.done || s.stopped)
                    .unwrap_or(false)
            })
            .collect();
        let mut filled = 0;
        for id in completed {
            if self.apply_backfill(id, true)? {
                filled += 1;
            }
        }
        Ok(filled)
    }

    /// Applies one backfill. When `journal` is set the op is made
    /// durable *before* the cache mutation: a completed campaign's best
    /// trial is stable, so replaying the op at any later position
    /// re-derives the same fill.
    fn apply_backfill(&mut self, campaign: u64, journal: bool) -> Result<bool, ServeError> {
        let Some(fill) = self.pending.get(&campaign).cloned() else {
            return Ok(false);
        };
        let best = self
            .durable
            .registry()
            .campaign(campaign)?
            .storage()
            .best()
            .map(|t| (t.config.clone(), t.cost));
        if journal {
            self.journal_op(&RouterOp::Backfill { campaign })?;
        }
        let filled = if let Some((config, cost)) = best {
            self.cache
                .insert(fill.family as usize, &fill.features, config, cost);
            true
        } else {
            // Every trial crashed or the campaign was stopped empty:
            // nothing to cache, but the family's single-flight slot must
            // free so a later miss can retry.
            false
        };
        self.pending.remove(&campaign);
        if self.inflight.get(&fill.family) == Some(&campaign) {
            self.inflight.remove(&fill.family);
        }
        Ok(filled)
    }

    /// Re-applies one recovered journal op. Mirrors the live paths with
    /// journaling disabled (the op is already durable).
    fn replay(&mut self, op: RouterOp) -> Result<(), ServeError> {
        match op {
            RouterOp::Lookup { features } => {
                if matches!(self.cache.lookup(&features), CacheLookup::Miss { .. }) {
                    self.cache.admit_family(&features);
                }
            }
            RouterOp::Admit {
                campaign,
                family,
                features,
            } => {
                self.pending
                    .insert(campaign, PendingFill { family, features });
                self.inflight.insert(family, campaign);
            }
            RouterOp::Backfill { campaign } => {
                self.apply_backfill(campaign, false)?;
            }
        }
        Ok(())
    }

    fn serve_rounds(&mut self, budget: u64) -> Result<Response, ServeError> {
        let mut run = 0;
        while run < budget && self.durable.registry().has_runnable() {
            self.step_round()?;
            run += 1;
        }
        Ok(Response::Stepped {
            rounds: run,
            n_active: self.durable.registry().n_active() as u64,
        })
    }
}

impl ServeBackend for TenantRouter {
    fn handle_request(
        &mut self,
        req: Request,
        config: &ServerConfig,
    ) -> Result<Response, ServeError> {
        Ok(match req {
            Request::Register { spec, request_id } => Response::Registered {
                id: self.durable.admit_spec(&spec, request_id)?,
            },
            Request::Lookup { features, spec } => match self.lookup(&features, &spec)? {
                RouterLookup::Hit(hit) => Response::CacheHit {
                    family: hit.family as u64,
                    config: hit.config,
                    cost: hit.cost,
                    borrowed: hit.borrowed,
                },
                RouterLookup::Miss { campaign, enqueued } => {
                    Response::CacheMiss { campaign, enqueued }
                }
            },
            Request::Step { rounds } => {
                let budget = u64::from(rounds).min(config.max_rounds_per_request);
                self.serve_rounds(budget)?
            }
            Request::RunAll => self.serve_rounds(config.max_rounds_per_request)?,
            Request::Snapshot { id } => Response::Snapshot {
                snapshot: self.durable.registry().snapshot(id)?,
            },
            Request::Stats { id } => Response::Stats {
                stats: self.durable.registry().stats(id)?,
            },
            Request::FleetStats => Response::Fleet {
                stats: self.durable.registry().fleet_stats(),
            },
            Request::Stop { id } => Response::Stopped {
                was_active: self.durable.stop(id)?,
            },
            Request::Shutdown => Response::Bye,
        })
    }
}

/// What [`spawn_router_server`]'s thread yields on join: the final fleet
/// and cache stats, or the error that stopped the server.
pub type RouterServerHandle = std::thread::JoinHandle<Result<(FleetStats, CacheStats), ServeError>>;

/// Spawns a router server thread over an in-process pipe; the join
/// handle yields the final fleet and cache stats. `builder` runs inside
/// the server thread (campaigns are not `Send`) and may fail — e.g. a
/// WAL directory that refuses to open — which surfaces through the
/// handle.
pub fn spawn_router_server(
    builder: impl FnOnce() -> Result<TenantRouter, ServeError> + Send + 'static,
) -> (Client<PipeEnd>, RouterServerHandle) {
    let (client_end, server_end) = pipe();
    let handle = std::thread::spawn(move || {
        let router = builder()?;
        Server::new(server_end, router)
            .serve()
            .map(|r| (r.registry().fleet_stats(), r.cache_stats()))
    });
    (Client::new(client_end), handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LookupReply;
    use crate::spec::SystemKind;
    use autotune::SchedulePolicy;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "autotune-router-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(name: &str, seed: u64) -> CampaignSpec {
        let mut s = CampaignSpec::minimal(name.to_string(), SystemKind::Redis, 6, seed);
        s.policy = SchedulePolicy::AsyncSlots { k: 2 };
        s
    }

    fn tight_config() -> RouterConfig {
        RouterConfig {
            cache: CacheConfig {
                threshold: 1.0,
                n_shards: 4,
                capacity_per_shard: 8,
                hot_window: 1000,
            },
            journal_hits: true,
        }
    }

    #[test]
    fn miss_tunes_then_hit_serves_best_config() {
        let dir = temp_dir("miss-hit");
        let mut router =
            TenantRouter::create(&dir, 2, WalConfig::default(), tight_config()).unwrap();
        let fp = [3.0, 3.0];
        let out = router.lookup(&fp, &spec("t0", 7)).unwrap();
        let RouterLookup::Miss { campaign, enqueued } = out else {
            panic!("expected miss, got {out:?}");
        };
        assert!(enqueued);
        router.run_all().unwrap();
        assert_eq!(router.pending_backfills(), 0);
        let best = router.registry().stats(campaign).unwrap().best_cost;
        match router.lookup(&fp, &spec("t0", 7)).unwrap() {
            RouterLookup::Hit(hit) => {
                assert_eq!(hit.cost.to_bits(), best.to_bits());
                assert!(!hit.borrowed);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let m = router.merged_metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_backfills, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misses_are_single_flight_per_family() {
        let dir = temp_dir("single-flight");
        let mut router =
            TenantRouter::create(&dir, 1, WalConfig::default(), tight_config()).unwrap();
        // Two tenants of the same family (within threshold of each other).
        let a = [0.0, 0.0];
        let b = [0.2, 0.0];
        let RouterLookup::Miss {
            campaign: c1,
            enqueued: e1,
        } = router.lookup(&a, &spec("a", 1)).unwrap()
        else {
            panic!("expected miss");
        };
        let RouterLookup::Miss {
            campaign: c2,
            enqueued: e2,
        } = router.lookup(&b, &spec("b", 2)).unwrap()
        else {
            panic!("expected miss");
        };
        assert!(e1);
        assert!(!e2, "second miss must join the in-flight campaign");
        assert_eq!(c1, c2);
        assert_eq!(router.registry().fleet_stats().n_campaigns, 1);
        router.run_all().unwrap();
        // The borrowed incumbent now answers both tenants.
        assert!(matches!(
            router.lookup(&a, &spec("a", 1)).unwrap(),
            RouterLookup::Hit(_)
        ));
        match router.lookup(&b, &spec("b", 2)).unwrap() {
            RouterLookup::Hit(hit) => assert!(hit.borrowed),
            other => panic!("expected borrowed hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_replays_byte_identical_cache_state() {
        let dir = temp_dir("replay");
        let mut router =
            TenantRouter::create(&dir, 2, WalConfig::default(), tight_config()).unwrap();
        let tenants = [[0.0, 0.0], [5.0, 0.0], [0.2, 0.0], [0.0, 5.0]];
        for (i, fp) in tenants.iter().enumerate() {
            router
                .lookup(fp, &spec(&format!("t{i}"), i as u64))
                .unwrap();
        }
        router.run_all().unwrap();
        // A mixed hit/miss tail so the journal carries hits too.
        for fp in tenants.iter().chain(tenants.iter()) {
            router.lookup(fp, &spec("tail", 99)).unwrap();
        }
        let live = router.cache.snapshot();
        drop(router);
        let (reopened, report) = TenantRouter::open(&dir, 2, WalConfig::default()).unwrap();
        assert!(report.records_read > 0);
        assert_eq!(
            serde_json::to_string(&reopened.cache.snapshot()).unwrap(),
            serde_json::to_string(&live).unwrap(),
            "replayed cache must be byte-identical"
        );
        assert_eq!(reopened.pending_backfills(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_mid_campaign_resumes_pending_backfill() {
        let dir = temp_dir("mid");
        let mut router =
            TenantRouter::create(&dir, 1, WalConfig::default(), tight_config()).unwrap();
        let fp = [1.0, 1.0];
        router.lookup(&fp, &spec("t0", 3)).unwrap();
        // One round only: the campaign is still live, the fill pending.
        router.step_round().unwrap();
        assert_eq!(router.pending_backfills(), 1);
        drop(router);
        let (mut reopened, _) = TenantRouter::open(&dir, 1, WalConfig::default()).unwrap();
        assert_eq!(reopened.pending_backfills(), 1);
        // A repeat miss joins the recovered in-flight campaign.
        assert!(matches!(
            reopened.lookup(&fp, &spec("t0", 3)).unwrap(),
            RouterLookup::Miss {
                enqueued: false,
                ..
            }
        ));
        reopened.run_all().unwrap();
        assert_eq!(reopened.pending_backfills(), 0);
        assert!(matches!(
            reopened.lookup(&fp, &spec("t0", 3)).unwrap(),
            RouterLookup::Hit(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_miss_replays_consistently() {
        let dir = temp_dir("shed");
        let mut router =
            TenantRouter::create(&dir, 1, WalConfig::default(), tight_config()).unwrap();
        router.set_admission(AdmissionConfig {
            max_active: 1,
            max_pending: 0,
        });
        let a = [0.0, 0.0];
        let b = [8.0, 0.0]; // different family → wants a second campaign
        assert!(matches!(
            router.lookup(&a, &spec("a", 1)).unwrap(),
            RouterLookup::Miss { .. }
        ));
        match router.lookup(&b, &spec("b", 2)) {
            Err(ServeError::Overloaded { .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let families_live = router.cache_stats().families;
        drop(router);
        // The shed lookup's clustering mutation was journaled before
        // admission, so the replayed model matches the live one.
        let (reopened, _) = TenantRouter::open(&dir, 1, WalConfig::default()).unwrap();
        assert_eq!(reopened.cache_stats().families, families_live);
        assert_eq!(reopened.pending_backfills(), 1, "only the admitted miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_flows_through_the_protocol() {
        let dir = temp_dir("proto");
        let (mut client, handle) = spawn_router_server(move || {
            TenantRouter::create(&dir, 2, WalConfig::default(), tight_config())
        });
        let fp = [2.0, 2.0];
        let miss = client.lookup(&fp, &spec("t0", 11)).unwrap();
        let LookupReply::Miss { campaign, enqueued } = miss else {
            panic!("expected miss, got {miss:?}");
        };
        assert!(enqueued);
        client.run_all().unwrap();
        let best = client.stats(campaign).unwrap().best_cost;
        match client.lookup(&fp, &spec("t0", 11)).unwrap() {
            LookupReply::Hit { cost, borrowed, .. } => {
                assert_eq!(cost.to_bits(), best.to_bits());
                assert!(!borrowed);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        client.shutdown().unwrap();
        let (fleet, cache) = handle.join().unwrap().unwrap();
        assert_eq!(fleet.n_done, 1);
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn plain_registry_server_rejects_lookup() {
        let (mut client, handle) = crate::protocol::spawn_server(|| CampaignRegistry::new(1));
        let err = client.lookup(&[1.0], &spec("t", 1)).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)));
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}

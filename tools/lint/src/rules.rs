//! The six invariant diagnostics, matched over the token stream.
//!
//! | code | invariant | exempt |
//! |------|-----------|--------|
//! | D1 | no wall-clock reads (`Instant::now`, `SystemTime::now`) — time enters through an injected `WallTimer` | bench, tests |
//! | D2 | no `HashMap`/`HashSet` — hash iteration order leaks into RNG-consuming paths; use `BTreeMap`/`BTreeSet` | bench, tests |
//! | D3 | no unseeded randomness (`thread_rng`, `from_entropy`, `rand::random`, `OsRng`) | bench, tests |
//! | D4 | no NaN-panicking float comparisons (`partial_cmp(..).unwrap()/expect()/unwrap_or(..)`) — use `total_cmp` | tests |
//! | D5 | no `.unwrap()`/`.expect()`/`panic!`-family in library paths — return `Result` or allow with a reason | bench, tests |
//! | D6 | no `println!`/`eprintln!`/`dbg!` in library crates — route through telemetry | bench, tests |
//!
//! Each rule reports at the line of its anchor token and honours the
//! `// lint: allow(Dx) <reason>` escape hatch on that exact line.

use crate::allow::Allows;
use crate::lexer::{Tok, TokKind};
use crate::report::Violation;

/// How a crate is classified for exemption purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// A library crate that feeds deterministic campaigns; all rules on.
    Library,
    /// The bench/experiment crate: wall-clock, randomness, panics and
    /// stdout are its job. Only D4 (NaN-safe comparisons) applies.
    Bench,
}

/// Static description of one diagnostic.
struct Rule {
    code: &'static str,
    applies_to_bench: bool,
}

const RULES: [Rule; 6] = [
    Rule {
        code: "D1",
        applies_to_bench: false,
    },
    Rule {
        code: "D2",
        applies_to_bench: false,
    },
    Rule {
        code: "D3",
        applies_to_bench: false,
    },
    Rule {
        code: "D4",
        applies_to_bench: true,
    },
    Rule {
        code: "D5",
        applies_to_bench: false,
    },
    Rule {
        code: "D6",
        applies_to_bench: false,
    },
];

/// Runs every applicable rule over a lexed file.
///
/// `mask[i]` is the in-test flag for `toks[i]` (see [`crate::scope`]);
/// `allows` records which findings were suppressed.
pub fn check(
    file: &str,
    kind: CrateKind,
    toks: &[Tok],
    mask: &[bool],
    allows: &mut Allows,
) -> (Vec<Violation>, Vec<(&'static str, u32)>) {
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    // Dense index of non-comment tokens for sequence matching.
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();

    let mut emit = |code: &'static str, line: u32, message: String| {
        if allows.permits(code, line) {
            allowed.push((code, line));
        } else {
            violations.push(Violation {
                file: file.to_string(),
                line,
                code,
                message,
            });
        }
    };

    for (si, &ti) in sig.iter().enumerate() {
        if mask[ti] {
            continue; // test code is exempt from every rule
        }
        let t = &toks[ti];
        let enabled = |code: &str| {
            kind == CrateKind::Library || RULES.iter().any(|r| r.code == code && r.applies_to_bench)
        };

        // D1: wall-clock reads.
        if enabled("D1")
            && (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && seq_is(toks, &sig, si + 1, &[":", ":", "now"])
        {
            emit(
                "D1",
                t.line,
                format!(
                    "wall-clock read `{}::now()` — inject a WallTimer (core::telemetry) instead",
                    t.text
                ),
            );
        }

        // D2: hash-ordered containers.
        if enabled("D2") && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            emit(
                "D2",
                t.line,
                format!(
                    "`{}` in a deterministic crate — hash iteration order leaks into \
                     RNG-consuming paths; use BTreeMap/BTreeSet or a sorted drain",
                    t.text
                ),
            );
        }

        // D3: unseeded randomness.
        if enabled("D3") {
            if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("OsRng") {
                emit(
                    "D3",
                    t.line,
                    format!(
                        "unseeded randomness `{}` — derive every stream from the campaign seed",
                        t.text
                    ),
                );
            } else if t.is_ident("rand") && seq_is(toks, &sig, si + 1, &[":", ":", "random"]) {
                emit(
                    "D3",
                    t.line,
                    "unseeded randomness `rand::random` — derive every stream from the campaign \
                     seed"
                        .to_string(),
                );
            }
        }

        // D4: NaN-panicking (or NaN-inconsistent) float comparisons.
        if enabled("D4") && t.is_ident("partial_cmp") {
            if let Some(method) = panicky_suffix(toks, &sig, si) {
                emit(
                    "D4",
                    t.line,
                    format!(
                        "`partial_cmp(..).{method}(..)` is NaN-unsafe — use `f64::total_cmp` \
                         (or filter non-finite values first)"
                    ),
                );
            }
        }

        // D5: panicking calls in library paths.
        if enabled("D5") {
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && si > 0
                && toks[sig[si - 1]].is_punct('.')
                && seq_is(toks, &sig, si + 1, &["("])
                && !follows_partial_cmp(toks, &sig, si)
            {
                emit(
                    "D5",
                    t.line,
                    format!(
                        "`.{}()` in a library code path — return a Result, or allow with a \
                         proven-infallible reason",
                        t.text
                    ),
                );
            }
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && seq_is(toks, &sig, si + 1, &["!"])
            {
                emit(
                    "D5",
                    t.line,
                    format!(
                        "`{}!` in a library code path — return a Result, or allow with a \
                         proven-infallible reason",
                        t.text
                    ),
                );
            }
        }

        // D6: stdout/stderr writes from library crates.
        if enabled("D6")
            && t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
            && seq_is(toks, &sig, si + 1, &["!"])
        {
            emit(
                "D6",
                t.line,
                format!(
                    "`{}!` in a library crate — route output through telemetry",
                    t.text
                ),
            );
        }
    }

    // Allow hygiene: malformed allows and allows that suppressed nothing
    // are violations themselves, so suppressions cannot rot in place.
    for m in &allows.malformed {
        violations.push(Violation {
            file: file.to_string(),
            line: m.line,
            code: "A1",
            message: format!("malformed lint allow: {}", m.problem),
        });
    }
    for (a, dead) in allows.unused() {
        violations.push(Violation {
            file: file.to_string(),
            line: a.line,
            code: "A2",
            message: format!(
                "unused lint allow({}) — the diagnostic no longer fires on this line",
                dead.join(", ")
            ),
        });
    }
    violations.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    (violations, allowed)
}

/// True when the non-comment tokens starting at dense index `si` spell the
/// given texts (idents or single-char puncts).
fn seq_is(toks: &[Tok], sig: &[usize], si: usize, texts: &[&str]) -> bool {
    texts.iter().enumerate().all(|(k, want)| {
        sig.get(si + k).is_some_and(|&ti| {
            let t = &toks[ti];
            match t.kind {
                TokKind::Ident | TokKind::Punct => t.text == *want,
                _ => false,
            }
        })
    })
}

/// If `partial_cmp` at dense index `si` is followed by its argument list
/// and then `.unwrap/.expect/.unwrap_or/.unwrap_or_else`, returns that
/// method name.
fn panicky_suffix(toks: &[Tok], sig: &[usize], si: usize) -> Option<&'static str> {
    let mut j = si + 1;
    if !sig.get(j).is_some_and(|&ti| toks[ti].is_punct('(')) {
        return None;
    }
    let mut depth = 0usize;
    while let Some(&ti) = sig.get(j) {
        if toks[ti].is_punct('(') {
            depth += 1;
        } else if toks[ti].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    if !sig.get(j).is_some_and(|&ti| toks[ti].is_punct('.')) {
        return None;
    }
    let ti = *sig.get(j + 1)?;
    for m in ["unwrap_or_else", "unwrap_or", "unwrap", "expect"] {
        if toks[ti].is_ident(m) {
            return Some(match m {
                "unwrap_or_else" => "unwrap_or_else",
                "unwrap_or" => "unwrap_or",
                "unwrap" => "unwrap",
                _ => "expect",
            });
        }
    }
    None
}

/// True when the `.unwrap`/`.expect` at dense index `si` terminates a
/// `partial_cmp(..)` chain — that site is already reported as D4 (the fix
/// is `total_cmp`, not a Result), so D5 stays quiet to avoid demanding two
/// allows for one defect.
fn follows_partial_cmp(toks: &[Tok], sig: &[usize], si: usize) -> bool {
    // sig[si] is `unwrap`/`expect`; sig[si-1] is `.`; sig[si-2] should be
    // the `)` closing the partial_cmp argument list.
    if si < 2 {
        return false;
    }
    let mut j = si - 2;
    if !toks[sig[j]].is_punct(')') {
        return false;
    }
    let mut depth = 0usize;
    loop {
        let t = &toks[sig[j]];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    j > 0 && toks[sig[j - 1]].is_ident("partial_cmp")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allow, lexer, scope};

    fn run(kind: CrateKind, src: &str) -> Vec<String> {
        let toks = lexer::lex(src);
        let mask = scope::test_mask(&toks);
        let mut allows = allow::collect(&toks);
        let (violations, _) = check("f.rs", kind, &toks, &mask, &mut allows);
        violations.into_iter().map(|v| format!("{v}")).collect()
    }

    fn codes(kind: CrateKind, src: &str) -> Vec<String> {
        run(kind, src)
            .iter()
            .map(|l| l.split(": ").nth(1).expect("code field").to_string())
            .collect()
    }

    #[test]
    fn d1_fires_outside_tests_only() {
        let src = "fn f() { let t = Instant::now(); }\n#[cfg(test)]\nmod tests { fn g() { let t = Instant::now(); } }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D1"]);
    }

    #[test]
    fn d4_applies_to_bench_but_d5_does_not() {
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); ys.last().unwrap(); }";
        assert_eq!(codes(CrateKind::Bench, src), vec!["D4"]);
        assert_eq!(codes(CrateKind::Library, src), vec!["D4", "D5"]);
    }

    #[test]
    fn d4_subsumes_the_trailing_unwrap() {
        // One defect, one diagnostic: the unwrap that terminates a
        // partial_cmp chain is not double-reported as D5.
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\")); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D4"]);
    }

    #[test]
    fn d4_catches_unwrap_or_equal() {
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D4"]);
    }

    #[test]
    fn allow_suppresses_only_its_line() {
        let src = "fn f() {\n a.unwrap(); // lint: allow(D5) proven nonempty\n b.unwrap();\n}";
        let out = run(CrateKind::Library, src);
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("f.rs:3: D5"), "{out:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "fn f() { x(); } // lint: allow(D5) nothing here\n";
        assert_eq!(codes(CrateKind::Library, src), vec!["A2"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src =
            "fn f() { let s = \"Instant::now() .unwrap() panic!\"; }\n// Instant::now() in prose\n";
        assert!(run(CrateKind::Library, src).is_empty());
    }

    #[test]
    fn d2_d3_d6_basics() {
        let src =
            "use std::collections::HashMap;\nfn f() { let r = thread_rng(); println!(\"x\"); }";
        assert_eq!(codes(CrateKind::Library, src), vec!["D2", "D3", "D6"]);
        assert!(run(CrateKind::Bench, src).is_empty());
    }
}

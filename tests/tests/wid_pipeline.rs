//! Cross-crate integration: workload identification over simulator
//! telemetry (sim -> fingerprints -> embeddings -> clusters -> config
//! store -> shift detection -> synthetic mixtures).

use autotune_sim::{DbmsSim, Environment, SimSystem, Workload};
use autotune_wid::{
    purity, synthesize_mixture, ConfigStore, Embedder, EmbedderKind, Fingerprint, KMeans,
    ShiftDetector, ShiftDetectorConfig, StoredConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fingerprint(sim: &DbmsSim, w: &Workload, env: &Environment, rng: &mut StdRng) -> Fingerprint {
    let r = sim.run_trial(&sim.space().default_config(), w, env, rng);
    Fingerprint::from_telemetry(&r.telemetry)
}

#[test]
fn telemetry_clusters_by_workload_family() {
    let sim = DbmsSim::new();
    let env = Environment::medium();
    let mut rng = StdRng::seed_from_u64(1);
    let families = [
        Workload::ycsb_c(2_000.0),
        Workload::ycsb_a(2_000.0),
        Workload::tpch(2.0),
    ];
    let mut prints = Vec::new();
    let mut labels = Vec::new();
    for (i, w) in families.iter().enumerate() {
        for _ in 0..12 {
            prints.push(fingerprint(&sim, w, &env, &mut rng));
            labels.push(i);
        }
    }
    for kind in [
        EmbedderKind::Pca,
        EmbedderKind::RandomProjection { seed: 3 },
    ] {
        let emb = Embedder::fit(&prints, 4, kind).expect("corpus is big enough");
        let points = emb.embed_all(&prints).expect("all embed");
        let km = KMeans::fit(&points, 3, 8).expect("enough points");
        let p = purity(km.assignments(), &labels);
        assert!(p >= 0.9, "{kind:?}: purity {p} too low");
    }
}

#[test]
fn config_store_recommends_by_embedding() {
    let sim = DbmsSim::new();
    let env = Environment::medium();
    let mut rng = StdRng::seed_from_u64(2);
    let read = Workload::ycsb_c(2_000.0);
    let scan = Workload::tpch(2.0);
    let corpus: Vec<Fingerprint> = (0..10)
        .map(|i| {
            let w = if i % 2 == 0 { &read } else { &scan };
            fingerprint(&sim, w, &env, &mut rng)
        })
        .collect();
    let emb = Embedder::fit(&corpus, 3, EmbedderKind::Pca).expect("fits");
    let mut store = ConfigStore::new();
    for (label, w) in [("read", &read), ("scan", &scan)] {
        let fp = fingerprint(&sim, w, &env, &mut rng);
        store.insert(StoredConfig {
            label: label.into(),
            embedding: emb.embed(&fp).expect("embeds"),
            config: sim.space().default_config(),
            score: 1.0,
        });
    }
    // Fresh instances match their family.
    for (label, w) in [("read", &read), ("scan", &scan)] {
        let fp = fingerprint(&sim, w, &env, &mut rng);
        let got = store
            .nearest(&emb.embed(&fp).expect("embeds"))
            .expect("store non-empty")
            .0;
        assert_eq!(got.label, label);
    }
}

#[test]
fn shift_detector_fires_on_family_change_only() {
    let sim = DbmsSim::new();
    let env = Environment::medium();
    let mut rng = StdRng::seed_from_u64(3);
    let mut det = ShiftDetector::new(ShiftDetectorConfig::default());
    // 50 stationary windows, then a family change.
    for _ in 0..50 {
        let fp = fingerprint(&sim, &Workload::ycsb_c(2_000.0), &env, &mut rng);
        det.observe(fp.features());
    }
    assert!(
        det.shifts().is_empty(),
        "false alarm during stationary phase"
    );
    let mut fired_at = None;
    for t in 0..15 {
        let fp = fingerprint(&sim, &Workload::tpch(2.0), &env, &mut rng);
        if det.observe(fp.features()) {
            fired_at = Some(t);
            break;
        }
    }
    assert!(
        fired_at.is_some_and(|t| t <= 5),
        "shift not detected promptly: {fired_at:?}"
    );
}

#[test]
fn mixture_matches_blended_telemetry() {
    let sim = DbmsSim::new();
    let env = Environment::medium();
    let mut rng = StdRng::seed_from_u64(4);
    let mean_fp = |w: &Workload, rng: &mut StdRng| {
        let fps: Vec<Fingerprint> = (0..5)
            .map(|_| fingerprint(&sim, w, env_ref(&env), rng))
            .collect();
        Fingerprint::mean_of(&fps).expect("non-empty")
    };
    fn env_ref(e: &Environment) -> &Environment {
        e
    }
    let basis = vec![
        mean_fp(&Workload::ycsb_c(2_000.0), &mut rng),
        mean_fp(&Workload::ycsb_a(2_000.0), &mut rng),
    ];
    // Target: a read-mostly blend.
    let target_w = Workload {
        read_fraction: 0.85,
        ..Workload::ycsb_a(2_000.0)
    };
    let target = mean_fp(&target_w, &mut rng);
    let (w, res) = synthesize_mixture(&basis, &target).expect("basis non-empty");
    assert!(res < 1.0, "residual {res} too large");
    // Read-mostly target => the read-only component dominates.
    assert!(
        w[0] > w[1],
        "weights {w:?} should favour the read-only basis"
    );
}

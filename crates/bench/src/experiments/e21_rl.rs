//! E21 (slides 79-80): reinforcement-learning online tuners — Q-learning
//! and actor-critic on a workload whose optimal knob setting flips with
//! the traffic class (query cache pays on read-only traffic, costs on
//! update-heavy traffic). State = observable traffic class; action =
//! cache on/off. The learned policy must be phase-dependent and beat
//! every static setting.

use crate::report::{f, Report};
use autotune::{Objective, Target};
use autotune_rl::{ActorCritic, ActorCriticConfig, QLearning, QLearningConfig};
use autotune_sim::{DbmsSim, Environment, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PHASES: usize = 2;
const STEPS_PER_PHASE: usize = 150;

fn phase_workload(p: usize) -> Workload {
    if p == 0 {
        Workload::ycsb_c(2_000.0) // read-only: cache pays
    } else {
        Workload::ycsb_a(2_000.0) // update-heavy: cache hurts
    }
}

/// Reward: negative log latency.
fn reward(target: &Target, action: usize, phase: usize, rng: &mut StdRng) -> f64 {
    let cfg = target
        .space()
        .default_config()
        .with("buffer_pool_gb", 8.0)
        .with("query_cache", action == 1);
    let e = target.evaluate_at(&cfg, Some(&phase_workload(phase)), rng);
    if e.cost.is_finite() {
        -e.cost.ln()
    } else {
        -10.0
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::ycsb_c(2_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    );
    let mut rng = StdRng::seed_from_u64(6);

    // --- Q-learning: state = traffic class ---
    let q_config = QLearningConfig {
        // The task is contextual-bandit shaped: no value in bootstrapping,
        // and slow epsilon decay keeps both actions sampled.
        gamma: 0.0,
        epsilon_decay: 0.999,
        ..Default::default()
    };
    let mut q = QLearning::new(PHASES, 2, q_config);
    let mut q_reward = 0.0;
    for phase in 0..PHASES {
        for _ in 0..STEPS_PER_PHASE {
            let a = q.select_action(phase, &mut rng);
            let r = reward(&target, a, phase, &mut rng);
            q_reward += r;
            q.update(phase, a, r, phase).expect("indices in range");
        }
    }

    // --- Actor-critic with one-hot phase features ---
    let mut ac = ActorCritic::new(PHASES, 2, ActorCriticConfig::default());
    let mut ac_reward = 0.0;
    for phase in 0..PHASES {
        let mut phi = vec![0.0; PHASES];
        phi[phase] = 1.0;
        for _ in 0..STEPS_PER_PHASE {
            let a = ac.select_action(&phi, &mut rng).expect("valid features");
            let r = reward(&target, a, phase, &mut rng);
            ac_reward += r;
            ac.update(&phi, a, r, &phi).expect("valid features");
        }
    }

    // --- Static baselines ---
    let mut static_rewards = Vec::new();
    for action in 0..2 {
        let mut total = 0.0;
        for phase in 0..PHASES {
            for _ in 0..STEPS_PER_PHASE {
                total += reward(&target, action, phase, &mut rng);
            }
        }
        static_rewards.push(total);
    }
    let best_static = static_rewards
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);

    let total_steps = (PHASES * STEPS_PER_PHASE) as f64;
    let q_policy: Vec<&str> = (0..PHASES)
        .map(|p| {
            if q.greedy_action(p) == 1 {
                "cache=on"
            } else {
                "cache=off"
            }
        })
        .collect();
    let phi0 = [1.0, 0.0];
    let phi1 = [0.0, 1.0];
    let ac_policy = [
        ac.greedy_action(&phi0).expect("valid"),
        ac.greedy_action(&phi1).expect("valid"),
    ];
    let rows = vec![
        vec!["q_learning".into(), f(q_reward / total_steps, 3)],
        vec!["actor_critic".into(), f(ac_reward / total_steps, 3)],
        vec![
            "static cache=off".into(),
            f(static_rewards[0] / total_steps, 3),
        ],
        vec![
            "static cache=on".into(),
            f(static_rewards[1] / total_steps, 3),
        ],
        vec!["q policy (read / write phase)".into(), q_policy.join(" / ")],
    ];
    // Correct policy: cache on in the read phase, off in the write phase.
    let q_correct = q.greedy_action(0) == 1 && q.greedy_action(1) == 0;
    let ac_correct = ac_policy == [1, 0];
    let shape_holds = q_correct && ac_correct && q_reward > best_static && ac_reward > best_static;
    Report {
        id: "E21",
        title: "RL online tuning: phase-dependent policy (slides 79-80)",
        headers: vec!["agent / baseline", "mean reward per step"],
        rows,
        paper_claim: "RL agents learn a workload-conditional policy and beat any static knob setting",
        measured: format!(
            "Q {} / AC {} vs best static {}; Q policy correct: {q_correct}, AC correct: {ac_correct}",
            f(q_reward / total_steps, 3),
            f(ac_reward / total_steps, 3),
            f(best_static / total_steps, 3)
        ),
        shape_holds,
    }
}

//! Offline stub of `serde_json` (see `third_party/README.md`).
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the
//! stub serde's `Content` tree. Float formatting uses Rust's shortest
//! round-trip representation, so values survive
//! serialize-then-deserialize exactly (the `float_roundtrip` feature is
//! accepted and inherently on).

mod parse;
mod write;

use serde::__private::{Content, ContentDeserializer, ContentSerializer};
use serde::{Deserialize, Serialize};

/// Error from JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

fn content_of<T: Serialize + ?Sized>(value: &T) -> Result<Content> {
    value
        .serialize(ContentSerializer::new())
        .map_err(|e| Error(e.to_string()))
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::write(&content_of(value)?, &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to human-indented JSON (two spaces, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::write(&content_of(value)?, &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let content = parse::parse(s)?;
    T::deserialize(ContentDeserializer::new(content)).map_err(|e| Error(e.to_string()))
}

//! Periodic one-line campaign status on the virtual clock.

use super::{OptEvent, Subscriber};
use crate::executor::{TrialEvent, TrialOutcome};
use std::collections::BTreeSet;
use std::io::Write;

/// A [`Subscriber`] emitting a one-line campaign status to a `Write`
/// sink every `every_s` virtual seconds (plus a closing line at campaign
/// end): trials done, best so far with the incumbent's age, failure
/// tallies, fleet health, and an ETA when a trial budget is declared.
///
/// Lines are emitted from the executor's driver thread; the reporter is a
/// pure observer and the sink sees only virtual-clock timestamps, so
/// output is deterministic for a fixed campaign.
pub struct ProgressReporter<W: Write> {
    sink: W,
    every_s: f64,
    next_s: f64,
    budget: Option<usize>,
    n_done: usize,
    n_crashed: usize,
    n_transient: usize,
    n_retries: usize,
    n_refits: usize,
    best_cost: f64,
    best_id: u64,
    quarantined: BTreeSet<usize>,
    seen_machines: BTreeSet<usize>,
}

impl<W: Write> ProgressReporter<W> {
    /// Reports to `sink` every `every_s` virtual seconds.
    pub fn new(sink: W, every_s: f64) -> Self {
        ProgressReporter {
            sink,
            every_s: every_s.max(1e-9),
            next_s: every_s.max(1e-9),
            budget: None,
            n_done: 0,
            n_crashed: 0,
            n_transient: 0,
            n_retries: 0,
            n_refits: 0,
            best_cost: f64::INFINITY,
            best_id: 0,
            quarantined: BTreeSet::new(),
            seen_machines: BTreeSet::new(),
        }
    }

    /// Declares the campaign's trial budget, enabling the ETA estimate.
    pub fn with_budget(mut self, n_trials: usize) -> Self {
        self.budget = Some(n_trials);
        self
    }

    /// Consumes the reporter, returning its sink (e.g. to inspect a
    /// `Vec<u8>` buffer in tests).
    pub fn into_sink(self) -> W {
        self.sink
    }

    fn status_line(&self, at_s: f64) -> String {
        let mut line = format!("[t {at_s:9.1}s] {} done", self.n_done);
        if let Some(b) = self.budget {
            line = format!("[t {at_s:9.1}s] {}/{b} done", self.n_done);
        }
        if self.best_cost.is_finite() {
            let age = self.n_done as u64 - self.best_id.min(self.n_done as u64);
            line += &format!(
                " | best {:.4} (trial {}, age {})",
                self.best_cost, self.best_id, age
            );
        } else {
            line += " | best n/a";
        }
        if self.n_crashed + self.n_transient + self.n_retries > 0 {
            line += &format!(
                " | crashed {} lost {} retries {}",
                self.n_crashed, self.n_transient, self.n_retries
            );
        }
        if !self.seen_machines.is_empty() {
            line += &format!(
                " | fleet {}/{} healthy",
                self.seen_machines.len() - self.quarantined.len(),
                self.seen_machines.len()
            );
        }
        if self.n_refits > 0 {
            line += &format!(" | refits {}", self.n_refits);
        }
        if let Some(b) = self.budget {
            // `n_done` can overshoot a declared budget (retried trials
            // reported past it, or a budget declared for a different unit
            // than outcomes); saturate so the remaining-count arithmetic
            // can never underflow to a garbage ETA.
            let remaining = b.saturating_sub(self.n_done);
            if self.n_done > b {
                line += " | eta ~0s";
            } else if self.n_done > 0 && remaining > 0 && at_s > 0.0 {
                let rate = self.n_done as f64 / at_s;
                line += &format!(" | eta ~{:.0}s", remaining as f64 / rate);
            }
        }
        line
    }

    fn tick(&mut self, at_s: f64) {
        while at_s >= self.next_s {
            let line = self.status_line(self.next_s);
            let _ = writeln!(self.sink, "{line}");
            self.next_s += self.every_s;
        }
    }
}

impl<W: Write> Subscriber for ProgressReporter<W> {
    fn name(&self) -> &str {
        "progress"
    }

    fn on_trial_event(&mut self, at_s: f64, event: &TrialEvent) {
        match event {
            TrialEvent::Started {
                machine_id: Some(m),
                ..
            } => {
                self.seen_machines.insert(*m);
            }
            TrialEvent::Retried { .. } => self.n_retries += 1,
            TrialEvent::Quarantined { machine_id } => {
                self.seen_machines.insert(*machine_id);
                self.quarantined.insert(*machine_id);
            }
            TrialEvent::Released { machine_id } => {
                self.quarantined.remove(machine_id);
            }
            _ => {}
        }
        self.tick(at_s);
    }

    fn on_opt_event(&mut self, _at_s: f64, event: &OptEvent) {
        if let OptEvent::SurrogateRefit { n_refits, .. } = event {
            self.n_refits = *n_refits;
        }
    }

    fn on_outcome(&mut self, at_s: f64, outcome: &TrialOutcome) {
        self.n_done += 1;
        match outcome.status {
            crate::TrialStatus::Crashed => self.n_crashed += 1,
            crate::TrialStatus::TransientFailure => self.n_transient += 1,
            _ => {}
        }
        if outcome.cost.is_finite() && outcome.cost < self.best_cost {
            self.best_cost = outcome.cost;
            self.best_id = outcome.id;
        }
        if let Some(m) = outcome.machine_id {
            self.seen_machines.insert(m);
        }
        self.tick(at_s);
    }

    fn on_campaign_end(&mut self, at_s: f64) {
        let line = self.status_line(at_s);
        let _ = writeln!(self.sink, "{line} | campaign complete");
        let _ = self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_periodically_and_at_end() {
        let mut rep = ProgressReporter::new(Vec::new(), 10.0).with_budget(4);
        for i in 0..4u64 {
            let at = (i as f64 + 1.0) * 12.0;
            rep.on_outcome(
                at,
                &TrialOutcome {
                    id: i,
                    config: autotune_space::Config::new(),
                    cost: 10.0 - i as f64,
                    learn_cost: 10.0 - i as f64,
                    elapsed_s: 12.0,
                    fidelity: 1.0,
                    machine_id: None,
                    status: crate::TrialStatus::Complete,
                    retries: 0,
                    fault: None,
                    telemetry: Vec::new(),
                },
            );
        }
        rep.on_campaign_end(48.0);
        let out = String::from_utf8(rep.into_sink()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() >= 5, "periodic lines + final: {out}");
        assert!(lines.last().unwrap().contains("campaign complete"));
        assert!(lines.last().unwrap().contains("4/4 done"));
        assert!(lines.last().unwrap().contains("best 7.0000 (trial 3"));
        // Mid-campaign lines estimate time remaining.
        assert!(out.contains("eta ~"), "{out}");
    }

    fn outcome(id: u64) -> TrialOutcome {
        TrialOutcome {
            id,
            config: autotune_space::Config::new(),
            cost: 1.0,
            learn_cost: 1.0,
            elapsed_s: 1.0,
            fidelity: 1.0,
            machine_id: None,
            status: crate::TrialStatus::Complete,
            retries: 0,
            fault: None,
            telemetry: Vec::new(),
        }
    }

    #[test]
    fn overrunning_a_declared_budget_never_underflows_the_eta() {
        // Budget 2, but 3 outcomes arrive (e.g. retried trials reported
        // past the declared budget). The remaining-trials subtraction must
        // saturate: "eta ~0s", not a u64-underflow ETA of ~10^19 seconds.
        let mut rep = ProgressReporter::new(Vec::new(), 1.0).with_budget(2);
        for i in 0..3u64 {
            rep.on_outcome((i + 1) as f64, &outcome(i));
        }
        rep.on_campaign_end(3.0);
        let out = String::from_utf8(rep.into_sink()).unwrap();
        let last = out.lines().last().unwrap();
        assert!(last.contains("3/2 done"), "{out}");
        assert!(last.contains("eta ~0s"), "{out}");
        // No line anywhere carries an absurd underflow ETA.
        assert!(!out.contains("e19"), "{out}");
    }

    #[test]
    fn eta_is_omitted_exactly_at_budget() {
        let mut rep = ProgressReporter::new(Vec::new(), 1.0).with_budget(2);
        for i in 0..2u64 {
            rep.on_outcome((i + 1) as f64, &outcome(i));
        }
        rep.on_campaign_end(2.0);
        let out = String::from_utf8(rep.into_sink()).unwrap();
        let last = out.lines().last().unwrap();
        assert!(last.contains("2/2 done"), "{out}");
        assert!(!last.contains("eta"), "{out}");
    }
}

//! Simulated tuning targets and workloads.
//!
//! The tutorial's running examples tune real systems — Redis on Linux (a
//! kernel scheduler knob), MySQL/PostgreSQL (buffer pools, flush methods,
//! JIT), Spark (TPC-H Q1) — against real benchmarks (YCSB, TPC-C, TPC-H) on
//! noisy cloud VMs. None of those are available in a hermetic test
//! environment, so this crate provides *analytical simulators* calibrated
//! to reproduce the qualitative response surfaces the tutorial discusses:
//!
//! * [`RedisSim`] — tail latency vs `sched_migration_cost_ns`, a noisy
//!   U-shaped 1-D surface whose optimum cuts P95 latency by ~68 % against
//!   the default (slide 10);
//! * [`DbmsSim`] — a queueing-theoretic OLTP/OLAP database with ~12
//!   interacting knobs (buffer pool sizing vs RAM, flush-method categorical,
//!   thread contention, JIT conditionals, crash regions);
//! * [`SparkSim`] — a TPC-H-Q1-like batch job with a parallelism sweet spot
//!   and a memory-spill cliff (slide 14's tuning game);
//! * [`NginxSim`] — a reverse-proxy model (workers, connections,
//!   keepalive, gzip) rounding out slide 8's system list;
//! * [`Workload`] — YCSB-A/B/C-, TPC-C- and TPC-H-shaped workload
//!   descriptions with scale factors (multi-fidelity) and drift schedules
//!   (online tuning);
//! * [`CloudNoise`] — machine-factor heterogeneity, slow temporal drift and
//!   heavy-tailed latency spikes (the TUNA/duet experiments);
//! * [`priors`] — curated "manual-derived" knob hints standing in for the
//!   LLM extraction passes of DB-BERT/GPTuner (slides 63-64);
//! * telemetry emission for workload-identification experiments.
//!
//! Every simulator is deterministic given its RNG, so experiments are
//! reproducible seed-for-seed.

mod dbms;
mod env;
mod fault;
mod nginx;
mod noise;
pub mod priors;
mod redis;
mod spark;
mod telemetry;
mod workload;

pub use dbms::DbmsSim;
pub use env::Environment;
pub use fault::{FailureKind, Fault, FaultPlan, OutageWindow};
pub use nginx::NginxSim;
pub use noise::{CloudNoise, Machine, NoiseConfig};
pub use redis::RedisSim;
pub use spark::SparkSim;
pub use telemetry::{telemetry_features, TelemetrySample};
pub use workload::{Workload, WorkloadKind, WorkloadSchedule};

use autotune_space::{Config, Space};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The outcome of one benchmark trial against a simulated system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialResult {
    /// Mean operation latency, milliseconds.
    pub latency_avg_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Sustained throughput, operations per second.
    pub throughput_ops: f64,
    /// Dollar-denominated cost of the resources the trial consumed.
    pub cost_units: f64,
    /// Wall-clock the benchmark took, seconds (drives early-abort and
    /// multi-fidelity cost accounting).
    pub elapsed_s: f64,
    /// True when the configuration crashed the system (OOM, failed start).
    pub crashed: bool,
    /// Why the trial failed, when it did. Distinguishes a deterministic
    /// [`FailureKind::ConfigCrash`] from transient infrastructure faults
    /// (injected by a [`FaultPlan`]); `None` for clean runs.
    #[serde(default)]
    pub failure: Option<FailureKind>,
    /// Telemetry time series sampled during the trial.
    pub telemetry: Vec<TelemetrySample>,
    /// Component time profile: `(component, share of service time)` pairs
    /// summing to ~1. The PGO/FDO analogue of a stack profile (slide 68);
    /// empty when a simulator does not expose one.
    #[serde(default)]
    pub profile: Vec<(String, f64)>,
}

impl TrialResult {
    /// A crashed trial: no useful metrics, telemetry empty.
    pub fn crash(elapsed_s: f64) -> Self {
        TrialResult {
            latency_avg_ms: f64::NAN,
            latency_p95_ms: f64::NAN,
            latency_p99_ms: f64::NAN,
            throughput_ops: 0.0,
            cost_units: 0.0,
            elapsed_s,
            crashed: true,
            failure: Some(FailureKind::ConfigCrash),
            telemetry: Vec::new(),
            profile: Vec::new(),
        }
    }

    /// Attaches a component profile (normalized to sum to 1).
    pub fn with_profile(mut self, components: Vec<(String, f64)>) -> Self {
        let total: f64 = components.iter().map(|(_, v)| v.max(0.0)).sum();
        self.profile = if total > 0.0 {
            components
                .into_iter()
                .map(|(k, v)| (k, v.max(0.0) / total))
                .collect()
        } else {
            Vec::new()
        };
        self
    }
}

/// A simulated system under tuning.
///
/// `run_trial` must be deterministic given `rng`; all stochasticity flows
/// through it so experiments replay exactly.
pub trait SimSystem: Send + Sync {
    /// System name for experiment reports.
    fn name(&self) -> &str;

    /// The system's tunable-knob space.
    fn space(&self) -> &Space;

    /// Runs one benchmark trial of `workload` under `config` in `env`.
    fn run_trial(
        &self,
        config: &Config,
        workload: &Workload,
        env: &Environment,
        rng: &mut dyn RngCore,
    ) -> TrialResult;
}

/// Generates the shared latency/telemetry shape for a trial given its
/// analytic mean latency and utilization. Used by all simulators so their
/// outputs stay structurally comparable.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_trial(
    mean_latency_ms: f64,
    utilization: f64,
    throughput_ops: f64,
    elapsed_s: f64,
    cost_per_hour: f64,
    workload: &Workload,
    env: &Environment,
    rng: &mut dyn RngCore,
) -> TrialResult {
    use rand::Rng;
    let mut rng = rng;
    let util = utilization.clamp(0.0, 0.999);
    // Tail inflation grows superlinearly with utilization (queueing).
    let p95 = mean_latency_ms * (1.6 + 3.0 * util * util);
    let p99 = mean_latency_ms * (2.2 + 8.0 * util * util);
    // Multiplicative measurement noise.
    let jitter = |rng: &mut dyn RngCore, scale: f64| {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (1.0 + scale * z).max(0.5)
    };
    let noise = env.machine_factor * jitter(&mut rng, 0.02 * (1.0 + 2.0 * util));
    let telemetry = telemetry::emit(workload, util, throughput_ops, &mut rng);
    TrialResult {
        latency_avg_ms: mean_latency_ms * noise,
        latency_p95_ms: p95 * noise * jitter(&mut rng, 0.03),
        latency_p99_ms: p99 * noise * jitter(&mut rng, 0.05),
        throughput_ops: (throughput_ops / noise).max(0.0),
        cost_units: cost_per_hour * elapsed_s / 3600.0,
        elapsed_s,
        crashed: false,
        failure: None,
        telemetry,
        profile: Vec::new(),
    }
}

//! Tuning targets: what the session actually evaluates.
//!
//! A [`Target`] binds a system (simulated or closure-backed), the workload
//! it runs, the environment it runs in, the optional cloud-noise model the
//! trial passes through, and the objective that scalarizes the result.

use crate::Objective;
use autotune_sim::{
    CloudNoise, Environment, FailureKind, FaultPlan, SimSystem, TrialResult, Workload,
};
use autotune_space::{Config, Space};
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a single evaluation produced.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Scalar cost under the target's objective (NaN = crashed).
    pub cost: f64,
    /// Full benchmark result.
    pub result: TrialResult,
    /// Machine the trial ran on, when a noise fleet is attached.
    pub machine_id: Option<usize>,
    /// Why the trial failed, when it did: a deterministic
    /// [`FailureKind::ConfigCrash`] or an injected infrastructure fault.
    pub failure: Option<FailureKind>,
}

enum Backend {
    Simulated {
        system: Box<dyn SimSystem>,
        workload: Workload,
        env: Environment,
        noise: Option<CloudNoise>,
    },
    BlackBox {
        space: Space,
        f: Arc<dyn Fn(&Config) -> f64 + Send + Sync>,
        elapsed_s: f64,
    },
}

/// A fully-bound evaluation target.
pub struct Target {
    backend: Backend,
    objective: Objective,
    /// Logical trial clock, drives the noise model's temporal drift.
    clock: AtomicU64,
    name: String,
    faults: Option<FaultPlan>,
}

impl std::fmt::Debug for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Target")
            .field("name", &self.name)
            .field("objective", &self.objective.label())
            .finish()
    }
}

impl Target {
    /// A target over a simulated system in a fixed (noise-free) environment.
    pub fn simulated(
        system: Box<dyn SimSystem>,
        workload: Workload,
        env: Environment,
        objective: Objective,
    ) -> Self {
        let name = format!("{}/{}", system.name(), workload.kind.name());
        Target {
            backend: Backend::Simulated {
                system,
                workload,
                env,
                noise: None,
            },
            objective,
            clock: AtomicU64::new(0),
            name,
            faults: None,
        }
    }

    /// Attaches a cloud-noise fleet: each evaluation lands on a random
    /// machine whose factor perturbs the result.
    pub fn with_noise(mut self, noise: CloudNoise) -> Self {
        if let Backend::Simulated { noise: n, .. } = &mut self.backend {
            *n = Some(noise);
        }
        self
    }

    /// Attaches a deterministic fault-injection plan. The executor rolls
    /// the plan for every trial attempt and degrades the measurement
    /// accordingly (transient failure, hang, straggler, corruption,
    /// outage); works for both simulated and black-box backends.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fault-injection plan, if attached.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// A closure-backed target for algorithm tests and pure-math
    /// benchmarks (cost is whatever the closure returns; NaN = crash).
    pub fn black_box(
        space: Space,
        objective: Objective,
        f: impl Fn(&Config) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Target {
            backend: Backend::BlackBox {
                space,
                f: Arc::new(f),
                elapsed_s: 1.0,
            },
            objective,
            clock: AtomicU64::new(0),
            name: "black_box".into(),
            faults: None,
        }
    }

    /// Target name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current position of the temporal-drift clock: the number of
    /// evaluations this target has served. Captured by
    /// [`Campaign::snapshot`](crate::Campaign::snapshot) so a resumed
    /// campaign's continuation sees the same drift trajectory.
    pub fn noise_clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed) // lint: allow(D9) monotone eval counter; snapshots run between waves after worker joins, which give the happens-before
    }

    /// Repositions the temporal-drift clock (used by
    /// [`Campaign::resume`](crate::Campaign::resume), whose replay serves
    /// recorded measurements instead of evaluating and must fast-forward
    /// the clock past them).
    pub fn set_noise_clock(&self, t: u64) {
        self.clock.store(t, Ordering::Relaxed); // lint: allow(D9) resume fast-forwards the clock before replay begins; thread::spawn gives the happens-before
    }

    /// The objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The search space.
    pub fn space(&self) -> &Space {
        match &self.backend {
            Backend::Simulated { system, .. } => system.space(),
            Backend::BlackBox { space, .. } => space,
        }
    }

    /// The workload, when simulated.
    pub fn workload(&self) -> Option<&Workload> {
        match &self.backend {
            Backend::Simulated { workload, .. } => Some(workload),
            Backend::BlackBox { .. } => None,
        }
    }

    /// Evaluates a configuration once.
    pub fn evaluate(&self, config: &Config, rng: &mut dyn RngCore) -> Evaluation {
        self.evaluate_at(config, None, rng)
    }

    /// Evaluates a configuration at a workload override (multi-fidelity)
    /// and/or pinned machine (duet benchmarking).
    pub fn evaluate_at(
        &self,
        config: &Config,
        override_workload: Option<&Workload>,
        rng: &mut dyn RngCore,
    ) -> Evaluation {
        let t = self.clock.fetch_add(1, Ordering::Relaxed) as f64;
        match &self.backend {
            Backend::Simulated {
                system,
                workload,
                env,
                noise,
            } => {
                let w = override_workload.unwrap_or(workload);
                let (env, machine_id) = match noise {
                    Some(fleet) => {
                        let m = fleet.random_machine(rng).clone();
                        let factor = fleet.factor_at(&m, t, rng);
                        (env.on_machine(factor), Some(m.id))
                    }
                    None => (env.clone(), None),
                };
                let result = system.run_trial(config, w, &env, rng);
                Evaluation {
                    cost: self.objective.cost(&result),
                    failure: result.failure,
                    result,
                    machine_id,
                }
            }
            Backend::BlackBox { f, elapsed_s, .. } => {
                let cost = f(config);
                let crashed = cost.is_nan();
                let result = if crashed {
                    TrialResult::crash(*elapsed_s)
                } else {
                    TrialResult {
                        latency_avg_ms: cost,
                        latency_p95_ms: cost,
                        latency_p99_ms: cost,
                        throughput_ops: 0.0,
                        cost_units: 0.0,
                        elapsed_s: *elapsed_s,
                        crashed: false,
                        failure: None,
                        telemetry: Vec::new(),
                        profile: Vec::new(),
                    }
                };
                Evaluation {
                    cost: self.objective.cost(&result),
                    failure: result.failure,
                    result,
                    machine_id: None,
                }
            }
        }
    }

    /// Duet evaluation (tutorial slide 71): runs `a` and `b` side by side
    /// on the *same machine at the same time*, so both see the identical
    /// noise factor (machine speed, drift, and any transient spike). The
    /// ratio of their costs is therefore noise-cancelled.
    pub fn evaluate_pair(
        &self,
        a: &Config,
        b: &Config,
        rng: &mut dyn RngCore,
    ) -> (Evaluation, Evaluation) {
        let t = self.clock.fetch_add(1, Ordering::Relaxed) as f64;
        match &self.backend {
            Backend::Simulated {
                system,
                workload,
                env,
                noise,
            } => {
                let mut rng = rng;
                let env = match noise {
                    Some(fleet) => {
                        let m = fleet.random_machine(&mut rng).clone();
                        let factor = fleet.factor_at(&m, t, &mut rng);
                        env.on_machine(factor)
                    }
                    None => env.clone(),
                };
                let ra = system.run_trial(a, workload, &env, &mut rng);
                let rb = system.run_trial(b, workload, &env, &mut rng);
                (
                    Evaluation {
                        cost: self.objective.cost(&ra),
                        failure: ra.failure,
                        result: ra,
                        machine_id: None,
                    },
                    Evaluation {
                        cost: self.objective.cost(&rb),
                        failure: rb.failure,
                        result: rb,
                        machine_id: None,
                    },
                )
            }
            Backend::BlackBox { .. } => {
                let mut rng = rng;
                let ea = self.evaluate(a, &mut rng);
                let eb = self.evaluate(b, &mut rng);
                (ea, eb)
            }
        }
    }

    /// Evaluates on a *specific* machine of the noise fleet — the duet
    /// primitive. No-op distinction for noise-free targets.
    pub fn evaluate_on_machine(
        &self,
        config: &Config,
        machine_id: usize,
        rng: &mut dyn RngCore,
    ) -> Evaluation {
        let t = self.clock.fetch_add(1, Ordering::Relaxed) as f64;
        match &self.backend {
            Backend::Simulated {
                system,
                workload,
                env,
                noise: Some(fleet),
            } => {
                let m = fleet.machine(machine_id).clone();
                let factor = fleet.factor_at(&m, t, rng);
                let result = system.run_trial(config, workload, &env.on_machine(factor), rng);
                Evaluation {
                    cost: self.objective.cost(&result),
                    failure: result.failure,
                    result,
                    machine_id: Some(machine_id),
                }
            }
            _ => self.evaluate(config, rng),
        }
    }

    /// The noise fleet, if attached.
    pub fn noise(&self) -> Option<&CloudNoise> {
        match &self.backend {
            Backend::Simulated { noise, .. } => noise.as_ref(),
            Backend::BlackBox { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_sim::{NoiseConfig, RedisSim};
    use autotune_space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn black_box_target_scores_closure() {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let t = Target::black_box(space, Objective::MinimizeLatencyAvg, |c| {
            c.get_f64("x").unwrap() * 2.0
        });
        let mut rng = StdRng::seed_from_u64(1);
        let e = t.evaluate(&Config::new().with("x", 0.25), &mut rng);
        assert_eq!(e.cost, 0.5);
        assert!(!e.result.crashed);
    }

    #[test]
    fn black_box_nan_is_crash() {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let t = Target::black_box(space, Objective::MinimizeLatencyAvg, |_| f64::NAN);
        let mut rng = StdRng::seed_from_u64(2);
        let e = t.evaluate(&Config::new().with("x", 0.5), &mut rng);
        assert!(e.cost.is_nan());
        assert!(e.result.crashed);
    }

    #[test]
    fn simulated_target_runs_redis() {
        let t = Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(10_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let e = t.evaluate(&t.space().default_config(), &mut rng);
        assert!(e.cost > 0.0 && e.cost.is_finite());
        assert_eq!(t.name(), "redis/kv-cache");
        assert!(e.machine_id.is_none());
    }

    #[test]
    fn noise_assigns_machines_and_spreads_results() {
        let t = Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(10_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        )
        .with_noise(CloudNoise::new_fleet(10, NoiseConfig::default(), 5));
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = t.space().default_config();
        let costs: Vec<f64> = (0..20).map(|_| t.evaluate(&cfg, &mut rng).cost).collect();
        let sd = autotune_linalg::stats::std_dev(&costs);
        let mean = autotune_linalg::stats::mean(&costs);
        assert!(
            sd / mean > 0.02,
            "noise fleet should spread results: cv={}",
            sd / mean
        );
        let e = t.evaluate(&cfg, &mut rng);
        assert!(e.machine_id.is_some());
    }

    #[test]
    fn pinned_machine_reduces_variance() {
        let t = Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(10_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        )
        .with_noise(CloudNoise::new_fleet(
            10,
            NoiseConfig {
                machine_sigma: 0.5,
                drift_amplitude: 0.0,
                spike_probability: 0.0,
                ..Default::default()
            },
            6,
        ));
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = t.space().default_config();
        let pinned: Vec<f64> = (0..15)
            .map(|_| t.evaluate_on_machine(&cfg, 3, &mut rng).cost)
            .collect();
        let roaming: Vec<f64> = (0..15).map(|_| t.evaluate(&cfg, &mut rng).cost).collect();
        let cv =
            |xs: &[f64]| autotune_linalg::stats::std_dev(xs) / autotune_linalg::stats::mean(xs);
        assert!(
            cv(&pinned) < cv(&roaming) * 0.6,
            "pinning should kill machine variance: {} vs {}",
            cv(&pinned),
            cv(&roaming)
        );
    }

    #[test]
    fn workload_override_changes_fidelity() {
        let t = Target::simulated(
            Box::new(autotune_sim::DbmsSim::new()),
            Workload::tpch(10.0),
            Environment::medium(),
            Objective::MinimizeElapsed,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = t.space().default_config();
        let cheap = Workload::tpch(1.0);
        let full = t.evaluate(&cfg, &mut rng);
        let low = t.evaluate_at(&cfg, Some(&cheap), &mut rng);
        assert!(
            low.result.elapsed_s < full.result.elapsed_s * 0.5,
            "SF-1 {} should be much cheaper than SF-10 {}",
            low.result.elapsed_s,
            full.result.elapsed_s
        );
    }
}

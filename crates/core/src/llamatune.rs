//! LlamaTune-style search-space reduction (tutorial slide 62; Kanellis et
//! al., VLDB 2022).
//!
//! Three tricks compose:
//!
//! 1. **Random linear projection** (HesBO flavour): optimize in a
//!    low-dimensional box `[0,1]^k`; each full-space dimension `i` is tied
//!    to one low dimension `h(i)` with a random sign, so the optimizer
//!    explores a random k-dimensional subspace of the d-dimensional knob
//!    cube. Correlated knobs collapse onto shared axes.
//! 2. **Bucketization**: full-space coordinates snap to a coarse grid,
//!    shrinking the effective cardinality the surrogate must model.
//! 3. **Special-value biasing** lives in [`autotune_space::Param`] and
//!    composes for free.
//!
//! The paper's headline: up to ~11x fewer evaluations to reach a target,
//! and better configs at equal budget — experiment E15 reproduces the
//! shape.

use autotune_optimizer::{BayesianOptimizer, BoConfig, Observation, Optimizer};
use autotune_space::{Config, Param, Space};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;

/// LlamaTune settings.
#[derive(Debug, Clone)]
pub struct LlamaTuneConfig {
    /// Target (low) dimensionality of the projected space.
    pub low_dim: usize,
    /// Buckets per full-space axis (0 disables bucketization).
    pub buckets: usize,
    /// Seed of the projection matrix.
    pub projection_seed: u64,
}

impl Default for LlamaTuneConfig {
    fn default() -> Self {
        LlamaTuneConfig {
            low_dim: 6,
            buckets: 20,
            projection_seed: 0,
        }
    }
}

/// A projected optimizer: BO in `[0,1]^k`, evaluated in the full space.
pub struct LlamaTune {
    full_space: Space,
    config: LlamaTuneConfig,
    /// `h(i)`: which low dimension drives full dimension `i`.
    assignment: Vec<usize>,
    /// Sign per full dimension.
    signs: Vec<f64>,
    /// Inner optimizer over the synthetic low-d space.
    inner: BayesianOptimizer,
    /// Rendered full config -> low-d point, for observe(). Keyed lookups
    /// only, but a BTreeMap keeps even accidental iteration ordered.
    pending: BTreeMap<String, Vec<f64>>,
    best: Option<Observation>,
    n_observed: usize,
}

impl std::fmt::Debug for LlamaTune {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlamaTune")
            .field("full_dim", &self.full_space.len())
            .field("low_dim", &self.config.low_dim)
            .field("buckets", &self.config.buckets)
            .finish()
    }
}

/// Builds the synthetic low-dimensional space (k floats in [0,1]).
fn low_space(k: usize) -> Space {
    let mut b = Space::builder();
    for j in 0..k {
        b = b.add(Param::float(format!("z{j}"), 0.0, 1.0));
    }
    b.build().expect("synthetic space is valid") // lint: allow(D5) static synthetic space is always valid
}

impl LlamaTune {
    /// Wraps GP-BO over a random projection of `full_space`.
    pub fn new(full_space: Space, config: LlamaTuneConfig) -> Self {
        let d = full_space.len();
        let k = config.low_dim.clamp(1, d.max(1));
        let mut rng = StdRng::seed_from_u64(config.projection_seed);
        let assignment: Vec<usize> = (0..d).map(|_| rng.gen_range(0..k)).collect();
        let signs: Vec<f64> = (0..d)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let inner = BayesianOptimizer::new(low_space(k), BoConfig::default());
        LlamaTune {
            full_space,
            config: LlamaTuneConfig {
                low_dim: k,
                ..config
            },
            assignment,
            signs,
            inner,
            pending: BTreeMap::new(),
            best: None,
            n_observed: 0,
        }
    }

    /// Maps a low-d point to a full configuration.
    fn project_up(&self, z: &[f64]) -> Config {
        let x: Vec<f64> = self
            .assignment
            .iter()
            .zip(&self.signs)
            .map(|(&j, &s)| {
                let mut v = (0.5 + s * (z[j] - 0.5)).clamp(0.0, 1.0);
                if self.config.buckets > 1 {
                    let b = self.config.buckets as f64;
                    v = ((v * (b - 1.0)).round()) / (b - 1.0);
                }
                v
            })
            .collect();
        self.full_space
            .decode_unit(&x)
            .expect("projected vector has full dimension") // lint: allow(D5) projection yields a full-dimension unit vector
    }

    /// Approximate inverse for foreign observations: average the low-d
    /// coordinates implied by each full dimension.
    fn project_down(&self, config: &Config) -> Vec<f64> {
        let x = self
            .full_space
            .encode_unit(config)
            .expect("config belongs to the full space"); // lint: allow(D5) suggest() only emits configs of this space
        let k = self.config.low_dim;
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for ((&xi, &j), &s) in x.iter().zip(&self.assignment).zip(&self.signs) {
            sums[j] += 0.5 + s * (xi - 0.5);
            counts[j] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(&sum, &n)| {
                if n > 0 {
                    (sum / n as f64).clamp(0.0, 1.0)
                } else {
                    0.5
                }
            })
            .collect()
    }

    fn low_config(&self, z: &[f64]) -> Config {
        let mut c = Config::new();
        for (j, &v) in z.iter().enumerate() {
            c.set(format!("z{j}"), v);
        }
        c
    }
}

impl Optimizer for LlamaTune {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> Config {
        let low = self.inner.suggest(rng);
        let z: Vec<f64> = (0..self.config.low_dim)
            .map(|j| {
                low.get_f64(&format!("z{j}"))
                    .expect("synthetic param present") // lint: allow(D5) inner optimizer suggests over the synthetic space
            })
            .collect();
        let full = self.project_up(&z);
        self.pending.insert(full.render(), z);
        full
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.n_observed += 1;
        let z = self
            .pending
            .remove(&config.render())
            .unwrap_or_else(|| self.project_down(config));
        let low_cfg = self.low_config(&z);
        self.inner.observe(&low_cfg, value);
        if !value.is_nan() && self.best.as_ref().is_none_or(|b| value < b.value) {
            self.best = Some(Observation {
                config: config.clone(),
                value,
            });
        }
    }

    fn best(&self) -> Option<&Observation> {
        self.best.as_ref()
    }

    fn space(&self) -> &Space {
        &self.full_space
    }

    fn name(&self) -> &str {
        "llamatune"
    }

    fn n_observed(&self) -> usize {
        self.n_observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 16-knob space where only three knobs matter and several are
    /// pairwise redundant — the regime LlamaTune targets.
    fn wide_space() -> Space {
        let mut b = Space::builder();
        for i in 0..16 {
            b = b.add(Param::float(format!("k{i}"), 0.0, 1.0));
        }
        b.build().unwrap()
    }

    fn sparse_objective(c: &Config) -> f64 {
        let g = |n: &str| c.get_f64(n).unwrap();
        (g("k0") - 0.7).powi(2) + (g("k5") - 0.2).powi(2) + 0.5 * (g("k9") - 0.5).powi(2)
    }

    #[test]
    fn projection_covers_full_space_dimensions() {
        let lt = LlamaTune::new(wide_space(), LlamaTuneConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_low = [false; 16];
        let mut saw_high = [false; 16];
        for _ in 0..200 {
            let z: Vec<f64> = (0..6).map(|_| rng.gen::<f64>()).collect();
            let cfg = lt.project_up(&z);
            for i in 0..16 {
                let v = cfg.get_f64(&format!("k{i}")).unwrap();
                if v < 0.2 {
                    saw_low[i] = true;
                }
                if v > 0.8 {
                    saw_high[i] = true;
                }
            }
        }
        assert!(
            saw_low.iter().all(|&b| b) && saw_high.iter().all(|&b| b),
            "projection should reach both ends of every axis"
        );
    }

    #[test]
    fn bucketization_snaps_to_grid() {
        let lt = LlamaTune::new(
            wide_space(),
            LlamaTuneConfig {
                buckets: 5,
                ..Default::default()
            },
        );
        let cfg = lt.project_up(&[0.33; 6]);
        for i in 0..16 {
            let v = cfg.get_f64(&format!("k{i}")).unwrap();
            let snapped = (v * 4.0).round() / 4.0;
            assert!((v - snapped).abs() < 1e-9, "value {v} not on 5-bucket grid");
        }
    }

    #[test]
    fn reaches_good_region_in_fewer_trials_than_full_bo() {
        // The LlamaTune claim is *sample efficiency*: a decent config in
        // far fewer trials, at some risk that the projected subspace
        // misses the exact optimum. Measured as trials-to-target at a
        // small budget, aggregated over seeds (projections are random).
        use autotune_optimizer::BayesianOptimizer;
        let budget = 15;
        let target_cost = 0.25;
        let run = |mut opt: Box<dyn Optimizer>, seed: u64| -> Option<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..budget {
                let c = opt.suggest(&mut rng);
                let v = sparse_objective(&c);
                opt.observe(&c, v);
                if opt.best().unwrap().value <= target_cost {
                    return Some(i + 1);
                }
            }
            None
        };
        let mut lt_hits = 0;
        let mut full_hits = 0;
        for seed in 0..6 {
            if run(
                Box::new(LlamaTune::new(
                    wide_space(),
                    LlamaTuneConfig {
                        projection_seed: seed,
                        ..Default::default()
                    },
                )),
                100 + seed,
            )
            .is_some()
            {
                lt_hits += 1;
            }
            if run(Box::new(BayesianOptimizer::gp(wide_space())), 100 + seed).is_some() {
                full_hits += 1;
            }
        }
        assert!(
            lt_hits >= full_hits,
            "LlamaTune reached the target in {lt_hits}/6 seeds vs full BO {full_hits}/6"
        );
        assert!(
            lt_hits >= 3,
            "LlamaTune should usually reach {target_cost} in {budget} trials"
        );
    }

    #[test]
    fn foreign_observation_via_pseudo_inverse() {
        let space = wide_space();
        let mut lt = LlamaTune::new(space.clone(), LlamaTuneConfig::default());
        // A config LlamaTune never suggested (e.g. imported history).
        let foreign = space.default_config();
        lt.observe(&foreign, 3.0);
        assert_eq!(lt.n_observed(), 1);
        assert_eq!(lt.best().unwrap().value, 3.0);
    }

    #[test]
    fn suggested_configs_are_valid() {
        let space = wide_space();
        let mut lt = LlamaTune::new(space.clone(), LlamaTuneConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let c = lt.suggest(&mut rng);
            assert!(space.validate_config(&c).is_ok());
            lt.observe(&c, 1.0);
        }
    }
}

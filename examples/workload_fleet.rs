//! Workload identification across a fleet (slides 88-93).
//!
//! A cloud provider runs hundreds of database instances. This example:
//! 1. collects telemetry fingerprints from a fleet running mixed
//!    workloads,
//! 2. embeds and clusters them into workload families,
//! 3. tunes **one** representative per family,
//! 4. serves every other instance its family's tuned config, and measures
//!    how close that gets to individually tuning each instance.
//!
//! Run with:
//! ```text
//! cargo run -p autotune-examples --bin workload_fleet --release
//! ```

use autotune::Objective;
use autotune_serve::{CampaignRegistry, CampaignSpec, OptimizerKind, SystemKind};
use autotune_sim::{DbmsSim, Environment, SimSystem, Workload};
use autotune_wid::{
    purity, ConfigStore, Embedder, EmbedderKind, Fingerprint, KMeans, StoredConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload_families() -> Vec<(&'static str, Workload)> {
    vec![
        ("oltp-read", Workload::ycsb_c(2_000.0)),
        ("oltp-write", Workload::ycsb_a(2_000.0)),
        ("analytics", Workload::tpch(2.0)),
    ]
}

fn main() {
    println!("== Workload identification & config reuse across a fleet ==\n");
    let env = Environment::medium();
    let sim = DbmsSim::new();
    let mut rng = StdRng::seed_from_u64(3);

    // 1. Fingerprint a fleet of 60 instances (20 per hidden family).
    let families = workload_families();
    let mut prints = Vec::new();
    let mut labels = Vec::new();
    for (label, w) in families
        .iter()
        .enumerate()
        .flat_map(|(i, fw)| std::iter::repeat_with(move || (i, fw.1.clone())).take(20))
    {
        let r = sim.run_trial(&sim.space().default_config(), &w, &env, &mut rng);
        prints.push(Fingerprint::from_telemetry(&r.telemetry));
        labels.push(label);
    }
    println!(
        "fingerprinted {} instances (14 telemetry features each)",
        prints.len()
    );

    // 2. Embed + cluster.
    let embedder = Embedder::fit(&prints, 4, EmbedderKind::Pca).expect("corpus is large enough");
    let points = embedder.embed_all(&prints).expect("all fingerprints embed");
    let km = KMeans::fit(&points, families.len(), 7).expect("enough points");
    let pur = purity(km.assignments(), &labels);
    println!(
        "k-means into {} families: purity {:.2}\n",
        families.len(),
        pur
    );

    // 3. Tune one representative per family — concurrently, through the
    // serving layer: one registry multiplexes all three campaigns over a
    // bounded worker pool, and each campaign's history stays
    // byte-identical to tuning it alone.
    let mut registry = CampaignRegistry::new(4);
    let ids: Vec<u64> = families
        .iter()
        .enumerate()
        .map(|(fam_idx, (name, w))| {
            let mut spec = CampaignSpec::minimal(*name, SystemKind::Dbms, 30, 100 + fam_idx as u64);
            spec.workload = w.clone();
            spec.environment = env.clone();
            spec.objective = Objective::MinimizeLatencyAvg;
            spec.optimizer = OptimizerKind::BoGp;
            registry.register_spec(&spec)
        })
        .collect();
    registry.run_all().expect("fleet serves to completion");
    let fleet = registry.fleet_stats();
    println!(
        "served {} campaigns in {} rounds ({:.1} virtual pool speedup)",
        fleet.n_campaigns, fleet.rounds, fleet.pool_speedup
    );

    let mut store = ConfigStore::new();
    for (fam_idx, (name, _)) in families.iter().enumerate() {
        let campaign = registry
            .campaign(ids[fam_idx])
            .expect("campaign registered above");
        let best = campaign.storage().best().expect("budget > 0 trials ran");
        println!(
            "tuned representative '{name}': latency {:.3} ms after 30 trials",
            best.cost
        );
        // Index the tuned config by the family's centroid embedding.
        let members: Vec<Vec<f64>> = points
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == fam_idx)
            .map(|(p, _)| p.clone())
            .collect();
        let mut centroid = vec![0.0; members[0].len()];
        for m in &members {
            autotune_linalg::axpy(1.0, m, &mut centroid);
        }
        centroid.iter_mut().for_each(|c| *c /= members.len() as f64);
        store.insert(StoredConfig {
            label: name.to_string(),
            embedding: centroid,
            config: best.config.clone(),
            score: best.cost,
        });
    }

    // 4. Serve new, unseen instances via nearest-neighbour reuse.
    println!("\nreuse check on 12 fresh instances:");
    let mut hits = 0;
    for trial in 0..12 {
        let true_family = trial % families.len();
        let w = &families[true_family].1;
        let r = sim.run_trial(&sim.space().default_config(), w, &env, &mut rng);
        let fp = Fingerprint::from_telemetry(&r.telemetry);
        let emb = embedder.embed(&fp).expect("fingerprint embeds");
        let rec = store.nearest(&emb).expect("store non-empty").0;
        let correct = rec.label == families[true_family].0;
        hits += correct as usize;
        if trial < 3 {
            let tuned = sim.run_trial(&rec.config, w, &env, &mut rng);
            let default = sim.run_trial(&sim.space().default_config(), w, &env, &mut rng);
            println!(
                "  instance {trial} ({}): matched '{}' {} | reused-config latency {:.3} ms vs default {:.3} ms",
                families[true_family].0,
                rec.label,
                if correct { "[ok]" } else { "[miss]" },
                tuned.latency_avg_ms,
                default.latency_avg_ms,
            );
        }
    }
    println!("  family-match accuracy: {hits}/12");
}

//! E18 (slide 68): knob importance — Lasso (OtterTune) and permutation
//! importance (SHAP-era) over a DBMS campaign history; tuning only the
//! top-3 knobs recovers most of the benefit of tuning all 12.

use crate::experiments::dbms_target;
use crate::report::{f, Report};
use autotune::{lasso_path, permutation_importance};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_space::Space;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let target = dbms_target();
    let space = target.space().clone();

    // Collect a 120-trial random history (diverse coverage for the fits).
    let mut rng = StdRng::seed_from_u64(1);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..120 {
        let cfg = space.sample(&mut rng);
        let e = target.evaluate(&cfg, &mut rng);
        if e.cost.is_finite() {
            xs.push(space.encode_unit(&cfg).expect("encodes"));
            ys.push(e.cost.ln()); // log-latency stabilizes the linear fit
        }
    }
    let lasso = lasso_path(&space, &xs, &ys);
    let perm = permutation_importance(&space, &xs, &ys, &mut rng);

    // Tune only the top-3 (by permutation) vs all knobs, same budget.
    let top3: Vec<String> = perm.top(3).iter().map(|s| s.to_string()).collect();
    let sub_space = {
        let mut b = Space::builder();
        for p in space.params() {
            if top3.contains(&p.name) {
                b = b.add(p.clone());
            }
        }
        b.build().expect("subset space valid")
    };
    let budget = 30;
    let run_campaign = |sub: Option<&Space>, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = f64::INFINITY;
        let mut opt: Box<dyn Optimizer> = match sub {
            Some(s) => Box::new(BayesianOptimizer::smac(s.clone())),
            None => Box::new(BayesianOptimizer::smac(space.clone())),
        };
        for _ in 0..budget {
            let c = opt.suggest(&mut rng);
            // Fill non-tuned knobs with defaults.
            let mut full = space.default_config();
            for (name, value) in c.iter() {
                full.set(name.clone(), value.clone());
            }
            let e = target.evaluate(&full, &mut rng);
            // Observe log-cost: latencies span orders of magnitude and a
            // raw-scale surrogate is dominated by the overload region.
            opt.observe(
                &c,
                if e.cost.is_finite() {
                    e.cost.ln()
                } else {
                    f64::NAN
                },
            );
            if e.cost.is_finite() {
                best = best.min(e.cost);
            }
        }
        best
    };
    // The contrast subset: the three LEAST important knobs.
    let bottom3: Vec<String> = perm
        .ranking
        .iter()
        .rev()
        .take(3)
        .map(|(n, _)| n.clone())
        .collect();
    let bottom_space = {
        let mut b = Space::builder();
        for p in space.params() {
            if bottom3.contains(&p.name) {
                b = b.add(p.clone());
            }
        }
        b.build().expect("subset space valid")
    };
    let mut top3_best = Vec::new();
    let mut all_best = Vec::new();
    let mut bottom_best = Vec::new();
    for seed in 0..8 {
        top3_best.push(run_campaign(Some(&sub_space), 400 + seed));
        all_best.push(run_campaign(None, 400 + seed));
        bottom_best.push(run_campaign(Some(&bottom_space), 400 + seed));
    }
    let t3 = autotune_linalg::stats::median(&top3_best);
    let all = autotune_linalg::stats::median(&all_best);
    let rnd = autotune_linalg::stats::median(&bottom_best);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for i in 0..5 {
        rows.push(vec![
            format!("#{}", i + 1),
            lasso.ranking[i].0.clone(),
            perm.ranking[i].0.clone(),
            f(perm.ranking[i].1, 4),
        ]);
    }
    rows.push(vec![
        "tune top-3 only".into(),
        String::new(),
        format!("{} ms", f(t3, 4)),
        String::new(),
    ]);
    rows.push(vec![
        "tune all 12".into(),
        String::new(),
        format!("{} ms", f(all, 4)),
        String::new(),
    ]);
    rows.push(vec![
        "tune bottom-3 only".into(),
        String::new(),
        format!("{} ms", f(rnd, 4)),
        String::new(),
    ]);

    // The big structural knobs must surface; buffer pool is the known #1.
    let perm_top: Vec<&str> = perm.top(4);
    let bp_found = perm_top.contains(&"buffer_pool_gb");
    let shape_holds = bp_found && t3 <= all * 1.5 && t3 < rnd * 0.8;
    Report {
        id: "E18",
        title: "Knob importance: Lasso path & permutation (slide 68)",
        headers: vec!["rank", "lasso", "permutation", "perm score"],
        rows,
        paper_claim: "a few knobs dominate; tuning only those recovers most of the win",
        measured: format!(
            "top-3-only best {} vs all-knobs {} vs bottom-3 {} ms; buffer_pool ranked top-4: {bp_found}",
            f(t3, 4),
            f(all, 4),
            f(rnd, 4)
        ),
        shape_holds,
    }
}

//! Multi-objective optimization (tutorial slide 58).
//!
//! Minimizes a vector of objectives (e.g. latency *and* cost). Usually no
//! single configuration optimizes all of them simultaneously; the goal is
//! the **Pareto frontier** — the set of non-dominated trade-offs. Two
//! pieces live here:
//!
//! * [`ParetoFront`] — bookkeeping of the non-dominated set plus 2-D
//!   hypervolume for quality measurement;
//! * [`ParEgo`] — Knowles' ParEGO: scalarize the objectives with a random
//!   augmented-Tchebycheff weight each iteration and run one step of
//!   single-objective Bayesian optimization on the scalarized history.

use crate::{BayesianOptimizer, BoConfig, Observation, Optimizer};
use autotune_space::{Config, Space};
use rand::{Rng, RngCore};

/// One evaluated configuration with its objective vector.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiObservation {
    /// The evaluated configuration.
    pub config: Config,
    /// Objective values (minimization, fixed order).
    pub objectives: Vec<f64>,
}

/// Returns true when `a` dominates `b`: no worse everywhere, strictly
/// better somewhere (minimization).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// A non-dominated archive of observations.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    members: Vec<MultiObservation>,
}

impl ParetoFront {
    /// Empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Offers an observation; returns `true` if it joined the front
    /// (evicting anything it dominates).
    pub fn insert(&mut self, obs: MultiObservation) -> bool {
        if obs.objectives.iter().any(|v| v.is_nan()) {
            return false;
        }
        if self
            .members
            .iter()
            .any(|m| dominates(&m.objectives, &obs.objectives) || m.objectives == obs.objectives)
        {
            return false;
        }
        self.members
            .retain(|m| !dominates(&obs.objectives, &m.objectives));
        self.members.push(obs);
        true
    }

    /// Current non-dominated members.
    pub fn members(&self) -> &[MultiObservation] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Exact hypervolume dominated by the front relative to a reference
    /// point, for **two objectives** (the tutorial's latency/cost case).
    ///
    /// # Panics
    /// Panics if the front holds non-2-D vectors.
    pub fn hypervolume_2d(&self, reference: (f64, f64)) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let mut pts: Vec<(f64, f64)> = self
            .members
            .iter()
            .map(|m| {
                assert_eq!(
                    m.objectives.len(),
                    2,
                    "hypervolume_2d requires 2 objectives"
                );
                (m.objectives[0], m.objectives[1])
            })
            .filter(|&(a, b)| a < reference.0 && b < reference.1)
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Sweep left→right; each point contributes a rectangle down to the
        // previous point's second objective.
        let mut hv = 0.0;
        let mut prev_y = reference.1;
        for (x, y) in pts {
            hv += (reference.0 - x) * (prev_y - y);
            prev_y = y;
        }
        hv
    }
}

/// ParEGO: random-scalarization multi-objective Bayesian optimization.
pub struct ParEgo {
    space: Space,
    n_objectives: usize,
    history: Vec<MultiObservation>,
    front: ParetoFront,
    /// ρ in the augmented Tchebycheff function.
    rho: f64,
    n_init: usize,
    bo_config: BoConfig,
}

impl std::fmt::Debug for ParEgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParEgo")
            .field("n_objectives", &self.n_objectives)
            .field("n_observed", &self.history.len())
            .field("front_size", &self.front.len())
            .finish()
    }
}

impl ParEgo {
    /// Creates a ParEGO optimizer for `n_objectives` objectives.
    pub fn new(space: Space, n_objectives: usize) -> Self {
        assert!(
            n_objectives >= 2,
            "use single-objective BO for one objective"
        );
        ParEgo {
            space,
            n_objectives,
            history: Vec::new(),
            front: ParetoFront::new(),
            rho: 0.05,
            n_init: 8,
            bo_config: BoConfig {
                n_init: 0,
                refit_every: 0,
                ..Default::default()
            },
        }
    }

    /// The current Pareto front.
    pub fn front(&self) -> &ParetoFront {
        &self.front
    }

    /// All multi-objective observations.
    pub fn history(&self) -> &[MultiObservation] {
        &self.history
    }

    /// Proposes the next configuration.
    pub fn suggest(&mut self, rng: &mut impl Rng) -> Config {
        if self.history.len() < self.n_init {
            return self.space.sample(rng);
        }
        // Random weight vector on the simplex.
        let mut theta: Vec<f64> = (0..self.n_objectives)
            .map(|_| -(rng.gen::<f64>().max(1e-12)).ln())
            .collect();
        let sum: f64 = theta.iter().sum();
        for t in theta.iter_mut() {
            *t /= sum;
        }
        // Normalize each objective over history to [0,1].
        let mut lo = vec![f64::INFINITY; self.n_objectives];
        let mut hi = vec![f64::NEG_INFINITY; self.n_objectives];
        for obs in &self.history {
            for (k, &v) in obs.objectives.iter().enumerate() {
                lo[k] = lo[k].min(v);
                hi[k] = hi[k].max(v);
            }
        }
        let scalarize = |objs: &[f64]| -> f64 {
            let norm: Vec<f64> = objs
                .iter()
                .enumerate()
                .map(|(k, &v)| {
                    let range = (hi[k] - lo[k]).max(1e-12);
                    (v - lo[k]) / range
                })
                .collect();
            let weighted: Vec<f64> = norm.iter().zip(&theta).map(|(&n, &t)| t * n).collect();
            let max_term = weighted.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sum_term: f64 = weighted.iter().sum();
            max_term + self.rho * sum_term
        };
        // One BO step on the scalarized history.
        let mut bo = BayesianOptimizer::new(self.space.clone(), self.bo_config.clone());
        let scalar_history: Vec<Observation> = self
            .history
            .iter()
            .map(|obs| Observation {
                config: obs.config.clone(),
                value: scalarize(&obs.objectives),
            })
            .collect();
        bo.warm_start(&scalar_history);
        let mut rng_dyn: &mut dyn RngCore = rng;
        bo.suggest(&mut rng_dyn)
    }

    /// Records an observed objective vector.
    pub fn observe(&mut self, config: &Config, objectives: &[f64]) {
        assert_eq!(
            objectives.len(),
            self.n_objectives,
            "objective vector has wrong arity"
        );
        let obs = MultiObservation {
            config: config.clone(),
            objectives: objectives.to_vec(),
        };
        self.front.insert(obs.clone());
        self.history.push(obs);
    }

    /// Number of observations so far.
    pub fn n_observed(&self) -> usize {
        self.history.len()
    }
}

/// Linear scalarization helper (tutorial slide 58's simplest option):
/// `g(y) = Σ w_i y_i` with positive weights.
pub fn linear_scalarize(objectives: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(objectives.len(), weights.len(), "weights must align");
    objectives.iter().zip(weights).map(|(&o, &w)| o * w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dominance_is_strict_partial_order() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // incomparable
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
    }

    fn mobs(objs: &[f64]) -> MultiObservation {
        MultiObservation {
            config: Config::new(),
            objectives: objs.to_vec(),
        }
    }

    #[test]
    fn front_keeps_only_nondominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(mobs(&[2.0, 2.0])));
        assert!(f.insert(mobs(&[1.0, 3.0]))); // incomparable: joins
        assert!(!f.insert(mobs(&[3.0, 3.0]))); // dominated: rejected
        assert!(f.insert(mobs(&[1.0, 1.0]))); // dominates both: evicts
        assert_eq!(f.len(), 1);
        assert_eq!(f.members()[0].objectives, vec![1.0, 1.0]);
    }

    #[test]
    fn front_rejects_duplicates_and_nan() {
        let mut f = ParetoFront::new();
        assert!(f.insert(mobs(&[1.0, 2.0])));
        assert!(!f.insert(mobs(&[1.0, 2.0])));
        assert!(!f.insert(mobs(&[f64::NAN, 0.0])));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn hypervolume_known_values() {
        let mut f = ParetoFront::new();
        f.insert(mobs(&[1.0, 2.0]));
        f.insert(mobs(&[2.0, 1.0]));
        // Reference (3,3): rect1 = (3-1)*(3-2)=2, rect2 = (3-2)*(2-1)=1.
        assert!((f.hypervolume_2d((3.0, 3.0)) - 3.0).abs() < 1e-12);
        // Points outside the reference contribute nothing.
        f.insert(mobs(&[0.5, 4.0]));
        assert!((f.hypervolume_2d((3.0, 3.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_monotone_in_members() {
        let mut f = ParetoFront::new();
        f.insert(mobs(&[2.0, 2.0]));
        let hv1 = f.hypervolume_2d((4.0, 4.0));
        f.insert(mobs(&[1.0, 3.0]));
        let hv2 = f.hypervolume_2d((4.0, 4.0));
        assert!(hv2 > hv1);
    }

    #[test]
    fn parego_recovers_tradeoff_curve() {
        // Two objectives: f1 = x², f2 = (x-1)²; Pareto set is x ∈ [0, 1].
        let space = Space::builder()
            .add(Param::float("x", -2.0, 3.0))
            .build()
            .unwrap();
        let mut pe = ParEgo::new(space, 2);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let cfg = pe.suggest(&mut rng);
            let x = cfg.get_f64("x").unwrap();
            pe.observe(&cfg, &[x * x, (x - 1.0) * (x - 1.0)]);
        }
        // Front members must lie in (or very near) the true Pareto set.
        assert!(
            pe.front().len() >= 3,
            "front too small: {}",
            pe.front().len()
        );
        for m in pe.front().members() {
            let x = m.config.get_f64("x").unwrap();
            assert!(
                (-0.2..=1.2).contains(&x),
                "front member x={x} far outside Pareto set"
            );
        }
        // Hypervolume should cover a solid share of the ideal front's.
        let hv = pe.front().hypervolume_2d((4.0, 4.0));
        assert!(hv > 12.0, "hypervolume {hv} too small");
    }

    #[test]
    fn linear_scalarization() {
        assert_eq!(linear_scalarize(&[2.0, 3.0], &[1.0, 2.0]), 8.0);
    }

    #[test]
    #[should_panic(expected = "single-objective")]
    fn parego_rejects_one_objective() {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let _ = ParEgo::new(space, 1);
    }
}

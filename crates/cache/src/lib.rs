//! Workload-fingerprint-keyed config cache (ROADMAP item 1).
//!
//! The paper's production premise is that tuning amortizes: most incoming
//! workloads have been seen before, so request-time answers should come
//! from a cache, not a fresh campaign. This crate is that cache:
//!
//! * incoming fingerprints are routed to a **workload family** by
//!   [`autotune_wid::StreamingClusters`] — online nearest-centroid
//!   assignment that spawns a new family past a distance threshold;
//! * each family holds tuned configurations keyed by an exact
//!   [`fingerprint_key`], with the **incumbent** (lowest observed cost)
//!   served to any member of the family;
//! * the read path is **sharded** ([`ShardedCache`]): families map to
//!   shards, lookups take only read locks and bump atomic LRU ticks, so
//!   concurrent lookups scale and a hit costs well under a microsecond;
//! * eviction is **LRU + quality-aware**: when a shard exceeds capacity,
//!   the least-recently-used entry whose config underperforms its family
//!   incumbent goes first, and the sole entry of a family with live
//!   traffic is never evicted.
//!
//! Determinism: shards and per-family indexes are `BTreeMap`-ordered, the
//! clustering model is a pure function of assignment order, and the LRU
//! clock is a logical tick — replaying the same operation sequence
//! rebuilds byte-identical state ([`CacheSnapshot`]). The serve layer
//! leans on this to journal cache operations in its WAL and recover the
//! exact hit/miss behavior after a crash.

mod cache;
mod key;

pub use cache::{
    CacheConfig, CacheHit, CacheLookup, CacheSnapshot, CacheStats, ShardedCache, SnapshotEntry,
};
pub use key::fingerprint_key;

/// Errors produced by the cache.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// A snapshot was produced by an incompatible cache version.
    VersionMismatch {
        /// Version this build understands.
        expected: u32,
        /// Version found in the snapshot.
        got: u32,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::VersionMismatch { expected, got } => {
                write!(f, "cache snapshot version {got} (expected {expected})")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, CacheError>;

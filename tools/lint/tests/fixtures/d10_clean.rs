//! D10 clean fixture: append-before-ack — a durable append/journal call
//! dominates every durable-state ack; read-only responses need none.

pub fn handle_register(&mut self, spec: CampaignSpec) -> Result<Response, ServeError> {
    Ok(Response::Registered {
        id: self.durable.admit_spec(&spec, None)?,
    })
}

pub fn handle_lookup(&mut self, features: Vec<f64>) -> Result<Response, ServeError> {
    self.journal_op(&RouterOp::Lookup {
        features: features.clone(),
    })?;
    match self.cache.lookup(&features) {
        Some(hit) => Ok(Response::CacheHit { config: hit }),
        None => Ok(Response::Stats { tick: 0 }),
    }
}

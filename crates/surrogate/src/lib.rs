//! Surrogate models for sample-efficient black-box optimization.
//!
//! Sequential model-based optimization replaces the expensive target
//! function with a cheap statistical model fitted to the trials observed so
//! far (tutorial slides 32-44). This crate provides the two model families
//! the tutorial covers, plus two scalable variants for long campaigns:
//!
//! * [`GaussianProcess`] — the classic Bayesian-optimization surrogate:
//!   closed-form posterior mean and variance under a positive-definite
//!   [`Kernel`] (RBF, Matérn ½/3⁄2/5⁄2, periodic, linear, plus sum/product
//!   composition), with marginal-likelihood-based hyperparameter fitting.
//! * [`RandomForest`] — the SMAC-style alternative: an ensemble of
//!   randomized regression trees whose spread estimates predictive
//!   variance. Handles conditional/categorical spaces gracefully where a
//!   GP's distance metric struggles.
//! * [`SparseGaussianProcess`] — an inducing-point (SoR/DTC) sparse GP
//!   whose per-observe and per-predict cost is O(m²) in the inducing-set
//!   size, independent of the campaign length; the 100k-observation
//!   global model.
//! * [`TrustRegionSurrogate`] — a TuRBO-style local GP over the incumbent
//!   region with deterministic expand/shrink dynamics; the cheapest
//!   per-suggestion model, for very long campaigns that refine locally.
//!
//! All implement the common [`Surrogate`] trait that the optimizer crate
//! programs against.
//!
//! # Example
//!
//! ```
//! use autotune_surrogate::{GaussianProcess, Matern52, Surrogate};
//!
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
//! let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.3, 1.0)), 1e-6);
//! gp.fit(&xs, &ys).unwrap();
//! let p = gp.predict(&[0.5]);
//! assert!((p.mean - (3.0f64).sin()).abs() < 0.2);
//! ```

mod forest;
mod gp;
mod kernel;
mod multitask;
mod sparse;
mod turbo;

pub use forest::{RandomForest, RandomForestConfig};
pub use gp::{GaussianProcess, HyperFitConfig};
pub use kernel::{
    ConstantKernel, Kernel, LinearKernel, Matern12, Matern32, Matern52, PeriodicKernel,
    ProductKernel, Rbf, SumKernel,
};
pub use multitask::{MultiTaskGp, TaskObservation};
pub use sparse::{SparseGaussianProcess, SparseGpConfig};
pub use turbo::{TrustRegionConfig, TrustRegionSurrogate};

/// A predictive distribution at a query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior variance (>= 0).
    pub variance: f64,
}

impl Prediction {
    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// Errors produced by surrogate-model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum SurrogateError {
    /// No training data was supplied.
    EmptyTrainingSet,
    /// Rows of the design matrix have inconsistent dimensionality, or the
    /// target vector length does not match.
    DimensionMismatch {
        /// Description of the mismatch.
        context: String,
    },
    /// Training targets contain NaN or infinity.
    NonFiniteTarget,
    /// The kernel matrix could not be factorized.
    NumericalFailure,
    /// The model does not support incremental single-point updates;
    /// callers should fall back to a full [`Surrogate::fit`].
    IncrementalUnsupported,
}

impl std::fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SurrogateError::EmptyTrainingSet => write!(f, "empty training set"),
            SurrogateError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            SurrogateError::NonFiniteTarget => write!(f, "training targets must be finite"),
            SurrogateError::NumericalFailure => write!(f, "numerical failure during fit"),
            SurrogateError::IncrementalUnsupported => {
                write!(f, "model does not support incremental updates")
            }
        }
    }
}

impl std::error::Error for SurrogateError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, SurrogateError>;

/// Common interface for surrogate models over `R^d -> R`.
///
/// Inputs are points in the optimizer's encoded space (unit cube or one-hot
/// layout — the surrogate does not care which).
pub trait Surrogate: Send + Sync {
    /// Fits the model to `(xs, ys)` pairs, replacing any previous fit.
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()>;

    /// Predictive mean and variance at `x`.
    fn predict(&self, x: &[f64]) -> Prediction;

    /// Number of training points in the current fit (0 before fitting).
    fn n_train(&self) -> usize;

    /// Absorbs a single `(x, y)` pair into the current fit *in place*,
    /// without discarding the previous training set.
    ///
    /// Models with an incremental path (the GP's rank-1 Cholesky
    /// extension) implement this in O(n²); the default returns
    /// [`SurrogateError::IncrementalUnsupported`] so callers fall back to
    /// a full [`Surrogate::fit`]. On any error the model must be left
    /// exactly as it was before the call.
    fn observe(&mut self, _x: &[f64], _y: f64) -> Result<()> {
        Err(SurrogateError::IncrementalUnsupported)
    }
}

/// Validates a design matrix / target pair, returning the input dimension.
pub(crate) fn check_training_set(xs: &[Vec<f64>], ys: &[f64]) -> Result<usize> {
    if xs.is_empty() {
        return Err(SurrogateError::EmptyTrainingSet);
    }
    if xs.len() != ys.len() {
        return Err(SurrogateError::DimensionMismatch {
            context: format!("{} inputs but {} targets", xs.len(), ys.len()),
        });
    }
    let d = xs[0].len();
    if d == 0 {
        return Err(SurrogateError::DimensionMismatch {
            context: "zero-dimensional inputs".into(),
        });
    }
    for (i, x) in xs.iter().enumerate() {
        if x.len() != d {
            return Err(SurrogateError::DimensionMismatch {
                context: format!("row {i} has dimension {} (expected {d})", x.len()),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SurrogateError::DimensionMismatch {
                context: format!("row {i} contains non-finite values"),
            });
        }
    }
    if ys.iter().any(|y| !y.is_finite()) {
        return Err(SurrogateError::NonFiniteTarget);
    }
    Ok(d)
}

//! Poison-free lock acquisition.
//!
//! The serving stack wraps every worker in `catch_unwind`, so a panic
//! inside a critical section is survivable — but `std`'s locks then
//! return [`PoisonError`] to every later acquirer, and the pre-PR-10
//! tree dealt with that ad hoc: some sites `.unwrap()`ed (turning one
//! recovered panic into a cascade), others hand-rolled
//! `unwrap_or_else(PoisonError::into_inner)` in per-crate helpers. Both
//! shapes are now rejected by `autotune-lint` D12; this module is the
//! one blessed implementation.
//!
//! Recovery-by-`into_inner` is sound here because every structure the
//! workspace guards is kept in a consistent state *before* any call that
//! can panic (the lint's D8 rule machine-checks that no guard is held
//! across `catch_unwind`/`par_map*`/WAL appends), so observing the data
//! of a poisoned lock never observes a half-applied update.
//!
//! ```
//! use std::sync::Mutex;
//! use autotune::sync::{PoisonFree, PoisonFreeMutex};
//!
//! let m = Mutex::new(1u32);
//! *m.plock() += 1;
//! assert_eq!(*m.pread(), 2);
//! ```

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Deterministic, poison-recovering lock acquisition.
///
/// `pread`/`pwrite` mirror `RwLock::read`/`write`; for a `Mutex` both
/// return the same exclusive guard and [`PoisonFreeMutex::plock`] is the
/// idiomatic spelling. The `p` prefix is load-bearing: `autotune-lint`
/// recognises these methods as lock acquisitions (D7/D8 guard tracking)
/// while D12 rejects the raw panicking forms.
pub trait PoisonFree {
    /// Shared guard type.
    type ReadGuard<'a>
    where
        Self: 'a;
    /// Exclusive guard type.
    type WriteGuard<'a>
    where
        Self: 'a;

    /// Shared acquisition, recovering from poisoning.
    fn pread(&self) -> Self::ReadGuard<'_>;

    /// Exclusive acquisition, recovering from poisoning.
    fn pwrite(&self) -> Self::WriteGuard<'_>;
}

impl<T: ?Sized> PoisonFree for Mutex<T> {
    type ReadGuard<'a>
        = MutexGuard<'a, T>
    where
        T: 'a;
    type WriteGuard<'a>
        = MutexGuard<'a, T>
    where
        T: 'a;

    fn pread(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner) // lint: allow(D12) the PoisonFree impl is the one blessed recovery site
    }

    fn pwrite(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner) // lint: allow(D12) the PoisonFree impl is the one blessed recovery site
    }
}

impl<T: ?Sized> PoisonFree for RwLock<T> {
    type ReadGuard<'a>
        = RwLockReadGuard<'a, T>
    where
        T: 'a;
    type WriteGuard<'a>
        = RwLockWriteGuard<'a, T>
    where
        T: 'a;

    fn pread(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner) // lint: allow(D12) the PoisonFree impl is the one blessed recovery site
    }

    fn pwrite(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner) // lint: allow(D12) the PoisonFree impl is the one blessed recovery site
    }
}

/// `plock` as a provided alias on `Mutex` so call sites read naturally.
pub trait PoisonFreeMutex<T: ?Sized> {
    /// Exclusive acquisition, recovering from poisoning.
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T: ?Sized> PoisonFreeMutex<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        self.pwrite()
    }
}

/// Poison-recovering [`Condvar::wait`]: blocks on `cv` with `guard`,
/// returning the reacquired guard even if another holder panicked while
/// this thread slept.
pub fn pwait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    // D12 keys on lock acquisitions, so this wait-side recovery needs no
    // allow — but it is blessed for the same reason the ones above are.
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_plock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.plock();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.plock(), 7);
        *m.plock() = 8;
        assert_eq!(*m.pread(), 8);
    }

    #[test]
    fn rwlock_pread_pwrite_recover_from_poison() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.pwrite();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(l.pread().len(), 3);
        l.pwrite().push(4);
        assert_eq!(l.pread().len(), 4);
    }

    #[test]
    fn pwait_wakes_and_survives_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let (m, cv) = &*pair2;
            // Poison while setting the flag, then notify from the panic
            // unwinding path's sibling thread.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut flag = m.plock();
                *flag = true;
                panic!("poison with flag set");
            }));
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut flag = m.plock();
        while !*flag {
            flag = pwait(cv, flag);
        }
        assert!(*flag);
        drop(flag);
        waker.join().expect("waker thread");
    }

    #[test]
    fn guards_are_plain_std_guards() {
        // The wrapper adds no indirection: types are the std guards, so
        // existing code that stores or maps them keeps compiling.
        let m = Mutex::new(0u8);
        let g: MutexGuard<'_, u8> = m.plock();
        drop(g);
        let l = RwLock::new(0u8);
        let r: RwLockReadGuard<'_, u8> = l.pread();
        drop(r);
        let w: RwLockWriteGuard<'_, u8> = l.pwrite();
        drop(w);
    }
}

//! Parallel trial execution (tutorial slide 57).
//!
//! The cloud lets us run k trials at once; the optimizer supplies a
//! diverse batch (constant liar for BO), crossbeam scoped threads evaluate
//! them concurrently, and all results are reported back before the next
//! batch. Wall-clock accounting is per-batch `max` (the batch is as slow
//! as its slowest member), while total machine-seconds stay the `sum` —
//! the trade the tutorial points at with "ignores the $$ and WHr cost".

use crate::{Target, Trial, TrialStatus, TrialStorage};
use autotune_optimizer::Optimizer;
use autotune_space::Config;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Outcome of a parallel campaign.
#[derive(Debug, Clone)]
pub struct ParallelSummary {
    /// Best configuration found.
    pub best_config: Config,
    /// Its cost.
    pub best_cost: f64,
    /// Wall-clock under perfect batch parallelism, seconds.
    pub wall_clock_s: f64,
    /// Total machine-seconds consumed (the bill).
    pub machine_seconds: f64,
    /// All trials.
    pub storage: TrialStorage,
}

/// Runs `n_batches` batches of `batch_size` parallel trials.
pub fn run_parallel(
    target: &Target,
    optimizer: &mut dyn Optimizer,
    n_batches: usize,
    batch_size: usize,
    seed: u64,
) -> ParallelSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut storage = TrialStorage::new();
    let mut wall_clock = 0.0;
    let mut machine_seconds = 0.0;
    for batch_idx in 0..n_batches {
        let batch = optimizer.suggest_batch(batch_size, &mut rng);
        // Deterministic per-trial RNG streams so thread scheduling cannot
        // perturb results.
        let seeds: Vec<u64> = (0..batch.len())
            .map(|i| seed ^ (batch_idx as u64) << 32 ^ i as u64 ^ 0xA5A5_5A5A)
            .collect();
        let results: Vec<(f64, f64)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .iter()
                .zip(&seeds)
                .map(|(config, &s)| {
                    scope.spawn(move |_| {
                        let mut trial_rng = StdRng::seed_from_u64(s);
                        let rng_dyn: &mut dyn RngCore = &mut trial_rng;
                        let e = target.evaluate(config, rng_dyn);
                        (e.cost, e.result.elapsed_s)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trial thread panicked"))
                .collect()
        })
        .expect("crossbeam scope");
        let batch_max = results.iter().map(|(_, e)| *e).fold(0.0_f64, f64::max);
        wall_clock += batch_max;
        for (config, (cost, elapsed)) in batch.iter().zip(&results) {
            machine_seconds += elapsed;
            optimizer.observe(config, *cost);
            storage.record(Trial {
                id: 0,
                config: config.clone(),
                cost: *cost,
                elapsed_s: *elapsed,
                fidelity: 1.0,
                machine_id: None,
                status: if cost.is_nan() {
                    TrialStatus::Crashed
                } else {
                    TrialStatus::Complete
                },
            });
        }
    }
    let best = storage
        .best()
        .expect("at least one successful trial expected");
    ParallelSummary {
        best_config: best.config.clone(),
        best_cost: best.cost,
        wall_clock_s: wall_clock,
        machine_seconds,
        storage,
    }
}

/// Asynchronous parallel execution (slide 57's "asynchronous: suggest 1
/// point at a time, track up to k in-progress configurations").
///
/// Event-driven simulation over the benchmark durations the target
/// reports: up to `max_in_flight` trials run concurrently; the moment one
/// finishes, its result is observed and a fresh suggestion is dispatched —
/// no batch barrier. With heterogeneous trial durations this keeps all
/// slots busy, where the synchronous runner idles every slot until the
/// slowest batch member finishes.
pub fn run_async_parallel(
    target: &Target,
    optimizer: &mut dyn Optimizer,
    total_trials: usize,
    max_in_flight: usize,
    seed: u64,
) -> ParallelSummary {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    assert!(max_in_flight >= 1, "need at least one execution slot");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut storage = TrialStorage::new();
    // Min-heap of in-flight trials keyed by virtual finish time.
    // (OrderedFloat stand-in: durations are finite positive.)
    #[derive(PartialEq)]
    struct InFlight {
        finish: f64,
        config: Config,
        cost: f64,
        elapsed: f64,
    }
    impl Eq for InFlight {}
    impl PartialOrd for InFlight {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for InFlight {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.finish
                .partial_cmp(&other.finish)
                .expect("finish times are finite")
        }
    }

    let mut heap: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
    let mut clock = 0.0_f64;
    let mut dispatched = 0;
    let mut machine_seconds = 0.0;

    let dispatch = |optimizer: &mut dyn Optimizer,
                        heap: &mut BinaryHeap<Reverse<InFlight>>,
                        rng: &mut StdRng,
                        now: f64| {
        let config = optimizer.suggest(rng);
        let e = target.evaluate(&config, rng);
        heap.push(Reverse(InFlight {
            finish: now + e.result.elapsed_s,
            config,
            cost: e.cost,
            elapsed: e.result.elapsed_s,
        }));
    };

    while dispatched < total_trials.min(max_in_flight) {
        dispatch(optimizer, &mut heap, &mut rng, clock);
        dispatched += 1;
    }
    while let Some(Reverse(done)) = heap.pop() {
        clock = clock.max(done.finish);
        machine_seconds += done.elapsed;
        optimizer.observe(&done.config, done.cost);
        storage.record(Trial {
            id: 0,
            config: done.config,
            cost: done.cost,
            elapsed_s: done.elapsed,
            fidelity: 1.0,
            machine_id: None,
            status: if done.cost.is_nan() {
                TrialStatus::Crashed
            } else {
                TrialStatus::Complete
            },
        });
        if dispatched < total_trials {
            dispatch(optimizer, &mut heap, &mut rng, done.finish);
            dispatched += 1;
        }
    }
    let best = storage
        .best()
        .expect("at least one successful trial expected");
    ParallelSummary {
        best_config: best.config.clone(),
        best_cost: best.cost,
        wall_clock_s: clock,
        machine_seconds,
        storage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use autotune_optimizer::BayesianOptimizer;
    use autotune_sim::{Environment, RedisSim, Workload};

    fn redis_target() -> Target {
        Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(20_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        )
    }

    #[test]
    fn parallel_campaign_finds_good_config() {
        let target = redis_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let summary = run_parallel(&target, &mut opt, 8, 4, 3);
        assert_eq!(summary.storage.len(), 32);
        assert!(summary.best_cost.is_finite());
        // Machine seconds = sum; wall clock = sum of per-batch maxima, so
        // parallelism must buy roughly batch_size x wall-clock reduction.
        assert!(
            summary.wall_clock_s < summary.machine_seconds / 3.0,
            "wall {} vs machine {}",
            summary.wall_clock_s,
            summary.machine_seconds
        );
    }

    #[test]
    fn batch_of_one_equals_sequential_accounting() {
        let target = redis_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let summary = run_parallel(&target, &mut opt, 6, 1, 5);
        assert!((summary.wall_clock_s - summary.machine_seconds).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let target = redis_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_parallel(&target, &mut opt, 4, 4, 9).best_cost
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn async_beats_sync_on_heterogeneous_durations() {
        // Spark runtimes vary wildly with the config, so a synchronous
        // batch idles on its slowest member while async refills slots.
        let make_target = || {
            Target::simulated(
                Box::new(autotune_sim::SparkSim::new()),
                Workload::tpch(20.0),
                Environment::large(),
                Objective::MinimizeElapsed,
            )
        };
        let total = 32;
        let k = 4;
        let sync = {
            let target = make_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_parallel(&target, &mut opt, total / k, k, 21)
        };
        let asyn = {
            let target = make_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_async_parallel(&target, &mut opt, total, k, 21)
        };
        assert_eq!(asyn.storage.len(), total);
        assert!(
            asyn.wall_clock_s < sync.wall_clock_s,
            "async wall clock {} should beat sync {}",
            asyn.wall_clock_s,
            sync.wall_clock_s
        );
        assert!(asyn.best_cost.is_finite());
    }

    #[test]
    fn async_single_slot_is_sequential() {
        let target = redis_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let s = run_async_parallel(&target, &mut opt, 8, 1, 23);
        assert!((s.wall_clock_s - s.machine_seconds).abs() < 1e-9);
        assert_eq!(s.storage.len(), 8);
    }

    #[test]
    fn larger_batches_reach_quality_in_less_wall_clock() {
        // Same total trial count; batch=4 should use ~1/3 the wall clock
        // of batch=1 while finding a comparable optimum.
        let run = |batches: usize, k: usize| {
            let target = redis_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_parallel(&target, &mut opt, batches, k, 13)
        };
        let serial = run(24, 1);
        let par = run(6, 4);
        assert!(par.wall_clock_s < serial.wall_clock_s * 0.5);
        assert!(par.best_cost < serial.best_cost * 2.0, "parallel quality collapsed");
    }
}

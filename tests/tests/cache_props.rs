//! Property tests for the fingerprint-keyed config cache and its
//! durable router (ISSUE 8 acceptance):
//!
//! 1. The eviction policy never removes the sole entry of a family with
//!    live traffic, under arbitrary insert/lookup interleavings on an
//!    over-committed cache.
//! 2. Concurrent lookups racing a backfill writer never observe a torn
//!    entry: every hit's `(config, cost)` pair is one the writer
//!    actually inserted.
//! 3. Crashing a `TenantRouter` mid-stream and reopening from the WAL
//!    reproduces the exact hit/miss sequence (and final cache state) of
//!    an uninterrupted run, for arbitrary crash points and streams.

use autotune_cache::{CacheConfig, CacheLookup, ShardedCache};
use autotune_serve::{
    CampaignSpec, RouterConfig, RouterLookup, SystemKind, TenantRouter, WalConfig,
};
use autotune_space::Config;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "autotune-cacheprops-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Family anchors far apart relative to the clustering threshold, so the
/// family an op names is the family the cache routes it to.
fn anchor(family: usize) -> Vec<f64> {
    vec![100.0 * family as f64, 0.0]
}

/// A distinct fingerprint near `family`'s anchor (distinct cache key,
/// same family under a threshold of 5).
fn member(family: usize, i: usize) -> Vec<f64> {
    vec![100.0 * family as f64 + (i % 7) as f64 * 0.25, 0.1]
}

#[derive(Debug, Clone)]
enum Op {
    /// Backfill one entry for the family (admitting it on first touch).
    Insert { family: usize, variant: usize },
    /// Serve the family's anchor fingerprint, keeping the family hot.
    Lookup { family: usize },
}

fn op_strategy(n_families: usize) -> impl Strategy<Value = Op> {
    (0..2usize, 0..n_families, 0..16usize).prop_map(|(kind, family, variant)| {
        if kind == 0 {
            Op::Insert { family, variant }
        } else {
            Op::Lookup { family }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: whatever the interleaving, a family that both (a) had
    /// at least one cached entry and (b) served or received traffic
    /// within the hot window keeps at least one entry across any
    /// eviction the next insert triggers. The cache is deliberately
    /// over-committed (capacity 3, up to 6 families) so evictions fire
    /// constantly.
    #[test]
    fn eviction_never_orphans_a_hot_family(
        ops in proptest::collection::vec(op_strategy(6), 1..200),
        hot_window in 8u64..200,
    ) {
        let cache = ShardedCache::new(CacheConfig {
            threshold: 5.0,
            n_shards: 1,
            capacity_per_shard: 3,
            hot_window,
        });
        for op in &ops {
            // Pre-op view: which families hold entries, and how warm.
            let before = cache.snapshot();
            let mut had_entries: Vec<u64> = before.entries.iter().map(|e| e.family).collect();
            had_entries.dedup();
            match *op {
                Op::Insert { family, variant } => {
                    let features = member(family, variant);
                    // Route through the public miss path so the
                    // clustering model owns family identity.
                    let fam = match cache.lookup(&features) {
                        CacheLookup::Hit(h) => h.family,
                        CacheLookup::Miss { family: Some(f) } => f,
                        CacheLookup::Miss { family: None } => cache.admit_family(&features).family,
                    };
                    let cost = 10.0 + variant as f64;
                    cache.insert(fam, &features, Config::new().with("v", variant as i64), cost);
                }
                Op::Lookup { family } => {
                    let _ = cache.lookup(&anchor(family));
                }
            }
            let after = cache.snapshot();
            let heat: std::collections::BTreeMap<u64, u64> = before.heat.iter().copied().collect();
            for f in had_entries {
                let was_hot = heat
                    .get(&f)
                    .is_some_and(|&h| h >= after.tick.saturating_sub(hot_window));
                if was_hot {
                    prop_assert!(
                        after.entries.iter().any(|e| e.family == f),
                        "hot family {f} lost its last entry (op {op:?}, tick {})",
                        after.tick
                    );
                }
            }
        }
    }
}

/// Property 2: readers hammering the shared cache while a writer
/// backfills never see a torn entry. The writer inserts entries whose
/// cost is a function of the config (`cost = 5000 - v`), so any hit
/// pairing one insert's config with another's cost is detectable.
#[test]
fn concurrent_lookups_never_observe_torn_entries() {
    const WRITES: usize = 2_000;
    const READERS: usize = 3;
    let cache = Arc::new(ShardedCache::new(CacheConfig {
        threshold: 5.0,
        n_shards: 2,
        capacity_per_shard: 8,
        hot_window: 1 << 40,
    }));
    // Establish the family before the race so readers always route.
    let fam = cache.admit_family(&anchor(0)).family;
    cache.insert(fam, &anchor(0), Config::new().with("v", 5000i64), 0.0);

    let stop = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    match cache.lookup(&anchor(0)) {
                        CacheLookup::Hit(hit) => {
                            let v = hit.config.get_i64("v").expect("config missing knob");
                            let want = (5000 - v) as f64;
                            assert!(
                                hit.cost.to_bits() == want.to_bits(),
                                "torn entry: knob {v} paired with cost {}",
                                hit.cost
                            );
                            checked += 1;
                        }
                        CacheLookup::Miss { .. } => panic!("family vanished mid-race"),
                    }
                }
                checked
            })
        })
        .collect();
    // Writer: successively better incumbents (cost 5000-v falls as v
    // rises), each under a distinct key, racing the readers above.
    for i in 1..=WRITES {
        let v = i as i64;
        cache.insert(
            fam,
            &member(0, i),
            Config::new().with("v", v),
            (5000 - v) as f64,
        );
    }
    stop.store(1, Ordering::Relaxed);
    let mut total = 0;
    for r in readers {
        total += r.join().expect("reader panicked");
    }
    assert!(total > 0, "readers never observed a hit");
}

/// One lookup outcome, flattened for sequence comparison.
fn outcome_sig(out: &RouterLookup) -> String {
    match out {
        RouterLookup::Hit(h) => format!(
            "H:{}:{}:{:x}:{}",
            h.family,
            h.key,
            h.cost.to_bits(),
            h.borrowed
        ),
        RouterLookup::Miss { campaign, enqueued } => format!("M:{campaign}:{enqueued}"),
    }
}

fn stream_spec(family: usize) -> CampaignSpec {
    CampaignSpec::minimal(
        format!("fam-{family}"),
        SystemKind::Redis,
        6,
        9_000 + family as u64,
    )
}

fn stream_router_config() -> RouterConfig {
    RouterConfig {
        cache: CacheConfig {
            threshold: 5.0,
            n_shards: 2,
            capacity_per_shard: 8,
            hot_window: 4096,
        },
        journal_hits: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 3: for an arbitrary request stream and an arbitrary
    /// crash point, [crash + reopen-from-WAL + continue] produces the
    /// same hit/miss sequence — and the same final cache state — as the
    /// uninterrupted run. One scheduling round advances per request in
    /// both runs, so in-flight campaigns straddle the crash.
    #[test]
    fn crash_and_resume_reproduces_hit_miss_sequence(
        stream in proptest::collection::vec((0..3usize, 0..5usize), 12..48),
        split_frac in 0.1f64..0.9,
    ) {
        let split = ((stream.len() as f64) * split_frac) as usize;

        // Uninterrupted run.
        let dir_a = temp_dir("resume-a");
        let mut router_a =
            TenantRouter::create(&dir_a, 2, WalConfig::default(), stream_router_config())
                .expect("create A");
        let mut seq_a = Vec::new();
        for &(family, variant) in &stream {
            let out = router_a
                .lookup(&member(family, variant), &stream_spec(family))
                .expect("lookup A");
            seq_a.push(outcome_sig(&out));
            router_a.step_round().expect("round A");
        }
        let snap_a = router_a.cache().snapshot();
        drop(router_a);
        let _ = std::fs::remove_dir_all(&dir_a);

        // Same stream, crashed after `split` requests and reopened.
        let dir_b = temp_dir("resume-b");
        let mut router_b =
            TenantRouter::create(&dir_b, 2, WalConfig::default(), stream_router_config())
                .expect("create B");
        let mut seq_b = Vec::new();
        for &(family, variant) in &stream[..split] {
            let out = router_b
                .lookup(&member(family, variant), &stream_spec(family))
                .expect("lookup B pre-crash");
            seq_b.push(outcome_sig(&out));
            router_b.step_round().expect("round B pre-crash");
        }
        drop(router_b); // crash
        let (mut router_b, _report) =
            TenantRouter::open(&dir_b, 2, WalConfig::default()).expect("reopen B");
        for &(family, variant) in &stream[split..] {
            let out = router_b
                .lookup(&member(family, variant), &stream_spec(family))
                .expect("lookup B post-crash");
            seq_b.push(outcome_sig(&out));
            router_b.step_round().expect("round B post-crash");
        }
        let snap_b = router_b.cache().snapshot();
        drop(router_b);
        let _ = std::fs::remove_dir_all(&dir_b);

        prop_assert_eq!(seq_a, seq_b);
        prop_assert_eq!(snap_a, snap_b);
    }
}

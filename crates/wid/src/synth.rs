//! Synthetic benchmark generation (tutorial slide 92; Stitcher, EDBT 2019).
//!
//! Given production telemetry (a target fingerprint) and a dictionary of
//! base benchmarks with known fingerprints, find non-negative mixture
//! weights summing to one whose blended fingerprint best matches the
//! target. The system can then be tuned offline against that synthetic
//! mixture and the resulting configuration deployed to production — all
//! without ever replaying (or seeing) customer queries.
//!
//! Solved as simplex-constrained least squares by projected gradient
//! descent — small (a handful of base benchmarks), so robustness beats
//! sophistication.

use crate::{Fingerprint, Result, WidError};
use rand::{Rng, SeedableRng};

/// Shape of a synthetic multi-tenant fleet (see [`TenantFleet`]).
#[derive(Debug, Clone)]
pub struct TenantFleetConfig {
    /// Number of workload families (distinct fingerprint anchors).
    pub n_families: usize,
    /// Number of tenants drawn from those families.
    pub n_tenants: usize,
    /// Fingerprint dimensionality (must be ≥ `n_families` so anchors can
    /// sit on orthogonal axes).
    pub dim: usize,
    /// Zipf popularity exponent: tenant at popularity rank `r` gets weight
    /// `1/(r+1)^zipf_exponent`.
    pub zipf_exponent: f64,
    /// Distance of each family anchor from the origin; inter-anchor
    /// distance is `separation * sqrt(2)`.
    pub separation: f64,
    /// Per-coordinate uniform jitter applied to each tenant's fingerprint
    /// around its family anchor (within-family spread).
    pub jitter: f64,
    /// Relative spread of per-tenant workload intensity around 1.0
    /// (`rate_scale ∈ [1-spread, 1+spread]`).
    pub rate_spread: f64,
    /// Seed for family assignment, jitter, and popularity ranks.
    pub seed: u64,
}

impl Default for TenantFleetConfig {
    fn default() -> Self {
        TenantFleetConfig {
            n_families: 8,
            n_tenants: 200,
            dim: 8,
            zipf_exponent: 1.1,
            separation: 10.0,
            jitter: 0.25,
            rate_spread: 0.03,
            seed: 0,
        }
    }
}

/// One tenant of a synthetic fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant index in `[0, n_tenants)`.
    pub id: usize,
    /// Ground-truth workload family the tenant was drawn from.
    pub family: usize,
    /// The tenant's observable fingerprint (family anchor + jitter).
    pub fingerprint: Fingerprint,
    /// Workload intensity multiplier near 1.0 — same-family tenants have
    /// slightly different optima, which is what the "within 5 % of
    /// per-tenant tuned" regret gate measures.
    pub rate_scale: f64,
    /// Normalized Zipf popularity weight (sums to 1 over the fleet).
    pub weight: f64,
}

/// A synthetic multi-tenant population: `n_tenants` tenants drawn from
/// `n_families` workload families, with Zipf-distributed request
/// popularity. Models the paper's production premise that most incoming
/// workloads repeat: a handful of hot tenants (and hot families) dominate
/// the request stream, so a fingerprint-keyed config cache amortizes
/// tuning cost across the fleet.
///
/// Generation is deterministic per seed; [`TenantFleet::sample`] is a pure
/// function of the caller's RNG.
#[derive(Debug, Clone)]
pub struct TenantFleet {
    tenants: Vec<Tenant>,
    /// Cumulative popularity weights for inverse-CDF sampling.
    cumulative: Vec<f64>,
}

impl TenantFleet {
    /// Generates a fleet from `cfg`, deterministically per `cfg.seed`.
    pub fn generate(cfg: &TenantFleetConfig) -> Result<Self> {
        if cfg.n_families == 0 || cfg.n_tenants == 0 {
            return Err(WidError::NotEnoughData {
                what: "tenant fleet",
                needed: 1,
                got: 0,
            });
        }
        if cfg.dim < cfg.n_families {
            return Err(WidError::DimensionMismatch {
                expected: cfg.n_families,
                actual: cfg.dim,
            });
        }
        let geometry_ok = cfg.separation.is_finite()
            && cfg.separation > 0.0
            && cfg.jitter.is_finite()
            && cfg.jitter >= 0.0
            && cfg.jitter * 4.0 < cfg.separation;
        if !geometry_ok {
            return Err(WidError::Numerical(format!(
                "tenant fleet needs 0 <= 4*jitter < separation, got jitter {} separation {}",
                cfg.jitter, cfg.separation
            )));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        // Family anchors on orthogonal axes: pairwise distance
        // separation * sqrt(2), far outside the jitter ball.
        let anchors: Vec<Vec<f64>> = (0..cfg.n_families)
            .map(|f| {
                let mut a = vec![0.0; cfg.dim];
                a[f] = cfg.separation;
                a
            })
            .collect();
        // Popularity ranks: a seeded shuffle of tenant ids, so the hot
        // tenants are not always the low ids (and not always family 0).
        let mut ranks: Vec<usize> = (0..cfg.n_tenants).collect();
        for i in (1..ranks.len()).rev() {
            let j = rng.gen_range(0..=i);
            ranks.swap(i, j);
        }
        let mut weights = vec![0.0; cfg.n_tenants];
        for (rank, &id) in ranks.iter().enumerate() {
            weights[id] = 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent);
        }
        let total: f64 = weights.iter().sum();
        let tenants: Vec<Tenant> = (0..cfg.n_tenants)
            .map(|id| {
                let family = rng.gen_range(0..cfg.n_families);
                let features: Vec<f64> = anchors[family]
                    .iter()
                    .map(|&a| a + cfg.jitter * (rng.gen::<f64>() - 0.5) * 2.0)
                    .collect();
                let rate_scale = 1.0 + cfg.rate_spread * (rng.gen::<f64>() - 0.5) * 2.0;
                Tenant {
                    id,
                    family,
                    fingerprint: Fingerprint::from_features(features),
                    rate_scale,
                    weight: weights[id] / total,
                }
            })
            .collect();
        let mut cumulative = Vec::with_capacity(tenants.len());
        let mut acc = 0.0;
        for t in &tenants {
            acc += t.weight;
            cumulative.push(acc);
        }
        // Pin the last edge so sampling never falls off the end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(TenantFleet {
            tenants,
            cumulative,
        })
    }

    /// The tenants, indexed by id.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Draws one tenant according to the Zipf popularity weights.
    pub fn sample(&self, rng: &mut impl Rng) -> &Tenant {
        let u = rng.gen::<f64>();
        let idx = self.cumulative.partition_point(|&c| c < u);
        &self.tenants[idx.min(self.tenants.len() - 1)]
    }

    /// A streaming-cluster spawn threshold that cleanly separates this
    /// fleet's families: comfortably above the within-family spread
    /// (`jitter * sqrt(dim)`) and far below the inter-anchor distance.
    pub fn recommended_threshold(cfg: &TenantFleetConfig) -> f64 {
        (2.0 * cfg.jitter * (cfg.dim as f64).sqrt()).max(cfg.separation * 0.2)
    }
}

/// Finds mixture weights over `basis` fingerprints approximating `target`.
///
/// Returns `(weights, residual_norm)`; weights are non-negative and sum
/// to 1.
pub fn synthesize_mixture(basis: &[Fingerprint], target: &Fingerprint) -> Result<(Vec<f64>, f64)> {
    if basis.is_empty() {
        return Err(WidError::NotEnoughData {
            what: "mixture basis",
            needed: 1,
            got: 0,
        });
    }
    let d = target.dim();
    for b in basis {
        if b.dim() != d {
            return Err(WidError::DimensionMismatch {
                expected: d,
                actual: b.dim(),
            });
        }
    }
    let k = basis.len();
    // Normalize feature scales so large-magnitude channels (ops/s) do not
    // drown the utilization channels.
    let scale: Vec<f64> = (0..d)
        .map(|j| {
            let mut m = target.features()[j].abs();
            for b in basis {
                m = m.max(b.features()[j].abs());
            }
            m.max(1e-9)
        })
        .collect();
    let scaled = |f: &Fingerprint| -> Vec<f64> {
        f.features()
            .iter()
            .zip(&scale)
            .map(|(&x, &s)| x / s)
            .collect()
    };
    let b_scaled: Vec<Vec<f64>> = basis.iter().map(scaled).collect();
    let t_scaled = scaled(target);

    let mut w = vec![1.0 / k as f64; k];
    let mut best_w = w.clone();
    let mut best_res = residual(&b_scaled, &t_scaled, &w);
    // Projected gradient descent with a fixed step and simplex projection.
    let step = 0.5 / k as f64;
    for _ in 0..2000 {
        // Gradient of ||B^T w - t||^2 wrt w: 2 B (B^T w - t).
        let blend = blend(&b_scaled, &w);
        let err: Vec<f64> = blend.iter().zip(&t_scaled).map(|(&a, &b)| a - b).collect();
        for (wi, bi) in w.iter_mut().zip(&b_scaled) {
            *wi -= step * 2.0 * autotune_linalg::dot(bi, &err);
        }
        project_to_simplex(&mut w);
        let res = residual(&b_scaled, &t_scaled, &w);
        if res < best_res {
            best_res = res;
            best_w = w.clone();
        }
    }
    Ok((best_w, best_res))
}

/// Weighted blend of basis vectors.
fn blend(basis: &[Vec<f64>], w: &[f64]) -> Vec<f64> {
    let d = basis[0].len();
    let mut out = vec![0.0; d];
    for (b, &wi) in basis.iter().zip(w) {
        autotune_linalg::axpy(wi, b, &mut out);
    }
    out
}

fn residual(basis: &[Vec<f64>], target: &[f64], w: &[f64]) -> f64 {
    let b = blend(basis, w);
    autotune_linalg::squared_distance(&b, target).sqrt()
}

/// Euclidean projection onto the probability simplex
/// (Duchi et al. 2008).
fn project_to_simplex(w: &mut [f64]) {
    let n = w.len();
    let mut sorted = w.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut cum = 0.0;
    let mut theta = 0.0;
    let mut found = false;
    for (i, &v) in sorted.iter().enumerate() {
        cum += v;
        let candidate = (cum - 1.0) / (i + 1) as f64;
        if v - candidate > 0.0 {
            theta = candidate;
        } else {
            found = true;
            break;
        }
    }
    if !found {
        theta = (cum - 1.0) / n as f64;
    }
    for x in w.iter_mut() {
        *x = (*x - theta).max(0.0);
    }
    // Guard against accumulated round-off.
    let sum: f64 = w.iter().sum();
    if sum > 0.0 {
        for x in w.iter_mut() {
            *x /= sum;
        }
    } else {
        let uniform = 1.0 / n as f64;
        w.iter_mut().for_each(|x| *x = uniform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::from_features(v.to_vec())
    }

    #[test]
    fn recovers_exact_member() {
        let basis = vec![
            fp(&[1.0, 0.0, 0.0]),
            fp(&[0.0, 1.0, 0.0]),
            fp(&[0.0, 0.0, 1.0]),
        ];
        let (w, res) = synthesize_mixture(&basis, &fp(&[0.0, 1.0, 0.0])).unwrap();
        assert!(res < 1e-3, "residual {res}");
        assert!(w[1] > 0.95, "weights {w:?}");
    }

    #[test]
    fn recovers_known_mixture() {
        let basis = vec![fp(&[1.0, 0.0]), fp(&[0.0, 1.0])];
        let target = fp(&[0.3, 0.7]);
        let (w, res) = synthesize_mixture(&basis, &target).unwrap();
        assert!(res < 1e-3, "residual {res}");
        assert!((w[0] - 0.3).abs() < 0.02, "weights {w:?}");
        assert!((w[1] - 0.7).abs() < 0.02, "weights {w:?}");
    }

    #[test]
    fn weights_form_a_distribution() {
        let basis = vec![fp(&[3.0, 1.0]), fp(&[1.0, 3.0]), fp(&[2.0, 2.0])];
        let (w, _) = synthesize_mixture(&basis, &fp(&[10.0, -5.0])).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn unreachable_target_reports_residual() {
        // Target outside the simplex hull: nonzero residual.
        let basis = vec![fp(&[1.0, 0.0]), fp(&[0.0, 1.0])];
        let (_, res) = synthesize_mixture(&basis, &fp(&[2.0, 2.0])).unwrap();
        assert!(
            res > 0.1,
            "impossible target should leave residual, got {res}"
        );
    }

    #[test]
    fn scale_invariance_across_channels() {
        // Second channel is 1000x larger; the solver must still balance.
        let basis = vec![fp(&[1.0, 0.0]), fp(&[0.0, 1000.0])];
        let target = fp(&[0.5, 500.0]);
        let (w, res) = synthesize_mixture(&basis, &target).unwrap();
        assert!(res < 1e-2, "residual {res}");
        assert!((w[0] - 0.5).abs() < 0.05, "weights {w:?}");
    }

    #[test]
    fn errors_on_empty_or_mismatched() {
        assert!(matches!(
            synthesize_mixture(&[], &fp(&[1.0])),
            Err(WidError::NotEnoughData { .. })
        ));
        let basis = vec![fp(&[1.0, 2.0])];
        assert!(matches!(
            synthesize_mixture(&basis, &fp(&[1.0])),
            Err(WidError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn tenant_fleet_shape_and_determinism() {
        let cfg = TenantFleetConfig {
            n_families: 4,
            n_tenants: 50,
            dim: 4,
            seed: 9,
            ..TenantFleetConfig::default()
        };
        let a = TenantFleet::generate(&cfg).unwrap();
        let b = TenantFleet::generate(&cfg).unwrap();
        assert_eq!(a.tenants(), b.tenants());
        assert_eq!(a.tenants().len(), 50);
        let wsum: f64 = a.tenants().iter().map(|t| t.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        assert!(a.tenants().iter().all(|t| t.family < 4));
        assert!(a
            .tenants()
            .iter()
            .all(|t| (t.rate_scale - 1.0).abs() <= cfg.rate_spread + 1e-12));
    }

    #[test]
    fn tenant_fleet_families_are_separable() {
        use crate::StreamingClusters;
        let cfg = TenantFleetConfig {
            n_families: 6,
            n_tenants: 120,
            dim: 8,
            seed: 3,
            ..TenantFleetConfig::default()
        };
        let fleet = TenantFleet::generate(&cfg).unwrap();
        let mut sc = StreamingClusters::new(TenantFleet::recommended_threshold(&cfg));
        // Streaming assignment must recover exactly the ground-truth
        // families (same family ↔ same cluster).
        let mut cluster_of_family = std::collections::BTreeMap::new();
        for t in fleet.tenants() {
            let a = sc.assign(&t.fingerprint);
            let c = cluster_of_family.entry(t.family).or_insert(a.family);
            assert_eq!(*c, a.family, "family {} split across clusters", t.family);
        }
        assert_eq!(sc.len(), cluster_of_family.len());
    }

    #[test]
    fn tenant_fleet_sampling_is_zipf_skewed() {
        use rand::SeedableRng;
        let cfg = TenantFleetConfig {
            n_families: 4,
            n_tenants: 100,
            dim: 4,
            seed: 5,
            ..TenantFleetConfig::default()
        };
        let fleet = TenantFleet::generate(&cfg).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 100];
        for _ in 0..5000 {
            counts[fleet.sample(&mut rng).id] += 1;
        }
        // The top-10 most popular tenants must dominate the stream.
        let mut by_weight: Vec<usize> = (0..100).collect();
        by_weight.sort_by(|&a, &b| {
            fleet.tenants()[b]
                .weight
                .total_cmp(&fleet.tenants()[a].weight)
        });
        let top10: usize = by_weight[..10].iter().map(|&i| counts[i]).sum();
        assert!(top10 > 2500, "zipf head too light: {top10}/5000");
    }

    #[test]
    fn tenant_fleet_rejects_bad_shapes() {
        let cfg = TenantFleetConfig {
            n_families: 10,
            dim: 4,
            ..Default::default()
        };
        assert!(matches!(
            TenantFleet::generate(&cfg),
            Err(WidError::DimensionMismatch { .. })
        ));
        let cfg2 = TenantFleetConfig {
            // jitter ball swallows the anchors
            jitter: TenantFleetConfig::default().separation,
            ..Default::default()
        };
        assert!(matches!(
            TenantFleet::generate(&cfg2),
            Err(WidError::Numerical(_))
        ));
        let cfg3 = TenantFleetConfig {
            n_tenants: 0,
            ..Default::default()
        };
        assert!(matches!(
            TenantFleet::generate(&cfg3),
            Err(WidError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn simplex_projection_properties() {
        let mut w = vec![0.5, 0.5, 2.0];
        project_to_simplex(&mut w);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
        // Dominant entry keeps the lead.
        assert!(w[2] > w[0] && w[2] > w[1]);

        let mut neg = vec![-1.0, -2.0, -3.0];
        project_to_simplex(&mut neg);
        assert!((neg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

//! Property-based tests for configuration-space invariants.

use autotune_space::{Condition, Config, Constraint, Param, Space};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_space() -> Space {
    Space::builder()
        .add(Param::float("f_lin", -5.0, 5.0))
        .add(Param::float("f_log", 0.001, 1000.0).log_scale())
        .add(Param::int("i_lin", -10, 10))
        .add(Param::int("i_log", 1, 4096).log_scale())
        .add(Param::quantized("q", 0.0, 2.0, 0.5))
        .add(Param::categorical("cat", &["a", "b", "c", "d"]))
        .add(Param::bool("flag"))
        .build()
        .unwrap()
}

proptest! {
    /// decode(encode(decode(x))) == decode(x): decoding is idempotent under
    /// the round trip, even though raw x snaps to grids.
    #[test]
    fn decode_encode_decode_is_identity(x in proptest::collection::vec(0.0..=1.0f64, 7)) {
        let space = mixed_space();
        let cfg = space.decode_unit(&x).unwrap();
        let x2 = space.encode_unit(&cfg).unwrap();
        let cfg2 = space.decode_unit(&x2).unwrap();
        prop_assert_eq!(cfg, cfg2);
    }

    /// Every decoded config validates against the space.
    #[test]
    fn decoded_configs_validate(x in proptest::collection::vec(0.0..=1.0f64, 7)) {
        let space = mixed_space();
        let cfg = space.decode_unit(&x).unwrap();
        prop_assert!(space.validate_config(&cfg).is_ok());
    }

    /// Unit encodings always land in [0, 1].
    #[test]
    fn encodings_in_unit_cube(seed in 0u64..1000) {
        let space = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let x = space.encode_unit(&cfg).unwrap();
        prop_assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let oh = space.encode_onehot(&cfg).unwrap();
        prop_assert_eq!(oh.len(), space.onehot_dim());
        prop_assert!(oh.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// One-hot groups contain exactly one 1 per categorical.
    #[test]
    fn onehot_groups_sum_to_one(seed in 0u64..1000) {
        let space = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let oh = space.encode_onehot(&cfg).unwrap();
        // Layout: 5 scalars, then 4 categorical indicators, then bool.
        let group = &oh[5..9];
        let sum: f64 = group.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-12);
        prop_assert!(group.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    /// Sampled configs always validate and encode.
    #[test]
    fn samples_validate(seed in 0u64..1000) {
        let space = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        prop_assert!(space.validate_config(&cfg).is_ok());
    }

    /// Samples from a constrained space are feasible.
    #[test]
    fn constrained_samples_feasible(seed in 0u64..500) {
        let space = Space::builder()
            .add(Param::float("a", 0.0, 10.0))
            .add(Param::float("b", 0.0, 10.0))
            .constraint(Constraint::linear_le(&[("a", 1.0), ("b", 1.0)], 12.0))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        prop_assert!(space.is_feasible(&cfg));
    }

    /// Neighbors of valid configs are valid.
    #[test]
    fn neighbors_valid(seed in 0u64..500, scale in 0.01..0.5f64) {
        let space = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let n = space.neighbor(&cfg, scale, &mut rng);
        prop_assert!(space.validate_config(&n).is_ok());
    }

    /// Conditional spaces: decode never leaves an orphaned child.
    #[test]
    fn conditional_decode_consistent(x in proptest::collection::vec(0.0..=1.0f64, 3)) {
        let space = Space::builder()
            .add(Param::bool("jit"))
            .add(Param::float("jit_cost", 1.0, 100.0))
            .add(Param::float("always", 0.0, 1.0))
            .condition(Condition::equals("jit_cost", "jit", true))
            .build()
            .unwrap();
        let cfg = space.decode_unit(&x).unwrap();
        let jit = cfg.get_bool("jit").unwrap();
        prop_assert_eq!(jit, cfg.get("jit_cost").is_some());
        prop_assert!(cfg.get("always").is_some());
    }

    /// Config serde round-trips through JSON.
    #[test]
    fn config_serde_roundtrip(seed in 0u64..500) {
        let space = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: Config = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(cfg, back);
    }

    /// Grid points are distinct and feasible.
    #[test]
    fn grid_points_distinct(per_dim in 1usize..4) {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .add(Param::int("n", 1, 5))
            .build()
            .unwrap();
        let grid = space.grid(per_dim);
        let mut seen = std::collections::BTreeSet::new();
        for c in &grid {
            prop_assert!(space.validate_config(c).is_ok());
            prop_assert!(seen.insert(c.render()), "duplicate grid point {}", c);
        }
    }
}

//! A small, lossy-but-safe Rust lexer.
//!
//! The analyzer does not need a full grammar: every diagnostic in
//! [`crate::rules`] is a pattern over identifier/punctuation sequences
//! plus item-level scope. What it *does* need is to never misread source
//! text — a `partial_cmp` inside a string literal or a doc comment must
//! not fire a diagnostic, and a `// lint: allow(..)` comment must be
//! recoverable with its exact line. So the lexer handles the full literal
//! syntax (nested block comments, raw strings with arbitrary `#` fences,
//! byte/char literals, lifetimes) and degrades to single-character
//! punctuation for everything it does not care about.

/// What a token is; only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String / raw-string / byte-string literal (content dropped).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Numeric literal (lexed loosely; never matched by rules).
    Num,
    /// `// ...` comment, including doc comments; text retained.
    LineComment,
    /// `/* ... */` comment (nesting handled); text dropped.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text for idents, puncts and line comments; empty for
    /// literal kinds whose content the rules never inspect.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    fn new(kind: TokKind, text: impl Into<String>, line: u32) -> Self {
        Tok {
            kind,
            text: text.into(),
            line,
        }
    }

    /// True when this token is an identifier equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for comment tokens (skipped by rule matching).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated literals consume
/// the rest of the file, which is the safe direction for an analyzer
/// (nothing after them can fire a false diagnostic).
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    // Advances past a quoted body, honouring backslash escapes; returns
    // the index just after the closing quote (or `n`).
    let scan_quoted = |chars: &[char], mut j: usize, quote: char, line: &mut u32| -> usize {
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\n' => {
                    *line += 1;
                    j += 1;
                }
                c if c == quote => return j + 1,
                _ => j += 1,
            }
        }
        n
    };

    while i < n {
        let c = chars[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let mut j = i;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                toks.push(Tok::new(TokKind::LineComment, text, start_line));
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                toks.push(Tok::new(TokKind::BlockComment, "", start_line));
                i = j;
            }
            '"' => {
                i = scan_quoted(&chars, i + 1, '"', &mut line);
                toks.push(Tok::new(TokKind::Str, "", start_line));
            }
            '\'' => {
                // Lifetime vs char literal: `'ident` not closed by a quote
                // is a lifetime; everything else is a char literal.
                let is_lifetime = i + 1 < n
                    && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                    && chars[i + 1] != '\\'
                    && !(i + 2 < n && chars[i + 2] == '\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    toks.push(Tok::new(TokKind::Lifetime, "", start_line));
                    i = j;
                } else {
                    i = scan_quoted(&chars, i + 1, '\'', &mut line);
                    toks.push(Tok::new(TokKind::Char, "", start_line));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if let Some(skip) = raw_or_byte_literal(&chars, i, &mut line) {
                    let kind = if chars[i] == 'b' && i + 1 < n && chars[i + 1] == '\'' {
                        TokKind::Char
                    } else {
                        TokKind::Str
                    };
                    toks.push(Tok::new(kind, "", start_line));
                    i = skip;
                    continue;
                }
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                toks.push(Tok::new(TokKind::Ident, text, start_line));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                // A fraction part only when followed by a digit, so method
                // calls on integers (`1.max(2)`) stay separate tokens.
                if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                }
                toks.push(Tok::new(TokKind::Num, "", start_line));
                i = j;
            }
            c => {
                toks.push(Tok::new(TokKind::Punct, c.to_string(), start_line));
                i += 1;
            }
        }
    }
    toks
}

/// If position `i` starts a raw-string or byte literal (`r"`, `r#"`,
/// `b"`, `b'`, `br#"` ...), returns the index just past it.
fn raw_or_byte_literal(chars: &[char], i: usize, line: &mut u32) -> Option<usize> {
    let n = chars.len();
    let (raw, mut j) = match chars[i] {
        'r' => (true, i + 1),
        'b' if i + 1 < n && chars[i + 1] == 'r' => (true, i + 2),
        'b' => (false, i + 1),
        _ => return None,
    };
    if raw {
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` hash characters; no escapes
        // inside raw strings.
        while j < n {
            if chars[j] == '\n' {
                *line += 1;
                j += 1;
            } else if chars[j] == '"'
                && n - (j + 1) >= hashes
                && chars[j + 1..].iter().take(hashes).all(|&c| c == '#')
            {
                return Some(j + 1 + hashes);
            } else {
                j += 1;
            }
        }
        Some(n)
    } else {
        // b"..." or b'...'
        if j >= n || (chars[j] != '"' && chars[j] != '\'') {
            return None;
        }
        let quote = chars[j];
        j += 1;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\n' => {
                    *line += 1;
                    j += 1;
                }
                c if c == quote => return Some(j + 1),
                _ => j += 1,
            }
        }
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("Instant::now()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Instant", ":", ":", "now", "(", ")"]);
    }

    #[test]
    fn strings_hide_their_content() {
        assert_eq!(idents(r#"let x = "Instant::now()";"#), vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        assert_eq!(
            idents(r###"let x = r#"unwrap() "quoted" "#;"###),
            vec!["let", "x"]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_keep_lines_and_text() {
        let toks = lex("a\n// lint: allow(D5) reason\nb /* block\nspanning */ c");
        let comment = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .expect("line comment lexed");
        assert_eq!(comment.line, 2);
        assert_eq!(comment.text, "// lint: allow(D5) reason");
        let c = toks.iter().find(|t| t.is_ident("c")).expect("c survives");
        assert_eq!(c.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("/* outer /* inner */ still comment */ real"),
            vec!["real"]
        );
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let toks = lex("1.max(2); 1.5_f64.total_cmp(&x)");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks.iter().any(|t| t.is_ident("total_cmp")));
    }
}

//! Acquisition functions (tutorial slides 47-48).
//!
//! Given the surrogate's posterior at a candidate point, an acquisition
//! function scores how "interesting" that point is to evaluate next,
//! trading off exploitation (low predicted mean) against exploration (high
//! predictive uncertainty). All definitions below follow the
//! **minimization** convention used throughout the workspace:
//!
//! * [`AcquisitionFunction::ProbabilityOfImprovement`] — `P(f(x) < f*)`;
//! * [`AcquisitionFunction::ExpectedImprovement`] —
//!   `E[max(f* - f(x), 0)]`, which also weighs the *magnitude* of
//!   improvement;
//! * [`AcquisitionFunction::LowerConfidenceBound`] — `-(m(x) - βσ(x))`
//!   scored for maximization; β ≥ 0 sets explore/exploit (slide 48);
//! * [`AcquisitionFunction::ThompsonSample`] — draw from the posterior at
//!   the point; the argmin of a draw is a Thompson sample, a natural fit
//!   for bandit-style discrete spaces (slide 51).

use autotune_linalg::stats::{normal_cdf, normal_pdf};
use autotune_surrogate::Prediction;
use rand::Rng;

/// Acquisition-function selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcquisitionFunction {
    /// Probability of improving on the incumbent.
    ProbabilityOfImprovement,
    /// Expected improvement over the incumbent (the BO default).
    ExpectedImprovement,
    /// Lower confidence bound `m - βσ` (minimization analogue of UCB).
    LowerConfidenceBound {
        /// Exploration weight β ≥ 0.
        beta: f64,
    },
    /// One posterior draw per candidate; maximizing the score across
    /// candidates approximates Thompson sampling.
    ThompsonSample,
}

impl AcquisitionFunction {
    /// Scores a candidate; **larger is better** regardless of variant.
    ///
    /// `best` is the incumbent objective value (minimization). `rng` is
    /// only consulted by [`AcquisitionFunction::ThompsonSample`].
    pub fn score(&self, pred: &Prediction, best: f64, rng: &mut impl Rng) -> f64 {
        match *self {
            AcquisitionFunction::ThompsonSample => {
                let sigma = pred.std_dev();
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                -(pred.mean + sigma * z)
            }
            _ => self.score_pure(pred, best),
        }
    }

    /// Scores a candidate without consulting an RNG. Identical to
    /// [`AcquisitionFunction::score`] for the deterministic variants; this
    /// is what parallel candidate scoring calls so that threads never touch
    /// the suggestion stream.
    ///
    /// # Panics
    /// Panics for [`AcquisitionFunction::ThompsonSample`], whose score *is*
    /// a posterior draw — check [`AcquisitionFunction::consumes_rng`]
    /// first.
    pub fn score_pure(&self, pred: &Prediction, best: f64) -> f64 {
        let sigma = pred.std_dev();
        match *self {
            AcquisitionFunction::ProbabilityOfImprovement => {
                if sigma < 1e-12 {
                    // Degenerate posterior: improvement is 0/1.
                    return if pred.mean < best { 1.0 } else { 0.0 };
                }
                normal_cdf((best - pred.mean) / sigma)
            }
            AcquisitionFunction::ExpectedImprovement => {
                if sigma < 1e-12 {
                    return (best - pred.mean).max(0.0);
                }
                let z = (best - pred.mean) / sigma;
                (best - pred.mean) * normal_cdf(z) + sigma * normal_pdf(z)
            }
            AcquisitionFunction::LowerConfidenceBound { beta } => {
                // Minimize m - βσ  ==  maximize -(m - βσ).
                -(pred.mean - beta * sigma)
            }
            AcquisitionFunction::ThompsonSample => {
                // Thompson sampling draws from the posterior, which needs
                // an RNG; a pure score cannot honor it.
                panic!("use score() with an RNG") // lint: allow(D5) documented misuse guard
            }
        }
    }

    /// Whether [`AcquisitionFunction::score`] consumes random draws. RNG-
    /// consuming acquisitions must be scored sequentially in candidate
    /// order to keep suggestion streams deterministic.
    pub fn consumes_rng(&self) -> bool {
        matches!(self, AcquisitionFunction::ThompsonSample)
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AcquisitionFunction::ProbabilityOfImprovement => "PI",
            AcquisitionFunction::ExpectedImprovement => "EI",
            AcquisitionFunction::LowerConfidenceBound { .. } => "LCB",
            AcquisitionFunction::ThompsonSample => "TS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pred(mean: f64, variance: f64) -> Prediction {
        Prediction { mean, variance }
    }

    #[test]
    fn ei_zero_when_certain_and_worse() {
        let mut rng = StdRng::seed_from_u64(0);
        let af = AcquisitionFunction::ExpectedImprovement;
        let s = af.score(&pred(5.0, 0.0), 1.0, &mut rng);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn ei_equals_gap_when_certain_and_better() {
        let mut rng = StdRng::seed_from_u64(0);
        let af = AcquisitionFunction::ExpectedImprovement;
        let s = af.score(&pred(0.5, 0.0), 1.0, &mut rng);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ei_increases_with_uncertainty_at_equal_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let af = AcquisitionFunction::ExpectedImprovement;
        let low = af.score(&pred(1.0, 0.01), 1.0, &mut rng);
        let high = af.score(&pred(1.0, 1.0), 1.0, &mut rng);
        assert!(high > low);
    }

    #[test]
    fn ei_closed_form_value() {
        // mean = best -> z = 0 -> EI = sigma * phi(0).
        let mut rng = StdRng::seed_from_u64(0);
        let af = AcquisitionFunction::ExpectedImprovement;
        let s = af.score(&pred(1.0, 4.0), 1.0, &mut rng);
        assert!((s - 2.0 * 0.3989422804).abs() < 1e-6);
    }

    #[test]
    fn pi_is_a_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let af = AcquisitionFunction::ProbabilityOfImprovement;
        for (m, v, b) in [(0.0, 1.0, 1.0), (5.0, 2.0, 1.0), (-3.0, 0.5, 0.0)] {
            let s = af.score(&pred(m, v), b, &mut rng);
            assert!((0.0..=1.0).contains(&s), "PI {s} out of [0,1]");
        }
        // Better mean -> higher PI.
        let good = af.score(&pred(0.0, 1.0), 1.0, &mut rng);
        let bad = af.score(&pred(2.0, 1.0), 1.0, &mut rng);
        assert!(good > bad);
    }

    #[test]
    fn pi_degenerate_posterior() {
        let mut rng = StdRng::seed_from_u64(0);
        let af = AcquisitionFunction::ProbabilityOfImprovement;
        assert_eq!(af.score(&pred(0.5, 0.0), 1.0, &mut rng), 1.0);
        assert_eq!(af.score(&pred(1.5, 0.0), 1.0, &mut rng), 0.0);
    }

    #[test]
    fn lcb_beta_controls_exploration() {
        let mut rng = StdRng::seed_from_u64(0);
        // Candidate A: good mean, no variance. B: worse mean, high variance.
        let a = pred(1.0, 0.0);
        let b = pred(2.0, 4.0);
        let exploit = AcquisitionFunction::LowerConfidenceBound { beta: 0.0 };
        let explore = AcquisitionFunction::LowerConfidenceBound { beta: 2.0 };
        assert!(exploit.score(&a, 0.0, &mut rng) > exploit.score(&b, 0.0, &mut rng));
        assert!(explore.score(&b, 0.0, &mut rng) > explore.score(&a, 0.0, &mut rng));
    }

    #[test]
    fn thompson_sampling_varies_but_tracks_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let af = AcquisitionFunction::ThompsonSample;
        let scores: Vec<f64> = (0..200)
            .map(|_| af.score(&pred(3.0, 1.0), 0.0, &mut rng))
            .collect();
        let mean = autotune_linalg::stats::mean(&scores);
        let sd = autotune_linalg::stats::std_dev(&scores);
        assert!((mean + 3.0).abs() < 0.3, "TS mean {mean} should be near -3");
        assert!((sd - 1.0).abs() < 0.3, "TS spread {sd} should be near 1");
    }

    #[test]
    fn names() {
        assert_eq!(AcquisitionFunction::ExpectedImprovement.name(), "EI");
        assert_eq!(
            AcquisitionFunction::LowerConfidenceBound { beta: 1.0 }.name(),
            "LCB"
        );
    }
}

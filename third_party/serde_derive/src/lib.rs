//! Offline stub of `serde_derive` (see `third_party/README.md`).
//!
//! Generates `Serialize`/`Deserialize` impls against the stub `serde`
//! crate's `Content` value-tree model. Supported item shapes — which
//! cover every derive site in this workspace — are:
//!
//! * structs with named fields,
//! * enums with unit, tuple (externally tagged; arity 1 = newtype), and
//!   struct variants,
//! * field attributes `#[serde(default)]` and `#[serde(with = "path")]`.
//!
//! Anything outside that subset fails the build with a clear message
//! rather than silently mis-serializing. Parsing is done directly on
//! `proc_macro` token trees (no `syn`/`quote`, which are unavailable
//! offline); code generation goes through strings, which is fine for
//! the generic-free types used here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    default: bool,
    with: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Extracts `default` / `with = "path"` from a `#[serde(...)]` attribute
/// group's inner stream, if it is one.
fn parse_serde_attr(stream: TokenStream, default: &mut bool, with: &mut Option<String>) {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let mut toks = inner.into_iter().peekable();
    while let Some(t) = toks.next() {
        if let TokenTree::Ident(i) = &t {
            match i.to_string().as_str() {
                "default" => *default = true,
                "with" => {
                    // expect `= "path"`
                    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        toks.next();
                        if let Some(TokenTree::Literal(l)) = toks.next() {
                            let s = l.to_string();
                            *with = Some(s.trim_matches('"').to_string());
                        }
                    }
                }
                other => panic!("serde stub derive: unsupported serde attribute `{other}`"),
            }
        }
    }
}

/// Parses the fields of a named-field body (struct or struct variant).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        let mut default = false;
        let mut with = None;
        // attributes
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            if let Some(TokenTree::Group(g)) = it.next() {
                parse_serde_attr(g.stream(), &mut default, &mut with);
            }
        }
        // visibility
        if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            it.next();
            if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                it.next();
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(t) => panic!("serde stub derive: expected field name, got `{t}`"),
            None => break,
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde stub derive: expected `:` after field `{name}` (tuple structs are unsupported)"),
        }
        // type: tokens until a comma at angle-bracket depth 0
        let mut depth = 0i32;
        let mut ty = TokenStream::new();
        while let Some(t) = it.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        it.next();
                        break;
                    }
                    _ => {}
                }
            }
            ty.extend([it.next().unwrap()]);
        }
        fields.push(Field {
            name,
            ty: ty.to_string(),
            default,
            with,
        });
    }
    fields
}

/// Splits a tuple-variant's parenthesized type list at top-level commas.
fn parse_tuple_types(stream: TokenStream) -> Vec<String> {
    let mut types = Vec::new();
    let mut depth = 0i32;
    let mut cur = TokenStream::new();
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    types.push(cur.to_string());
                    cur = TokenStream::new();
                    continue;
                }
                _ => {}
            }
        }
        cur.extend([t]);
    }
    if !cur.is_empty() {
        types.push(cur.to_string());
    }
    types
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // attributes (e.g. doc comments, #[default]) — serde attrs on
        // variants are not used in this workspace.
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            it.next();
        }
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(t) => panic!("serde stub derive: expected variant name, got `{t}`"),
            None => break,
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let tys = parse_tuple_types(g.stream());
                it.next();
                VariantKind::Tuple(tys)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // optional trailing comma (or `= discr`, unsupported)
        match it.next() {
            None => {
                variants.push(Variant { name, kind });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(t) => panic!("serde stub derive: unexpected token `{t}` after variant"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let kind;
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // attribute body
            }
            Some(TokenTree::Ident(i)) => match i.to_string().as_str() {
                "pub" => {
                    if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        it.next();
                    }
                }
                "struct" => {
                    kind = "struct";
                    break;
                }
                "enum" => {
                    kind = "enum";
                    break;
                }
                other => panic!("serde stub derive: unexpected `{other}`"),
            },
            Some(t) => panic!("serde stub derive: unexpected token `{t}`"),
            None => panic!("serde stub derive: ran out of input"),
        }
    }
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => panic!("serde stub derive: expected item name"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic types are unsupported (derive on `{name}`)");
    }
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde stub derive: `{name}` has no braced body (tuple/unit structs unsupported)"
        ),
    };
    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

// ---------------------------------------------------------------- serialize

/// Expression serializing `expr` (a reference) to a `Content`, honoring a
/// `with` override. `err` is the expression mapping the module's error
/// into the surrounding serializer's error type.
fn ser_value_expr(expr: &str, with: &Option<String>) -> String {
    match with {
        Some(path) => format!(
            "{path}::serialize({expr}, ::serde::__private::ContentSerializer::new())\
             .map_err(<S::Error as ::serde::ser::Error>::custom)?"
        ),
        None => format!("::serde::__private::to_content({expr})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let mut b = String::from(
                "let mut __m: Vec<(String, ::serde::__private::Content)> = Vec::new();\n",
            );
            for f in fields {
                let value = ser_value_expr(&format!("&self.{}", f.name), &f.with);
                b.push_str(&format!(
                    "__m.push((\"{}\".to_string(), {value}));\n",
                    f.name
                ));
            }
            b.push_str("__s.serialize_content(::serde::__private::Content::Map(__m))\n");
            (name, b)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => __s.serialize_content(\
                         ::serde::__private::Content::Str(\"{vn}\".to_string())),\n"
                    )),
                    VariantKind::Tuple(tys) if tys.len() == 1 => {
                        let val = ser_value_expr("__0", &None);
                        arms.push_str(&format!(
                            "{name}::{vn}(__0) => __s.serialize_content(\
                             ::serde::__private::Content::Map(vec![(\"{vn}\".to_string(), {val})])),\n"
                        ));
                    }
                    VariantKind::Tuple(tys) => {
                        let binds: Vec<String> = (0..tys.len()).map(|i| format!("__{i}")).collect();
                        let items: Vec<String> =
                            binds.iter().map(|b| ser_value_expr(b, &None)).collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => __s.serialize_content(\
                             ::serde::__private::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::__private::Content::Seq(vec![{}]))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut items = String::new();
                        for f in fields {
                            let val = ser_value_expr(&f.name, &f.with);
                            items.push_str(&format!("(\"{}\".to_string(), {val}), ", f.name));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => __s.serialize_content(\
                             ::serde::__private::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::__private::Content::Map(vec![{items}]))])),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, __s: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}}}\n}}\n"
    )
}

// -------------------------------------------------------------- deserialize

const ERR: &str = "<D::Error as ::serde::de::Error>::custom";

/// Statement extracting one named field from `__m` into `let {bind}: {ty}`.
fn de_field_stmt(owner: &str, f: &Field, bind: &str) -> String {
    let ty = &f.ty;
    let name = &f.name;
    let from_content = match &f.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::__private::ContentDeserializer::new(__c))\
             .map_err({ERR})?"
        ),
        None => format!(
            "::serde::Deserialize::deserialize(\
             ::serde::__private::ContentDeserializer::new(__c)).map_err({ERR})?"
        ),
    };
    let missing = if f.default {
        "::core::default::Default::default()".to_string()
    } else {
        format!("return Err({ERR}(\"{owner}: missing field `{name}`\"))")
    };
    format!(
        "let {bind}: {ty} = match ::serde::__private::take_field(&mut __m, \"{name}\") {{\n\
         Some(__c) => {from_content},\nNone => {missing},\n}};\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let mut b = format!(
                "let mut __m = match __d.deserialize_content()? {{\n\
                 ::serde::__private::Content::Map(m) => m,\n\
                 _ => return Err({ERR}(\"{name}: expected map\")),\n}};\n"
            );
            let mut ctor = String::new();
            for (i, f) in fields.iter().enumerate() {
                let bind = format!("__f{i}");
                b.push_str(&de_field_stmt(name, f, &bind));
                ctor.push_str(&format!("{}: {bind}, ", f.name));
            }
            b.push_str(&format!("Ok({name} {{ {ctor} }})\n"));
            (name, b)
        }
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(tys) if tys.len() == 1 => {
                        let ty = &tys[0];
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __v: {ty} = ::serde::Deserialize::deserialize(\
                             ::serde::__private::ContentDeserializer::new(__v)).map_err({ERR})?;\n\
                             Ok({name}::{vn}(__v))\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(tys) => {
                        let n = tys.len();
                        let mut fields = String::new();
                        let mut ctor = String::new();
                        for (i, ty) in tys.iter().enumerate() {
                            fields.push_str(&format!(
                                "let __t{i}: {ty} = ::serde::Deserialize::deserialize(\
                                 ::serde::__private::ContentDeserializer::new(\
                                 __seq.remove(0))).map_err({ERR})?;\n"
                            ));
                            ctor.push_str(&format!("__t{i}, "));
                        }
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet mut __seq = match __v {{\n\
                             ::serde::__private::Content::Seq(s) => s,\n\
                             _ => return Err({ERR}(\"{name}::{vn}: expected sequence\")),\n}};\n\
                             if __seq.len() != {n} {{\n\
                             return Err({ERR}(\"{name}::{vn}: wrong tuple arity\"));\n}}\n\
                             {fields}Ok({name}::{vn}({ctor}))\n}}\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut b = format!(
                            "let mut __m = match __v {{\n\
                             ::serde::__private::Content::Map(m) => m,\n\
                             _ => return Err({ERR}(\"{name}::{vn}: expected map\")),\n}};\n"
                        );
                        let mut ctor = String::new();
                        for (i, f) in fields.iter().enumerate() {
                            let bind = format!("__f{i}");
                            b.push_str(&de_field_stmt(&format!("{name}::{vn}"), f, &bind));
                            ctor.push_str(&format!("{}: {bind}, ", f.name));
                        }
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{\n{b}Ok({name}::{vn} {{ {ctor} }})\n}}\n"
                        ));
                    }
                }
            }
            let b = format!(
                "match __d.deserialize_content()? {{\n\
                 ::serde::__private::Content::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err({ERR}(format!(\"{name}: unknown variant `{{__other}}`\"))),\n}},\n\
                 ::serde::__private::Content::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = __m.remove(0);\nmatch __k.as_str() {{\n{map_arms}\
                 __other => Err({ERR}(format!(\"{name}: unknown variant `{{__other}}`\"))),\n}}\n}},\n\
                 _ => Err({ERR}(\"{name}: expected string or single-entry map\")),\n}}\n"
            );
            (name, b)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(__d: D) \
         -> ::core::result::Result<Self, D::Error> {{\n{body}}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stub derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stub derive: generated invalid Deserialize impl")
}

//! Deterministic fault injection for tuning campaigns.
//!
//! Real tuning campaigns lose trials to *infrastructure*, not just to
//! deterministically-bad configurations: machines blip, benchmarks hang,
//! co-tenants turn a run into a straggler, a harness reports a corrupted
//! number, a whole VM drops out for an hour. Production tuners (MLOS,
//! TUNA, HUNTER) retry, time out and route around sick machines instead
//! of feeding every failure to the learner as a crash penalty — and a
//! simulator has to model those failure modes for results to transfer.
//!
//! A [`FaultPlan`] is a seeded, virtual-clock-driven fault schedule,
//! orthogonal to the [`crate::CloudNoise`] fleet: given a trial id, a
//! retry attempt, the machine the trial landed on and the virtual time it
//! started, it deterministically decides whether the trial is hit by a
//! fault and how hard. The same `(seed, trial, attempt)` always rolls the
//! same fault, so campaigns replay byte-for-byte — a retry is a *new*
//! attempt and may genuinely succeed, which is what makes retrying
//! transient failures worthwhile.

use serde::{Deserialize, Serialize};

/// Why a trial failed (or got a degraded measurement).
///
/// The key distinction the executor acts on: [`FailureKind::ConfigCrash`]
/// is *deterministic* — this configuration kills the system and a retry
/// is wasted money — while the infrastructure kinds are *transient* and
/// worth retrying on a (possibly different) machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The configuration itself crashes the system under test (OOM,
    /// failed start). Deterministic: retries fail the same way.
    ConfigCrash,
    /// Transient machine failure mid-trial (process killed, network
    /// partition). A retry draws a fresh fate.
    Transient,
    /// The machine was inside a scheduled outage window.
    Outage,
    /// The trial wedged and would never finish on its own; only a
    /// wall-clock timeout gets the slot back.
    Hang,
    /// The trial finished, but a noisy neighbour made it pathologically
    /// slow. The measurement is suspect.
    Straggler,
    /// The trial finished, but the reported measurement is corrupted
    /// (inflated by a multiplicative factor).
    Corruption,
}

impl FailureKind {
    /// True for failures caused by infrastructure rather than the
    /// configuration — the retryable kinds.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FailureKind::Transient | FailureKind::Outage | FailureKind::Hang
        )
    }

    /// Short label for reports and event logs.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::ConfigCrash => "config-crash",
            FailureKind::Transient => "transient",
            FailureKind::Outage => "outage",
            FailureKind::Hang => "hang",
            FailureKind::Straggler => "straggler",
            FailureKind::Corruption => "corruption",
        }
    }
}

/// A fault rolled for one trial attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What went wrong.
    pub kind: FailureKind,
    /// Kind-specific magnitude: for [`FailureKind::Transient`] /
    /// [`FailureKind::Outage`] the fraction of the run completed before
    /// dying (in `(0, 1)`); for [`FailureKind::Hang`] /
    /// [`FailureKind::Straggler`] the elapsed-time multiplier; for
    /// [`FailureKind::Corruption`] the cost-inflation multiplier.
    pub severity: f64,
}

/// A scheduled machine outage: `machine_id` is down (every trial started
/// on it fails) for virtual times in `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// The machine that is down.
    pub machine_id: usize,
    /// Window start, virtual-clock seconds.
    pub start_s: f64,
    /// Window end (exclusive), virtual-clock seconds.
    pub end_s: f64,
}

/// A seeded, deterministic per-trial fault schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    /// Probability a trial attempt dies to a transient machine failure.
    pub transient_prob: f64,
    /// Probability a trial attempt hangs.
    pub hang_prob: f64,
    /// Minimum elapsed-time multiplier of a hang (a hung trial runs
    /// `[hang_factor, 2*hang_factor)` times longer than the benchmark).
    pub hang_factor: f64,
    /// Probability a trial attempt is a straggler.
    pub straggler_prob: f64,
    /// Maximum slowdown of a straggler (drawn from `[1.5, factor)`).
    pub straggler_factor: f64,
    /// Probability the measurement comes back corrupted.
    pub corruption_prob: f64,
    /// Maximum multiplicative cost inflation of a corrupted measurement
    /// (drawn from `[1.5, factor)`).
    pub corruption_factor: f64,
    /// Scheduled machine outage windows.
    pub outages: Vec<OutageWindow>,
    /// Per-machine fault-rate multipliers: `(machine_id, factor)` scales
    /// the transient/straggler/corruption probabilities for trials on
    /// that machine (a "sick" machine that quarantine should catch).
    pub sick_machines: Vec<(usize, f64)>,
}

/// SplitMix64 finalizer: decorrelates adjacent inputs.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A mild plan: occasional transient failures and stragglers, rare
    /// hangs and corruption. Representative of a healthy cloud fleet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_prob: 0.04,
            hang_prob: 0.01,
            hang_factor: 25.0,
            straggler_prob: 0.04,
            straggler_factor: 4.0,
            corruption_prob: 0.02,
            corruption_factor: 3.0,
            outages: Vec::new(),
            sick_machines: Vec::new(),
        }
    }

    /// An aggressive plan: the stress regime of `E30` — enough transient
    /// loss that a naive crash-penalty campaign visibly degrades.
    pub fn aggressive(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_prob: 0.15,
            hang_prob: 0.05,
            hang_factor: 30.0,
            straggler_prob: 0.10,
            straggler_factor: 4.0,
            corruption_prob: 0.06,
            corruption_factor: 4.0,
            outages: Vec::new(),
            sick_machines: Vec::new(),
        }
    }

    /// Adds a scheduled outage window for a machine.
    pub fn with_outage(mut self, machine_id: usize, start_s: f64, end_s: f64) -> Self {
        assert!(end_s > start_s, "outage window must have positive length");
        self.outages.push(OutageWindow {
            machine_id,
            start_s,
            end_s,
        });
        self
    }

    /// Marks a machine as sick: its transient/straggler/corruption
    /// probabilities are multiplied by `factor`.
    pub fn with_sick_machine(mut self, machine_id: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "sickness factor must be >= 1");
        self.sick_machines.push((machine_id, factor));
        self
    }

    /// Hash stream for `(trial, attempt, salt)`, decorrelated from both
    /// the suggestion RNG and the per-trial measurement streams.
    fn hash(&self, trial_id: u64, attempt: u32, salt: u64) -> u64 {
        splitmix(
            self.seed
                ^ trial_id.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (u64::from(attempt) + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
        )
    }

    /// Rolls the fault (if any) for one trial attempt.
    ///
    /// Deterministic in `(seed, trial_id, attempt)` plus the outage
    /// schedule evaluated at `at_s`; independent of every RNG stream, so
    /// fault injection composes with noise models without perturbing
    /// them.
    pub fn roll(
        &self,
        trial_id: u64,
        attempt: u32,
        machine_id: Option<usize>,
        at_s: f64,
    ) -> Option<Fault> {
        // Outage windows dominate: a down machine fails every trial.
        if let Some(mid) = machine_id {
            let down = self
                .outages
                .iter()
                .any(|w| w.machine_id == mid && at_s >= w.start_s && at_s < w.end_s);
            if down {
                let sev = 0.05 + 0.5 * unit(self.hash(trial_id, attempt, 0xA));
                return Some(Fault {
                    kind: FailureKind::Outage,
                    severity: sev,
                });
            }
        }
        let boost = machine_id.map_or(1.0, |mid| {
            self.sick_machines
                .iter()
                .find(|(m, _)| *m == mid)
                .map_or(1.0, |(_, f)| *f)
        });
        let u = unit(self.hash(trial_id, attempt, 0xB));
        let sev_u = unit(self.hash(trial_id, attempt, 0xC));
        // Cumulative thresholds; the boosted kinds are capped so even a
        // very sick machine occasionally returns a real measurement.
        let mut acc = (self.transient_prob * boost).min(0.45);
        if u < acc {
            return Some(Fault {
                kind: FailureKind::Transient,
                severity: 0.05 + 0.9 * sev_u,
            });
        }
        acc += self.hang_prob;
        if u < acc {
            return Some(Fault {
                kind: FailureKind::Hang,
                severity: self.hang_factor * (1.0 + sev_u),
            });
        }
        acc += (self.straggler_prob * boost).min(0.3);
        if u < acc {
            return Some(Fault {
                kind: FailureKind::Straggler,
                severity: 1.5 + (self.straggler_factor - 1.5).max(0.0) * sev_u,
            });
        }
        acc += (self.corruption_prob * boost).min(0.3);
        if u < acc {
            return Some(Fault {
                kind: FailureKind::Corruption,
                severity: 1.5 + (self.corruption_factor - 1.5).max(0.0) * sev_u,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let plan = FaultPlan::aggressive(42);
        for trial in 0..200u64 {
            for attempt in 0..3u32 {
                assert_eq!(
                    plan.roll(trial, attempt, Some(3), 100.0),
                    plan.roll(trial, attempt, Some(3), 100.0)
                );
            }
        }
    }

    #[test]
    fn attempts_draw_fresh_fates() {
        // A transient failure on attempt 0 must not doom every retry:
        // across many trials, some attempt-1 rolls succeed where attempt-0
        // failed.
        let plan = FaultPlan::aggressive(7);
        let mut recovered = 0;
        let mut failed0 = 0;
        for trial in 0..500u64 {
            if plan
                .roll(trial, 0, None, 0.0)
                .is_some_and(|f| f.kind == FailureKind::Transient)
            {
                failed0 += 1;
                if plan.roll(trial, 1, None, 0.0).is_none() {
                    recovered += 1;
                }
            }
        }
        assert!(failed0 > 20, "aggressive plan should fail some trials");
        assert!(
            recovered > failed0 / 3,
            "retries should frequently succeed: {recovered}/{failed0}"
        );
    }

    #[test]
    fn fault_rates_match_probabilities() {
        let plan = FaultPlan::aggressive(3);
        let n = 4000u64;
        let mut counts = [0usize; 4];
        for trial in 0..n {
            match plan.roll(trial, 0, None, 0.0).map(|f| f.kind) {
                Some(FailureKind::Transient) => counts[0] += 1,
                Some(FailureKind::Hang) => counts[1] += 1,
                Some(FailureKind::Straggler) => counts[2] += 1,
                Some(FailureKind::Corruption) => counts[3] += 1,
                _ => {}
            }
        }
        let rate = |c: usize| c as f64 / n as f64;
        assert!((rate(counts[0]) - plan.transient_prob).abs() < 0.03);
        assert!((rate(counts[1]) - plan.hang_prob).abs() < 0.02);
        assert!((rate(counts[2]) - plan.straggler_prob).abs() < 0.03);
        assert!((rate(counts[3]) - plan.corruption_prob).abs() < 0.02);
    }

    #[test]
    fn outage_window_is_total_within_and_absent_outside() {
        let plan = FaultPlan::new(5).with_outage(2, 100.0, 200.0);
        for trial in 0..100u64 {
            let inside = plan.roll(trial, 0, Some(2), 150.0);
            assert_eq!(inside.unwrap().kind, FailureKind::Outage);
            // Other machines and other times roll the ordinary fates.
            if let Some(f) = plan.roll(trial, 0, Some(1), 150.0) {
                assert_ne!(f.kind, FailureKind::Outage);
            }
            if let Some(f) = plan.roll(trial, 0, Some(2), 250.0) {
                assert_ne!(f.kind, FailureKind::Outage);
            }
        }
    }

    #[test]
    fn sick_machine_fails_more_often() {
        let plan = FaultPlan::new(9).with_sick_machine(0, 8.0);
        let n = 2000u64;
        let fails = |mid: usize| {
            (0..n)
                .filter(|t| {
                    plan.roll(*t, 0, Some(mid), 0.0)
                        .is_some_and(|f| f.kind != FailureKind::Hang)
                })
                .count()
        };
        let sick = fails(0);
        let healthy = fails(1);
        assert!(
            sick > healthy * 3,
            "sick machine should fail much more: {sick} vs {healthy}"
        );
    }

    #[test]
    fn severities_land_in_documented_ranges() {
        let plan = FaultPlan::aggressive(11);
        for trial in 0..3000u64 {
            if let Some(f) = plan.roll(trial, 0, Some(4), 0.0) {
                match f.kind {
                    FailureKind::Transient | FailureKind::Outage => {
                        assert!(f.severity > 0.0 && f.severity < 1.0)
                    }
                    FailureKind::Hang => {
                        assert!(
                            f.severity >= plan.hang_factor && f.severity < 2.0 * plan.hang_factor
                        )
                    }
                    FailureKind::Straggler => {
                        assert!(f.severity >= 1.5 && f.severity <= plan.straggler_factor)
                    }
                    FailureKind::Corruption => {
                        assert!(f.severity >= 1.5 && f.severity <= plan.corruption_factor)
                    }
                    FailureKind::ConfigCrash => unreachable!("plans never roll config crashes"),
                }
            }
        }
    }
}

//! E20 (slides 70-71): tuning under cloud noise — naive single
//! measurements vs N-repeats vs duet benchmarking vs TUNA-style trimmed
//! replication. Two questions: how stable is each measurement policy
//! (coefficient of variation), and what does that stability buy the tuner
//! (final regret at equal *trial* budget)?

use crate::report::{f, Report};
use autotune::{NoiseStrategy, Objective, SessionConfig, Target, TuningSession};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{CloudNoise, Environment, NoiseConfig, RedisSim, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn noisy_target(seed: u64) -> Target {
    Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    )
    .with_noise(CloudNoise::new_fleet(
        16,
        NoiseConfig {
            machine_sigma: 0.25,
            drift_amplitude: 0.08,
            spike_probability: 0.10,
            spike_scale: 1.0,
            ..Default::default()
        },
        seed,
    ))
}

/// Runs the experiment.
pub fn run() -> Report {
    let strategies: Vec<(&str, NoiseStrategy)> = vec![
        ("single", NoiseStrategy::Single),
        (
            "repeat x5",
            NoiseStrategy::Repeat {
                n: 5,
                median: false,
            },
        ),
        ("duet", NoiseStrategy::Duet),
        (
            "tuna x5",
            NoiseStrategy::Tuna {
                replicas: 5,
                outlier_sigmas: 2.0,
            },
        ),
    ];

    // Measurement stability: CV of repeated measurements of one config.
    let mut rows = Vec::new();
    let mut cvs = Vec::new();
    let mut finals = Vec::new();
    for (name, strat) in &strategies {
        let target = noisy_target(1);
        let cfg = target.space().default_config();
        let baseline = target.space().default_config();
        let mut rng = StdRng::seed_from_u64(2);
        let scores: Vec<f64> = (0..25)
            .map(|_| strat.measure(&target, &cfg, &baseline, &mut rng).0)
            .filter(|c| c.is_finite())
            .collect();
        let cv =
            autotune_linalg::stats::std_dev(&scores) / autotune_linalg::stats::mean(&scores).abs();
        cvs.push((name.to_string(), cv));

        // Tuning outcome at equal logical-trial budget, mean over seeds.
        let mut bests = Vec::new();
        let mut time = 0.0;
        for seed in 0..4 {
            let target = noisy_target(10 + seed);
            let opt = BayesianOptimizer::gp(target.space().clone());
            let mut session = TuningSession::new(
                target,
                Box::new(opt),
                SessionConfig {
                    noise_strategy: strat.clone(),
                    ..Default::default()
                },
            );
            let s = session
                .run(25, 20 + seed)
                .expect("tuning campaign succeeds");
            // Score the chosen config under *noise-free* conditions: the
            // deployable quality, not the lucky measurement.
            let clean = Target::simulated(
                Box::new(RedisSim::new()),
                Workload::kv_cache(20_000.0),
                Environment::medium(),
                Objective::MinimizeLatencyP95,
            );
            let mut rng = StdRng::seed_from_u64(30 + seed);
            let deploy = (0..6)
                .map(|_| clean.evaluate(&s.best_config, &mut rng).cost)
                .sum::<f64>()
                / 6.0;
            bests.push(deploy);
            time += s.total_elapsed_s / 4.0;
        }
        let deploy_mean = autotune_linalg::stats::mean(&bests);
        finals.push((name.to_string(), deploy_mean));
        rows.push(vec![
            name.to_string(),
            f(cv, 3),
            format!("{} ms", f(deploy_mean, 3)),
            format!("{time:.0} s"),
        ]);
    }
    let get_cv = |n: &str| cvs.iter().find(|(m, _)| m == n).expect("ran").1;
    let get_fin = |n: &str| finals.iter().find(|(m, _)| m == n).expect("ran").1;
    let shape_holds = get_cv("duet") < get_cv("single") * 0.6
        && get_cv("tuna x5") < get_cv("single")
        && get_fin("duet") <= get_fin("single") * 1.05
        && get_fin("tuna x5") <= get_fin("single") * 1.05;
    Report {
        id: "E20",
        title: "Noise mitigation: duet & TUNA (slides 70-71)",
        headers: vec!["strategy", "measurement CV", "deployed P95", "bench time"],
        rows,
        paper_claim: "duet cancels shared noise; TUNA's replicated/trimmed scores learn faster and deploy more robust configs",
        measured: format!(
            "CV: single {} / duet {} / tuna {}; deployed: single {} / duet {} / tuna {} ms",
            f(get_cv("single"), 3),
            f(get_cv("duet"), 3),
            f(get_cv("tuna x5"), 3),
            f(get_fin("single"), 3),
            f(get_fin("duet"), 3),
            f(get_fin("tuna x5"), 3)
        ),
        shape_holds,
    }
}

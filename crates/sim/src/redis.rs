//! The tutorial's running example (slides 26-31): Redis on Linux, tuning
//! `/proc/sys/kernel/sched_migration_cost_ns` to minimize tail latency.
//!
//! The response surface is modelled after the published result (68 % P95
//! reduction, slide 10): migration cost too *low* makes the scheduler
//! migrate Redis's event-loop thread aggressively, trashing cache locality;
//! too *high* leaves it pinned on a contended core. The sweet spot sits
//! orders of magnitude above the kernel default of 500 µs... below it —
//! which is why log-scale treatment of the knob matters (slide 28 bounds
//! the search to [0, 1 000 000] ns).
//!
//! Two secondary knobs round out the space so the example exercises
//! integer and categorical handling: `io-threads` and `maxmemory-policy`.

use crate::{Environment, SimSystem, TrialResult, Workload};
use autotune_space::{Config, Param, Space};
use rand::RngCore;

/// The kernel default for `sched_migration_cost_ns`.
pub const KERNEL_DEFAULT_MIGRATION_COST: f64 = 500_000.0;

/// Simulated Redis + Linux scheduler.
#[derive(Debug)]
pub struct RedisSim {
    space: Space,
    /// Knob value minimizing P95 latency (ns).
    optimum_ns: f64,
}

impl RedisSim {
    /// Creates the simulator with the tutorial's knob bounds.
    pub fn new() -> Self {
        let space = Space::builder()
            .add(
                Param::float("sched_migration_cost_ns", 1_000.0, 1_000_000.0)
                    .log_scale()
                    .default_value(KERNEL_DEFAULT_MIGRATION_COST)
                    .with_special_values(&[0.0]),
            )
            .add(Param::int("io_threads", 1, 8).default_value(1i64))
            .add(
                Param::categorical(
                    "maxmemory_policy",
                    &["noeviction", "allkeys-lru", "allkeys-random"],
                )
                .default_value("noeviction"),
            )
            .build()
            .expect("static space definition is valid"); // lint: allow(D5) static space definition is valid
        RedisSim {
            space,
            optimum_ns: 25_000.0,
        }
    }

    /// The knob value the surface is calibrated to favour.
    pub fn optimum_ns(&self) -> f64 {
        self.optimum_ns
    }

    /// Analytic P95 penalty multiplier from the scheduler knob: a smooth
    /// asymmetric valley in log space around the optimum.
    fn migration_penalty(&self, cost_ns: f64) -> f64 {
        // Special value 0 = "migrate on every tick": pathological.
        if cost_ns <= 0.0 {
            return 3.5;
        }
        let x = (cost_ns.max(1.0)).log10();
        let opt = self.optimum_ns.log10();
        let d = x - opt;
        // Asymmetric quadratic: cheap migrations hurt more than pinning.
        let curvature = if d < 0.0 { 1.4 } else { 0.55 };
        1.0 + curvature * d * d
    }
}

impl Default for RedisSim {
    fn default() -> Self {
        RedisSim::new()
    }
}

impl SimSystem for RedisSim {
    fn name(&self) -> &str {
        "redis"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn run_trial(
        &self,
        config: &Config,
        workload: &Workload,
        env: &Environment,
        rng: &mut dyn RngCore,
    ) -> TrialResult {
        let cost_ns = config
            .get_f64("sched_migration_cost_ns")
            .unwrap_or(KERNEL_DEFAULT_MIGRATION_COST);
        let io_threads = config.get_i64("io_threads").unwrap_or(1).max(1) as f64;
        let policy = config.get_str("maxmemory_policy").unwrap_or("noeviction");

        // Base event-loop latency ≈ 1 ms at nominal load (slide 28's prior
        // knowledge: "Latency ≈ 1.0 ms").
        let base_ms = 1.0;
        let sched = self.migration_penalty(cost_ns);

        // io-threads help until they exceed the cores; then they thrash.
        let effective_threads = io_threads.min(env.cores as f64);
        let thread_speedup = 1.0 / (0.6 + 0.4 * effective_threads.sqrt());
        let oversubscribe = (io_threads - env.cores as f64).max(0.0);
        let thrash = 1.0 + 0.15 * oversubscribe;

        // Eviction policy matters only when the working set outgrows RAM.
        let pressure = (workload.effective_working_set_gb() / env.ram_gb).min(2.0);
        let eviction = if pressure > 0.6 {
            match policy {
                "allkeys-lru" => 1.0 + 0.4 * (pressure - 0.6),
                "allkeys-random" => 1.0 + 0.8 * (pressure - 0.6),
                _ => 1.0 + 1.6 * (pressure - 0.6), // noeviction: errors/retries
            }
        } else {
            1.0
        };

        let mean_latency = base_ms * sched * thread_speedup * thrash * eviction;
        // Capacity: single event loop, ~120k ops/s nominal per GHz-core,
        // helped by io-threads for network I/O offload.
        let capacity = 120_000.0 * (0.7 + 0.3 * effective_threads) / sched.sqrt();
        let utilization = (workload.offered_ops / capacity).min(0.999);
        let throughput = workload.offered_ops.min(capacity);
        let elapsed = workload.duration_s();

        crate::finish_trial(
            mean_latency * (1.0 + 2.0 * utilization * utilization),
            utilization,
            throughput,
            elapsed,
            env.cost_per_hour,
            workload,
            env,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p95_at(sim: &RedisSim, cost_ns: f64, seed: u64) -> f64 {
        let cfg = sim
            .space()
            .default_config()
            .with("sched_migration_cost_ns", cost_ns);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Workload::kv_cache(50_000.0);
        let env = Environment::medium();
        // Average several runs to cut measurement noise.
        let runs: Vec<f64> = (0..10)
            .map(|_| sim.run_trial(&cfg, &w, &env, &mut rng).latency_p95_ms)
            .collect();
        autotune_linalg::stats::mean(&runs)
    }

    #[test]
    fn optimum_beats_default_by_tutorial_margin() {
        let sim = RedisSim::new();
        let default = p95_at(&sim, KERNEL_DEFAULT_MIGRATION_COST, 1);
        let tuned = p95_at(&sim, sim.optimum_ns(), 2);
        let reduction = 1.0 - tuned / default;
        // Slide 10: "68 % reduction in P95 latency". Accept 40-85 %.
        assert!(
            (0.40..0.85).contains(&reduction),
            "P95 reduction {reduction:.2} outside the tutorial's ballpark"
        );
    }

    #[test]
    fn surface_is_a_valley_in_log_space() {
        let sim = RedisSim::new();
        let low = p95_at(&sim, 2_000.0, 3);
        let opt = p95_at(&sim, sim.optimum_ns(), 4);
        let high = p95_at(&sim, 900_000.0, 5);
        assert!(opt < low, "optimum {opt} should beat too-low {low}");
        assert!(opt < high, "optimum {opt} should beat too-high {high}");
    }

    #[test]
    fn zero_special_value_is_pathological() {
        let sim = RedisSim::new();
        let zero = p95_at(&sim, 0.0, 6);
        let opt = p95_at(&sim, sim.optimum_ns(), 7);
        assert!(
            zero > 2.0 * opt,
            "always-migrate {zero} should be awful vs {opt}"
        );
    }

    #[test]
    fn io_threads_help_until_core_count() {
        let sim = RedisSim::new();
        let env = Environment::medium(); // 4 cores
        let w = Workload::kv_cache(50_000.0);
        let lat = |threads: i64, seed: u64| {
            let cfg = sim.space().default_config().with("io_threads", threads);
            let mut rng = StdRng::seed_from_u64(seed);
            let runs: Vec<f64> = (0..10)
                .map(|_| sim.run_trial(&cfg, &w, &env, &mut rng).latency_avg_ms)
                .collect();
            autotune_linalg::stats::mean(&runs)
        };
        let one = lat(1, 8);
        let four = lat(4, 9);
        let eight = lat(8, 10);
        assert!(four < one, "4 threads {four} should beat 1 thread {one}");
        assert!(
            eight > four,
            "8 threads on 4 cores {eight} should thrash vs {four}"
        );
    }

    #[test]
    fn eviction_policy_only_matters_under_pressure() {
        let sim = RedisSim::new();
        let env = Environment::small(); // 8 GB
        let mut rng = StdRng::seed_from_u64(11);
        let fits = Workload::kv_cache(10_000.0); // 2 GB working set
        let pressured = Workload::kv_cache(10_000.0).at_scale(6.0); // 12 GB
        let lat = |policy: &str, w: &Workload, rng: &mut StdRng| {
            let cfg = sim
                .space()
                .default_config()
                .with("maxmemory_policy", policy);
            let runs: Vec<f64> = (0..10)
                .map(|_| sim.run_trial(&cfg, w, &env, rng).latency_avg_ms)
                .collect();
            autotune_linalg::stats::mean(&runs)
        };
        let fit_gap =
            (lat("allkeys-lru", &fits, &mut rng) - lat("noeviction", &fits, &mut rng)).abs();
        let pressure_gap =
            lat("noeviction", &pressured, &mut rng) - lat("allkeys-lru", &pressured, &mut rng);
        assert!(
            fit_gap < 0.1,
            "policies should tie when the set fits: gap {fit_gap}"
        );
        assert!(
            pressure_gap > 0.2,
            "LRU should win under pressure: gap {pressure_gap}"
        );
    }

    #[test]
    fn throughput_saturates_at_capacity() {
        let sim = RedisSim::new();
        let env = Environment::medium();
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = sim.space().default_config();
        let modest = sim.run_trial(&cfg, &Workload::kv_cache(10_000.0), &env, &mut rng);
        let flooded = sim.run_trial(&cfg, &Workload::kv_cache(10_000_000.0), &env, &mut rng);
        assert!((modest.throughput_ops - 10_000.0).abs() < 1_500.0);
        assert!(flooded.throughput_ops < 1_000_000.0, "capacity must bind");
        assert!(flooded.latency_p95_ms > modest.latency_p95_ms);
    }
}

//! D8 fixture: lock guards held across calls that can panic (poisoning
//! the lock) or stall (blocking every other acquirer on fsync).

pub fn flush_under_guard(&self) {
    let g = self.state.plock();
    self.durable.append(g.to_vec());
}

pub fn survive_under_guard(m: &std::sync::Mutex<u32>) {
    let g = m.plock();
    let r = std::panic::catch_unwind(|| step());
    use_both(g, r);
}

pub fn score_under_guard(&self, xs: &[f64]) -> Vec<f64> {
    let model = self.model.pread();
    par_map(xs, 2, |_, x| model.score(*x))
}

//! E14 (slide 61): structured search spaces — when PostgreSQL's `jit=off`,
//! the JIT sub-knobs are meaningless; more generally, whole families of
//! knobs activate only under a parent setting (storage engine, JIT,
//! replication mode). A conditional space collapses every inactive branch
//! onto its defaults, so the surrogate models ~5 live dimensions instead
//! of 14; a flat space smears the same information across every dead
//! dimension.

use crate::report::{f, Report};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_space::{Condition, Config, Param, Space, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHILDREN: usize = 4;

/// Engine-choice objective: engine "a" can win but only with its four
/// sub-knobs tuned; engines "b" and "c" are flat mediocre/bad. Plus one
/// always-active knob.
fn objective(c: &Config) -> f64 {
    let wm = c.get_f64("work_mem").expect("always active");
    let base = (wm - 0.7).powi(2);
    match c.get_str("engine").expect("always active") {
        "a" => {
            let mut miss = 0.05;
            for i in 0..CHILDREN {
                let v = c.get_f64(&format!("a_knob{i}")).unwrap_or(0.5);
                miss += 0.4 * (v - 0.3).powi(2);
            }
            base + miss
        }
        "b" => base + 0.3,
        _ => base + 0.5,
    }
}

fn build_space(conditional: bool) -> Space {
    let mut b = Space::builder()
        .add(Param::float("work_mem", 0.0, 1.0))
        .add(Param::categorical("engine", &["a", "b", "c"]));
    for engine in ["a", "b", "c"] {
        for i in 0..CHILDREN {
            b = b.add(Param::float(format!("{engine}_knob{i}"), 0.0, 1.0));
        }
    }
    if conditional {
        for engine in ["a", "b", "c"] {
            for i in 0..CHILDREN {
                b = b.condition(Condition::equals(
                    format!("{engine}_knob{i}"),
                    "engine",
                    Value::Cat(engine.to_string()),
                ));
            }
        }
    }
    b.build().expect("valid space")
}

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 35;
    let n_seeds = 12;
    let run_space = |conditional: bool, seed: u64| -> f64 {
        let mut opt = BayesianOptimizer::smac(build_space(conditional));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = f64::INFINITY;
        for _ in 0..budget {
            let c = opt.suggest(&mut rng);
            let v = objective(&c);
            opt.observe(&c, v);
            best = best.min(v);
        }
        best
    };
    let mut cond_best = Vec::new();
    let mut flat_best = Vec::new();
    for seed in 0..n_seeds {
        cond_best.push(run_space(true, 100 + seed));
        flat_best.push(run_space(false, 100 + seed));
    }
    let cond_mean = autotune_linalg::stats::mean(&cond_best);
    let flat_mean = autotune_linalg::stats::mean(&flat_best);
    let cond_wins = cond_best
        .iter()
        .zip(&flat_best)
        .filter(|(c, f)| c <= f)
        .count();

    let rows = vec![
        vec![
            "conditional (14 knobs, ~6 live)".into(),
            f(cond_mean, 4),
            f(autotune_linalg::stats::median(&cond_best), 4),
        ],
        vec![
            "flat (14 knobs)".into(),
            f(flat_mean, 4),
            f(autotune_linalg::stats::median(&flat_best), 4),
        ],
        vec![
            "conditional wins".into(),
            format!("{cond_wins}/{n_seeds} seeds"),
            String::new(),
        ],
    ];
    let shape_holds = cond_mean <= flat_mean && cond_wins * 2 >= n_seeds as usize;
    Report {
        id: "E14",
        title: "Structured (conditional) space: engine + sub-knobs (slide 61)",
        headers: vec!["space", "mean best @35", "median"],
        rows,
        paper_claim: "exploiting knob dependence structure improves trials-to-optimum",
        measured: format!(
            "conditional {} vs flat {} (conditional wins {cond_wins}/{n_seeds})",
            f(cond_mean, 4),
            f(flat_mean, 4)
        ),
        shape_holds,
    }
}

//! Sparse Gaussian-process regression over inducing points.
//!
//! The dense [`crate::GaussianProcess`] pays O(n²) per incremental observe
//! and O(n³) per refit, which dies well before the 100k observations a
//! long-running service campaign accumulates. This module implements the
//! subset-of-regressors / DTC approximation: pick `m ≪ n` *inducing points*
//! `Z` from the training set and summarize the data through the m-vector
//! statistics
//!
//! ```text
//! A = σ² (K_mm + jitter·I) + Σᵢ kᵢ kᵢᵀ        (kᵢ = k(Z, xᵢ))
//! b = Σᵢ kᵢ yᵢ
//! mean(x) = k_m(x)ᵀ A⁻¹ b
//! var(x)  = k(x,x) − k_mᵀ K_mm⁻¹ k_m + σ² k_mᵀ A⁻¹ k_m
//! ```
//!
//! so suggest-time prediction is O(m²) and an incremental observe is a
//! rank-1 Cholesky update of `A` plus two triangular solves — O(m²),
//! *independent of n*. Inducing points are chosen by deterministic
//! farthest-point selection and re-selected only at doubling thresholds,
//! so total maintenance cost over n observations is O(n · m²) amortized.
//!
//! Targets are standardized like the dense GP. Because both `A` and `b`
//! are linear in the data, the standardized right-hand side is recovered
//! from raw accumulators in O(m): `b_std = (b_raw − μ · k_sum) / σ_y`
//! with `k_sum = Σᵢ kᵢ`, and the target moments (μ, σ_y) are maintained
//! as running sums — no O(n) pass per observe.

use crate::{check_training_set, Kernel, Prediction, Result, Surrogate, SurrogateError};
use autotune_linalg::{Cholesky, Matrix, DEFAULT_BLOCK};

/// Configuration for [`SparseGaussianProcess`].
#[derive(Debug, Clone)]
pub struct SparseGpConfig {
    /// Maximum number of inducing points `m`. Prediction is O(m²); 256
    /// keeps a suggest under a few microseconds while leaving the
    /// approximation near-exact for the smooth response surfaces tuning
    /// targets exhibit.
    pub max_inducing: usize,
    /// Observation-noise variance σ² added to the model.
    pub noise: f64,
    /// Diagonal jitter added to `K_mm` for numerical stability.
    pub jitter: f64,
    /// Rows streamed per block when (re)building `A` — bounds peak memory
    /// of a full rebuild to O(m · chunk).
    pub chunk: usize,
}

impl Default for SparseGpConfig {
    fn default() -> Self {
        SparseGpConfig {
            max_inducing: 256,
            noise: 1e-6,
            jitter: 1e-8,
            chunk: 512,
        }
    }
}

/// Fitted state of the sparse GP, committed atomically by rebuilds.
struct SparseFit {
    /// Inducing inputs `Z` (row-major, m rows).
    z: Vec<Vec<f64>>,
    /// Cholesky of `K_mm + jitter·I`.
    kmm_chol: Cholesky,
    /// Cholesky of `A = σ²(K_mm + jitter·I) + Σ kᵢkᵢᵀ`.
    a_chol: Cholesky,
    /// Raw data statistic `b_raw = Σ kᵢ yᵢ` (un-standardized).
    b_raw: Vec<f64>,
    /// `k_sum = Σ kᵢ`, for O(m) re-standardization of `b`.
    k_sum: Vec<f64>,
    /// `A⁻¹ b_std`, refreshed after every observe.
    alpha: Vec<f64>,
}

/// A sparse (inducing-point) Gaussian process with O(m²) predictions and
/// O(m²) incremental observes, independent of the training-set size.
pub struct SparseGaussianProcess {
    kernel: Box<dyn Kernel>,
    config: SparseGpConfig,
    xs: Vec<Vec<f64>>,
    y_raw: Vec<f64>,
    /// Running Σy and Σy² for O(1) standardization moments.
    y_sum: f64,
    y_sq: f64,
    /// Standardization parameters (mean, std) of the raw targets.
    y_shift: (f64, f64),
    fit: Option<SparseFit>,
    /// Re-select inducing points (full rebuild) when `n` reaches this.
    refit_at: usize,
}

impl std::fmt::Debug for SparseGaussianProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseGaussianProcess")
            .field("kernel", &self.kernel)
            .field("n_train", &self.xs.len())
            .field(
                "n_inducing",
                &self.fit.as_ref().map_or(0, |fit| fit.z.len()),
            )
            .finish()
    }
}

impl SparseGaussianProcess {
    /// Creates an unfitted sparse GP with the given kernel and config.
    pub fn new(kernel: Box<dyn Kernel>, config: SparseGpConfig) -> Self {
        assert!(config.noise >= 0.0, "noise variance must be non-negative");
        assert!(config.max_inducing >= 1, "need at least one inducing point");
        SparseGaussianProcess {
            kernel,
            config,
            xs: Vec::new(),
            y_raw: Vec::new(),
            y_sum: 0.0,
            y_sq: 0.0,
            y_shift: (0.0, 1.0),
            fit: None,
            refit_at: 1,
        }
    }

    /// The kernel currently in use.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Number of inducing points in the current fit.
    pub fn n_inducing(&self) -> usize {
        self.fit.as_ref().map_or(0, |fit| fit.z.len())
    }

    /// Standardization moments from the running sums. With fewer than two
    /// points (or a degenerate spread) the std falls back to 1.0, matching
    /// the dense GP's guard.
    fn moments(&self) -> (f64, f64) {
        let n = self.y_raw.len();
        if n == 0 {
            return (0.0, 1.0);
        }
        let mean = self.y_sum / n as f64;
        if n < 2 {
            return (mean, 1.0);
        }
        let var = ((self.y_sq - self.y_sum * mean) / (n - 1) as f64).max(0.0);
        let std = var.sqrt();
        (mean, if std > 1e-12 { std } else { 1.0 })
    }

    /// Deterministic farthest-point selection of `m` inducing indices:
    /// start from the point nearest the centroid, then repeatedly add the
    /// point with the largest min-distance to the selected set. Ties break
    /// toward the lowest index, so the selection is a pure function of the
    /// training set.
    fn select_inducing(xs: &[Vec<f64>], m: usize) -> Vec<usize> {
        let n = xs.len();
        let m = m.min(n);
        if m == 0 {
            return Vec::new();
        }
        let d = xs[0].len();
        let mut centroid = vec![0.0; d];
        for x in xs {
            for (c, &v) in centroid.iter_mut().zip(x) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }
        let mut first = 0usize;
        let mut best = f64::INFINITY;
        for (i, x) in xs.iter().enumerate() {
            let dist = autotune_linalg::squared_distance(x, &centroid);
            if dist.total_cmp(&best) == std::cmp::Ordering::Less {
                best = dist;
                first = i;
            }
        }
        let mut selected = vec![first];
        // min squared distance from each point to the selected set
        let mut min_dist: Vec<f64> = xs
            .iter()
            .map(|x| autotune_linalg::squared_distance(x, &xs[first]))
            .collect();
        while selected.len() < m {
            let mut next = 0usize;
            let mut far = f64::NEG_INFINITY;
            for (i, &dist) in min_dist.iter().enumerate() {
                if dist.total_cmp(&far) == std::cmp::Ordering::Greater {
                    far = dist;
                    next = i;
                }
            }
            selected.push(next);
            for (md, x) in min_dist.iter_mut().zip(xs) {
                let dist = autotune_linalg::squared_distance(x, &xs[next]);
                if dist < *md {
                    *md = dist;
                }
            }
        }
        selected
    }

    /// Cross-covariance vector `k(Z, x)` against the inducing set.
    fn k_vec(fit: &SparseFit, kernel: &dyn Kernel, x: &[f64]) -> Vec<f64> {
        fit.z.iter().map(|z| kernel.eval(z, x)).collect()
    }

    /// Rebuilds the whole fitted state from the stored training data:
    /// re-selects inducing points, streams the data through blocked SYRK
    /// to form `A`, and factorizes. All state is assembled locally and
    /// committed only on success, so a failed rebuild leaves the model
    /// exactly as it was.
    fn rebuild(&mut self) -> Result<()> {
        let n = self.xs.len();
        let m = self.config.max_inducing.min(n);
        let idx = Self::select_inducing(&self.xs, m);
        let z: Vec<Vec<f64>> = idx.iter().map(|&i| self.xs[i].clone()).collect();
        let mut kmm = Matrix::from_fn(m, m, |i, j| {
            if j < i {
                0.0 // filled by symmetry below
            } else {
                self.kernel.eval(&z[i], &z[j])
            }
        });
        for i in 0..m {
            for j in 0..i {
                kmm[(i, j)] = kmm[(j, i)];
            }
        }
        kmm.add_diag(self.config.jitter.max(1e-12));
        let kmm_chol = Cholesky::new_blocked(&kmm, DEFAULT_BLOCK)
            .map_err(|_| SurrogateError::NumericalFailure)?;
        // A starts as σ²(K_mm + jitter·I); the data term streams in chunks
        // so a 100k-point rebuild never materializes an m×n matrix.
        let mut a = kmm.scale(self.config.noise.max(1e-12));
        let mut b_raw = vec![0.0; m];
        let mut k_sum = vec![0.0; m];
        let chunk = self.config.chunk.max(1);
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            let g = Matrix::from_fn(m, end - start, |p, r| {
                self.kernel.eval(&z[p], &self.xs[start + r])
            });
            a = a
                .add(&g.syrk_blocked(DEFAULT_BLOCK))
                .map_err(|_| SurrogateError::NumericalFailure)?;
            for r in 0..end - start {
                let y = self.y_raw[start + r];
                for p in 0..m {
                    b_raw[p] += g[(p, r)] * y;
                    k_sum[p] += g[(p, r)];
                }
            }
        }
        let a_chol = Cholesky::new_blocked(&a, DEFAULT_BLOCK)
            .map_err(|_| SurrogateError::NumericalFailure)?;
        let (mean, std) = self.moments();
        let b_std: Vec<f64> = b_raw
            .iter()
            .zip(&k_sum)
            .map(|(&b, &ks)| (b - mean * ks) / std)
            .collect();
        let alpha = a_chol.solve_vec(&b_std);
        self.y_shift = (mean, std);
        self.fit = Some(SparseFit {
            z,
            kmm_chol,
            a_chol,
            b_raw,
            k_sum,
            alpha,
        });
        // Next inducing re-selection when the data has doubled.
        self.refit_at = (2 * n).max(4);
        Ok(())
    }

    /// Predictive distribution at `x` in the *standardized* target space.
    fn predict_std(&self, x: &[f64]) -> Prediction {
        let Some(fit) = &self.fit else {
            return Prediction {
                mean: 0.0,
                variance: self.kernel.diag(x),
            };
        };
        let k = Self::k_vec(fit, self.kernel.as_ref(), x);
        let mean = autotune_linalg::dot(&k, &fit.alpha);
        let v_mm = fit.kmm_chol.solve_lower(&k);
        let v_a = fit.a_chol.solve_lower(&k);
        let variance = (self.kernel.diag(x) - autotune_linalg::dot(&v_mm, &v_mm)
            + self.config.noise * autotune_linalg::dot(&v_a, &v_a))
        .max(0.0);
        Prediction { mean, variance }
    }
}

impl Surrogate for SparseGaussianProcess {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        check_training_set(xs, ys)?;
        let saved = (
            std::mem::take(&mut self.xs),
            std::mem::take(&mut self.y_raw),
            self.y_sum,
            self.y_sq,
        );
        self.xs = xs.to_vec();
        self.y_raw = ys.to_vec();
        self.y_sum = ys.iter().sum();
        self.y_sq = ys.iter().map(|y| y * y).sum();
        if let Err(e) = self.rebuild() {
            // Restore the previous training set; the old fit (if any) was
            // never touched by the failed rebuild.
            (self.xs, self.y_raw, self.y_sum, self.y_sq) = saved;
            return Err(e);
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        let p = self.predict_std(x);
        let (ym, ys) = self.y_shift;
        Prediction {
            mean: ym + ys * p.mean,
            variance: ys * ys * p.variance,
        }
    }

    fn n_train(&self) -> usize {
        self.xs.len()
    }

    /// O(m²) incremental update, independent of n: rank-1 updates the
    /// factor of `A` with the new cross-covariance vector, folds the point
    /// into the O(m) data statistics, and refreshes `alpha` with one
    /// triangular solve pair. Inducing points are re-selected (full
    /// rebuild) only when the training set doubles.
    fn observe(&mut self, x: &[f64], y: f64) -> Result<()> {
        if self.xs.is_empty() {
            return self.fit(&[x.to_vec()], &[y]);
        }
        if x.len() != self.xs[0].len() {
            return Err(SurrogateError::DimensionMismatch {
                context: format!(
                    "observe: point has dimension {} (expected {})",
                    x.len(),
                    self.xs[0].len()
                ),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SurrogateError::DimensionMismatch {
                context: "observe: point contains non-finite values".into(),
            });
        }
        if !y.is_finite() {
            return Err(SurrogateError::NonFiniteTarget);
        }
        {
            let fit = self.fit.as_mut().ok_or(SurrogateError::NumericalFailure)?;
            let k: Vec<f64> = fit.z.iter().map(|z| self.kernel.eval(z, x)).collect();
            // The rank-1 update is atomic-on-failure, so an error here
            // leaves the model untouched.
            fit.a_chol
                .rank_one_update(&k)
                .map_err(|_| SurrogateError::NumericalFailure)?;
            for ((b, ks), &kv) in fit.b_raw.iter_mut().zip(&mut fit.k_sum).zip(&k) {
                *b += kv * y;
                *ks += kv;
            }
        }
        self.xs.push(x.to_vec());
        self.y_raw.push(y);
        self.y_sum += y;
        self.y_sq += y * y;
        let (mean, std) = self.moments();
        self.y_shift = (mean, std);
        let fit = self.fit.as_mut().ok_or(SurrogateError::NumericalFailure)?;
        let b_std: Vec<f64> = fit
            .b_raw
            .iter()
            .zip(&fit.k_sum)
            .map(|(&b, &ks)| (b - mean * ks) / std)
            .collect();
        fit.alpha = fit.a_chol.solve_vec(&b_std);
        if self.xs.len() >= self.refit_at {
            // Re-select inducing points against the doubled data. If the
            // rebuild fails the rank-1-updated fit above is still fully
            // consistent, so keep it and retry at the next threshold.
            let n = self.xs.len();
            if self.rebuild().is_err() {
                self.refit_at = (2 * n).max(4);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaussianProcess, Matern52};

    fn grid_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                vec![t, (0.37 * i as f64).sin().abs()]
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (4.0 * x[0]).sin() + 0.5 * x[1] + 2.0)
            .collect();
        (xs, ys)
    }

    fn sparse(max_inducing: usize) -> SparseGaussianProcess {
        SparseGaussianProcess::new(
            Box::new(Matern52::ard(vec![0.4, 0.4], 1.0)),
            SparseGpConfig {
                max_inducing,
                noise: 1e-6,
                ..SparseGpConfig::default()
            },
        )
    }

    #[test]
    fn matches_dense_gp_when_all_points_are_inducing() {
        // With m = n the SoR approximation is exact: the predictive mean
        // must agree with the dense GP to numerical precision.
        let (xs, ys) = grid_data(30);
        let mut sp = sparse(30);
        sp.fit(&xs, &ys).unwrap();
        let mut dense = GaussianProcess::new(Box::new(Matern52::ard(vec![0.4, 0.4], 1.0)), 1e-6);
        dense.fit(&xs, &ys).unwrap();
        for q in [[0.1, 0.2], [0.5, 0.5], [0.9, 0.1]] {
            let a = sp.predict(&q);
            let b = dense.predict(&q);
            assert!(
                (a.mean - b.mean).abs() < 1e-4,
                "mean at {q:?}: {} vs {}",
                a.mean,
                b.mean
            );
        }
    }

    #[test]
    fn tracks_dense_quality_with_few_inducing_points() {
        let (xs, ys) = grid_data(200);
        let mut sp = sparse(24);
        sp.fit(&xs, &ys).unwrap();
        assert_eq!(sp.n_inducing(), 24);
        for q in [[0.25f64, 0.3], [0.6, 0.8]] {
            let truth = (4.0 * q[0]).sin() + 0.5 * q[1] + 2.0;
            let p = sp.predict(&q);
            assert!(
                (p.mean - truth).abs() < 0.1,
                "mean {} vs truth {truth}",
                p.mean
            );
        }
    }

    #[test]
    fn incremental_observe_matches_batch_fit() {
        let (xs, ys) = grid_data(60);
        let mut inc = sparse(16);
        for (x, &y) in xs.iter().zip(&ys) {
            inc.observe(x, y).unwrap();
        }
        let mut batch = sparse(16);
        batch.fit(&xs, &ys).unwrap();
        assert_eq!(inc.n_train(), batch.n_train());
        // The incremental model last re-selected inducing points at a
        // doubling threshold ≤ n, so the two inducing sets differ and the
        // posteriors are not identical — but both must track the smooth
        // ground truth.
        for q in [[0.2f64, 0.4], [0.55, 0.6], [0.8, 0.2]] {
            let truth = (4.0 * q[0]).sin() + 0.5 * q[1] + 2.0;
            for (tag, model) in [("inc", &inc), ("batch", &batch)] {
                let p = model.predict(&q);
                assert!(
                    (p.mean - truth).abs() < 0.25,
                    "{tag} mean at {q:?}: {} vs truth {truth}",
                    p.mean
                );
            }
        }
    }

    #[test]
    fn variance_shrinks_near_data_and_grows_far_away() {
        let (xs, ys) = grid_data(80);
        let mut sp = sparse(32);
        sp.fit(&xs, &ys).unwrap();
        let near = sp.predict(&xs[40]).variance;
        let far = sp.predict(&[5.0, 5.0]).variance;
        assert!(far > 10.0 * near.max(1e-10), "far {far} vs near {near}");
    }

    #[test]
    fn unfitted_returns_prior_and_single_point_bootstraps() {
        let mut sp = sparse(8);
        let p = sp.predict(&[0.3, 0.3]);
        assert_eq!(p.mean, 0.0);
        assert_eq!(sp.n_train(), 0);
        sp.observe(&[0.5, 0.5], 3.0).unwrap();
        assert_eq!(sp.n_train(), 1);
        assert_eq!(sp.n_inducing(), 1);
        let p = sp.predict(&[0.5, 0.5]);
        assert!((p.mean - 3.0).abs() < 0.5, "mean {}", p.mean);
    }

    #[test]
    fn observe_rejects_bad_input_without_mutating() {
        let (xs, ys) = grid_data(20);
        let mut sp = sparse(8);
        sp.fit(&xs, &ys).unwrap();
        let before = sp.predict(&[0.4, 0.4]);
        assert!(matches!(
            sp.observe(&[0.1], 1.0),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
        assert_eq!(
            sp.observe(&[0.3, 0.3], f64::NAN).unwrap_err(),
            SurrogateError::NonFiniteTarget
        );
        assert!(matches!(
            sp.observe(&[f64::INFINITY, 0.0], 1.0),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
        assert_eq!(sp.n_train(), xs.len());
        assert_eq!(sp.predict(&[0.4, 0.4]), before);
    }

    #[test]
    fn inducing_selection_is_deterministic_and_spread_out() {
        let (xs, _) = grid_data(100);
        let a = SparseGaussianProcess::select_inducing(&xs, 10);
        let b = SparseGaussianProcess::select_inducing(&xs, 10);
        assert_eq!(a, b);
        let unique: std::collections::BTreeSet<usize> = a.iter().copied().collect();
        assert_eq!(unique.len(), 10, "farthest-point picks distinct indices");
    }

    #[test]
    fn standardization_handles_large_offsets() {
        let (xs, ys) = grid_data(50);
        let shifted: Vec<f64> = ys.iter().map(|y| 1.0e6 + 1.0e4 * y).collect();
        let mut sp = sparse(50);
        sp.fit(&xs, &shifted).unwrap();
        let p = sp.predict(&[0.5, 0.5]);
        let truth = 1.0e6 + 1.0e4 * ((2.0f64).sin() + 0.25 + 2.0);
        assert!((p.mean - truth).abs() < 2e4, "mean {}", p.mean);
    }
}

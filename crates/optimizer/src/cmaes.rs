//! CMA-ES: covariance matrix adaptation evolution strategy (tutorial slide
//! 50; Hansen 2023).
//!
//! Samples each generation from `N(m, σ²C)`, ranks by objective, and
//! adapts mean, step size (CSA) and covariance (rank-1 + rank-μ updates).
//! Runs in the unit cube over [`autotune_space::Space::encode_unit`], with
//! out-of-bounds samples clamped — adequate for box-bounded knob spaces.

use crate::{BestTracker, Observation, Optimizer};
use autotune_linalg::{symmetric_eigen, Matrix};
use autotune_space::{Config, Space};
use rand::{Rng, RngCore};

/// CMA-ES hyperparameters; the defaults follow Hansen's tutorial.
#[derive(Debug, Clone)]
pub struct CmaEsConfig {
    /// Population size λ (default `4 + 3 ln d`).
    pub lambda: Option<usize>,
    /// Initial step size in unit-cube units.
    pub sigma0: f64,
}

impl Default for CmaEsConfig {
    fn default() -> Self {
        CmaEsConfig {
            lambda: None,
            sigma0: 0.3,
        }
    }
}

/// State of the CMA-ES strategy.
pub struct CmaEs {
    space: Space,
    dim: usize,
    lambda: usize,
    mu: usize,
    /// Recombination weights for the top-μ individuals.
    weights: Vec<f64>,
    mu_eff: f64,
    // Strategy parameters.
    cc: f64,
    cs: f64,
    c1: f64,
    cmu: f64,
    damps: f64,
    chi_n: f64,
    // Dynamic state.
    mean: Vec<f64>,
    sigma: f64,
    cov: Matrix,
    path_c: Vec<f64>,
    path_s: Vec<f64>,
    /// Eigendecomposition cache of `cov`: `B diag(D) Bᵀ`.
    eig_b: Matrix,
    eig_d: Vec<f64>,
    /// Pending individuals of the current generation: (z, x, config key).
    generation: Vec<(Vec<f64>, Vec<f64>)>,
    /// Observed (x, value) pairs of the current generation.
    observed: Vec<(Vec<f64>, f64)>,
    next_in_gen: usize,
    tracker: BestTracker,
}

impl std::fmt::Debug for CmaEs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmaEs")
            .field("dim", &self.dim)
            .field("lambda", &self.lambda)
            .field("sigma", &self.sigma)
            .finish()
    }
}

impl CmaEs {
    /// Creates a CMA-ES optimizer starting from the space's default
    /// configuration.
    pub fn new(space: Space, config: CmaEsConfig) -> Self {
        let dim = space.len().max(1);
        let lambda = config
            .lambda
            .unwrap_or(4 + (3.0 * (dim as f64).ln()).floor() as usize)
            .max(4);
        let mu = lambda / 2;
        // log-weights: w_i ∝ ln(μ+1/2) − ln(i)
        let raw: Vec<f64> = (1..=mu)
            .map(|i| ((mu as f64) + 0.5).ln() - (i as f64).ln())
            .collect();
        let sum: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / sum).collect();
        let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
        let n = dim as f64;
        let cc = (4.0 + mu_eff / n) / (n + 4.0 + 2.0 * mu_eff / n);
        let cs = (mu_eff + 2.0) / (n + mu_eff + 5.0);
        let c1 = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff);
        let cmu =
            (1.0 - c1).min(2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((n + 2.0) * (n + 2.0) + mu_eff));
        let damps = 1.0 + 2.0 * ((mu_eff - 1.0) / (n + 1.0)).sqrt().max(0.0) + cs;
        let chi_n = n.sqrt() * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));
        let mean = space
            .encode_unit(&space.default_config())
            .expect("default config encodes"); // lint: allow(D5) default config always encodes
        CmaEs {
            space,
            dim,
            lambda,
            mu,
            weights,
            mu_eff,
            cc,
            cs,
            c1,
            cmu,
            damps,
            chi_n,
            mean,
            sigma: config.sigma0,
            cov: Matrix::identity(dim),
            path_c: vec![0.0; dim],
            path_s: vec![0.0; dim],
            eig_b: Matrix::identity(dim),
            eig_d: vec![1.0; dim],
            generation: Vec::new(),
            observed: Vec::new(),
            next_in_gen: 0,
            tracker: BestTracker::default(),
        }
    }

    /// Population size λ.
    pub fn lambda(&self) -> usize {
        self.lambda
    }

    /// Current global step size σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Refreshes the eigendecomposition cache of the covariance.
    fn update_eigen(&mut self) {
        // Symmetrize defensively before decomposing.
        let n = self.dim;
        for i in 0..n {
            for j in 0..i {
                let avg = 0.5 * (self.cov[(i, j)] + self.cov[(j, i)]);
                self.cov[(i, j)] = avg;
                self.cov[(j, i)] = avg;
            }
        }
        if let Ok(e) = symmetric_eigen(&self.cov) {
            self.eig_d = e.values.iter().map(|&v| v.max(1e-20).sqrt()).collect();
            self.eig_b = e.vectors;
        }
    }

    /// Samples one individual: returns `(z, x)` with
    /// `x = m + σ B D z` clamped to the unit cube.
    fn sample_individual(&self, rng: &mut dyn RngCore) -> (Vec<f64>, Vec<f64>) {
        let z: Vec<f64> = (0..self.dim)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        // y = B D z
        let dz: Vec<f64> = z
            .iter()
            .zip(&self.eig_d)
            .map(|(&zi, &di)| zi * di)
            .collect();
        let y = self
            .eig_b
            .matvec(&dz)
            .expect("eigenvector matrix is dim x dim"); // lint: allow(D5) eigenbasis is square with space dimension
        let x: Vec<f64> = self
            .mean
            .iter()
            .zip(&y)
            .map(|(&m, &yi)| (m + self.sigma * yi).clamp(0.0, 1.0))
            .collect();
        (z, x)
    }

    /// Fills the generation buffer.
    fn refill_generation(&mut self, rng: &mut dyn RngCore) {
        self.generation = (0..self.lambda)
            .map(|_| self.sample_individual(rng))
            .collect();
        self.next_in_gen = 0;
    }

    /// Applies the CMA update once a full generation is observed.
    fn update_distribution(&mut self) {
        // Rank ascending (minimization).
        let mut order: Vec<usize> = (0..self.observed.len()).collect();
        order.sort_by(|&a, &b| self.observed[a].1.total_cmp(&self.observed[b].1));
        let old_mean = self.mean.clone();
        // New mean: weighted recombination of the top-μ.
        let mut new_mean = vec![0.0; self.dim];
        for (w, &idx) in self.weights.iter().zip(order.iter().take(self.mu)) {
            autotune_linalg::axpy(*w, &self.observed[idx].0, &mut new_mean);
        }
        // y_w = (m' - m) / σ
        let y_w: Vec<f64> = new_mean
            .iter()
            .zip(&old_mean)
            .map(|(&a, &b)| (a - b) / self.sigma.max(1e-300))
            .collect();
        self.mean = new_mean;

        // C^{-1/2} y_w = B D^{-1} Bᵀ y_w
        let bty = self.eig_b.transpose().matvec(&y_w).expect("dims match"); // lint: allow(D5) factor dims fixed at construction
        let dinv_bty: Vec<f64> = bty
            .iter()
            .zip(&self.eig_d)
            .map(|(&v, &d)| v / d.max(1e-20))
            .collect();
        let c_inv_sqrt_y = self.eig_b.matvec(&dinv_bty).expect("dims match"); // lint: allow(D5) factor dims fixed at construction

        // Step-size path and CSA update.
        let cs = self.cs;
        let coef_s = (cs * (2.0 - cs) * self.mu_eff).sqrt();
        for (p, &c) in self.path_s.iter_mut().zip(&c_inv_sqrt_y) {
            *p = (1.0 - cs) * *p + coef_s * c;
        }
        let ps_norm = autotune_linalg::norm2(&self.path_s);
        self.sigma *= ((cs / self.damps) * (ps_norm / self.chi_n - 1.0)).exp();
        self.sigma = self.sigma.clamp(1e-8, 1.0);

        // Covariance path (with stall indicator h_σ).
        let gen_count = (self.tracker.n() / self.lambda).max(1) as f64;
        let h_sigma = if ps_norm / (1.0 - (1.0 - cs).powf(2.0 * gen_count)).sqrt()
            < (1.4 + 2.0 / (self.dim as f64 + 1.0)) * self.chi_n
        {
            1.0
        } else {
            0.0
        };
        let cc = self.cc;
        let coef_c = (cc * (2.0 - cc) * self.mu_eff).sqrt();
        for (p, &y) in self.path_c.iter_mut().zip(&y_w) {
            *p = (1.0 - cc) * *p + h_sigma * coef_c * y;
        }

        // Rank-1 + rank-μ covariance update.
        let c1 = self.c1;
        let cmu = self.cmu;
        let delta_h = (1.0 - h_sigma) * cc * (2.0 - cc);
        for i in 0..self.dim {
            for j in 0..self.dim {
                let mut rank_mu = 0.0;
                for (w, &idx) in self.weights.iter().zip(order.iter().take(self.mu)) {
                    let yi = (self.observed[idx].0[i] - old_mean[i]) / self.sigma.max(1e-300);
                    let yj = (self.observed[idx].0[j] - old_mean[j]) / self.sigma.max(1e-300);
                    rank_mu += w * yi * yj;
                }
                self.cov[(i, j)] = (1.0 - c1 - cmu + c1 * delta_h) * self.cov[(i, j)]
                    + c1 * self.path_c[i] * self.path_c[j]
                    + cmu * rank_mu;
            }
        }
        self.update_eigen();
        self.observed.clear();
    }
}

impl Optimizer for CmaEs {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> Config {
        if self.next_in_gen >= self.generation.len() {
            self.refill_generation(rng);
        }
        let (_, x) = &self.generation[self.next_in_gen];
        self.next_in_gen += 1;
        self.space
            .decode_unit(x)
            .expect("unit vector of space dimension must decode") // lint: allow(D5) unit vector built with space dimension
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
        let x = self
            .space
            .encode_unit(config)
            .expect("configs against this space encode"); // lint: allow(D5) observed configs originate from this space
                                                          // Crashed trials rank last.
        let v = if value.is_nan() { f64::INFINITY } else { value };
        self.observed.push((x, v));
        if self.observed.len() >= self.lambda {
            self.update_distribution();
        }
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        "cma_es"
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};

    #[test]
    fn solves_sphere() {
        let mut opt = CmaEs::new(sphere_space(), CmaEsConfig::default());
        let best = run_loop(&mut opt, sphere, 120, 7);
        assert!(best < 0.01, "CMA-ES best {best} after 120 trials");
    }

    #[test]
    fn solves_rosenbrock_like_valley() {
        use autotune_space::{Param, Space};
        let space = Space::builder()
            .add(Param::float("a", -2.0, 2.0))
            .add(Param::float("b", -1.0, 3.0))
            .build()
            .unwrap();
        let rosen = |c: &Config| {
            let a = c.get_f64("a").unwrap();
            let b = c.get_f64("b").unwrap();
            100.0 * (b - a * a).powi(2) + (1.0 - a).powi(2)
        };
        let mut opt = CmaEs::new(space, CmaEsConfig::default());
        let best = run_loop(&mut opt, rosen, 400, 13);
        assert!(best < 0.5, "CMA-ES Rosenbrock best {best}");
    }

    #[test]
    fn sigma_adapts_downward_on_convergence() {
        let mut opt = CmaEs::new(sphere_space(), CmaEsConfig::default());
        let s0 = opt.sigma();
        run_loop(&mut opt, sphere, 200, 17);
        assert!(
            opt.sigma() < s0,
            "sigma {} should shrink from {s0}",
            opt.sigma()
        );
    }

    #[test]
    fn lambda_default_scales_with_dim() {
        let opt = CmaEs::new(sphere_space(), CmaEsConfig::default());
        assert!(opt.lambda() >= 4);
    }

    #[test]
    fn nan_observation_ranks_last() {
        let space = sphere_space();
        let mut opt = CmaEs::new(space.clone(), CmaEsConfig::default());
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9E3779B97F4A7C15);
        // Feed a full generation; one crash.
        for i in 0..opt.lambda() {
            let c = opt.suggest(&mut rng);
            let v = if i == 0 { f64::NAN } else { sphere(&c) };
            opt.observe(&c, v);
        }
        // The update must have consumed the generation without panicking.
        assert!(opt.observed.is_empty());
    }

    #[test]
    fn suggestions_stay_in_bounds() {
        let space = sphere_space();
        let mut opt = CmaEs::new(
            space.clone(),
            CmaEsConfig {
                sigma0: 0.9,
                ..Default::default()
            },
        );
        let mut rng = rand::rngs::mock::StepRng::new(1, 0x9E3779B97F4A7C15);
        for _ in 0..30 {
            let c = opt.suggest(&mut rng);
            assert!(space.validate_config(&c).is_ok());
        }
    }
}

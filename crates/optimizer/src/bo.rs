//! Sequential model-based (Bayesian) optimization (tutorial slides 32-50).
//!
//! The loop (slide 33):
//! 1. evaluate the expensive function,
//! 2. update the statistical model,
//! 3. maximize the acquisition function to pick the next configuration,
//! 4. repeat.
//!
//! Two surrogate choices are built in: a Gaussian process over the one-hot
//! encoding (the classic), and a SMAC-style random forest over the unit
//! encoding (better for conditional/categorical spaces, slide 50-51).
//! Acquisition maximization is random multi-start plus coordinate-wise
//! local refinement — derivative-free so it works identically for both
//! surrogates.

use crate::{AcquisitionFunction, BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use autotune_surrogate::{
    GaussianProcess, HyperFitConfig, Matern52, RandomForest, RandomForestConfig,
    SparseGaussianProcess, SparseGpConfig, Surrogate, TrustRegionConfig, TrustRegionSurrogate,
};
use rand::{RngCore, SeedableRng};

/// Which surrogate model drives the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateChoice {
    /// Gaussian process with a Matérn-5/2 ARD kernel over the one-hot
    /// encoding.
    GaussianProcess,
    /// Random forest over the unit encoding (SMAC).
    RandomForest,
    /// Sparse (inducing-point) GP over the one-hot encoding: O(m²)
    /// suggest/observe independent of n — for campaigns that outlive the
    /// dense GP's O(n²)/O(n³) costs.
    SparseGaussianProcess,
    /// TuRBO-style local trust-region GP over the one-hot encoding:
    /// models only the incumbent's neighborhood, capped at a fixed local
    /// size.
    TrustRegion,
}

/// Tunables of the BO loop itself.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Random configurations evaluated before the model kicks in.
    pub n_init: usize,
    /// Acquisition function.
    pub acquisition: AcquisitionFunction,
    /// Random candidates scored per suggestion.
    pub n_candidates: usize,
    /// Local-refinement iterations around the best random candidate.
    pub n_local_steps: usize,
    /// Refit kernel hyperparameters every this many observations
    /// (0 disables refitting).
    pub refit_every: usize,
    /// Surrogate family.
    pub surrogate: SurrogateChoice,
    /// Absorb observations into the surrogate with O(n²) in-place updates
    /// ([`Surrogate::observe`]) when possible, instead of refitting from
    /// scratch before every suggestion. Off reproduces the historical
    /// fit-per-suggest behavior (kept for A/B measurement; see bench E32).
    pub incremental: bool,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            n_init: 8,
            acquisition: AcquisitionFunction::ExpectedImprovement,
            n_candidates: 256,
            n_local_steps: 20,
            refit_every: 5,
            surrogate: SurrogateChoice::GaussianProcess,
            incremental: true,
        }
    }
}

/// Candidate batches at or above this size are scored on parallel threads.
const MIN_PAR_CANDIDATES: usize = 16;

/// Bayesian optimizer over a configuration space.
pub struct BayesianOptimizer {
    space: Space,
    config: BoConfig,
    model: Box<dyn Surrogate>,
    /// All observations as (encoded point, value).
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// Raw observations for warm-start export.
    history: Vec<Observation>,
    /// Constant-liar values currently pinned for in-flight batch points.
    liars: Vec<Vec<f64>>,
    dirty: bool,
    observations_since_refit: usize,
    n_refits: usize,
    /// How many leading entries of `xs`/`ys` the surrogate has absorbed
    /// (0 = unknown/unfitted, forcing the next fit to be a full one).
    model_n: usize,
    /// The current fit includes constant-liar pseudo-observations, so it
    /// cannot be extended incrementally with real data.
    model_liars: bool,
    /// In-place surrogate updates performed (vs. full refits).
    n_model_updates: usize,
    /// Finite-valued observations seen (crashes excluded): the random-init
    /// phase must collect this many *informative* points. A warm start
    /// consisting purely of crash penalties gives the surrogate no
    /// contrast, so it must not satisfy `n_init` by itself.
    n_finite: usize,
    tracker: BestTracker,
}

impl std::fmt::Debug for BayesianOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesianOptimizer")
            .field("surrogate", &self.config.surrogate)
            .field("acquisition", &self.config.acquisition)
            .field("n_observed", &self.ys.len())
            .finish()
    }
}

impl BayesianOptimizer {
    /// Creates a BO instance with explicit configuration.
    pub fn new(space: Space, config: BoConfig) -> Self {
        let model: Box<dyn Surrogate> = match config.surrogate {
            SurrogateChoice::GaussianProcess => {
                let d = space.onehot_dim().max(1);
                Box::new(GaussianProcess::new(
                    Box::new(Matern52::ard(vec![0.5; d], 1.0)),
                    1e-6,
                ))
            }
            SurrogateChoice::RandomForest => {
                Box::new(RandomForest::new(RandomForestConfig::default()))
            }
            SurrogateChoice::SparseGaussianProcess => {
                let d = space.onehot_dim().max(1);
                Box::new(SparseGaussianProcess::new(
                    Box::new(Matern52::ard(vec![0.5; d], 1.0)),
                    SparseGpConfig::default(),
                ))
            }
            SurrogateChoice::TrustRegion => {
                let d = space.onehot_dim().max(1);
                Box::new(TrustRegionSurrogate::new(
                    Box::new(Matern52::ard(vec![0.5; d], 1.0)),
                    TrustRegionConfig {
                        // A one-hot categorical flip moves two encoded
                        // coordinates by 1.0 (L∞ = 1.0); any sub-1.0
                        // radius would freeze every categorical at the
                        // incumbent's value. Start with single flips
                        // in-region and let the shrink dynamics tighten.
                        init_radius: 1.0,
                        ..TrustRegionConfig::default()
                    },
                ))
            }
        };
        BayesianOptimizer {
            space,
            config,
            model,
            xs: Vec::new(),
            ys: Vec::new(),
            history: Vec::new(),
            liars: Vec::new(),
            dirty: false,
            observations_since_refit: 0,
            n_refits: 0,
            model_n: 0,
            model_liars: false,
            n_model_updates: 0,
            n_finite: 0,
            tracker: BestTracker::default(),
        }
    }

    /// GP-surrogate BO with default settings.
    pub fn gp(space: Space) -> Self {
        BayesianOptimizer::new(space, BoConfig::default())
    }

    /// SMAC: random-forest surrogate with EI.
    pub fn smac(space: Space) -> Self {
        BayesianOptimizer::new(
            space,
            BoConfig {
                surrogate: SurrogateChoice::RandomForest,
                ..Default::default()
            },
        )
    }

    /// Sparse-GP BO: inducing-point surrogate with O(m²) suggest/observe
    /// independent of n — the long-campaign (100k-observation) variant.
    pub fn sparse_gp(space: Space) -> Self {
        BayesianOptimizer::new(
            space,
            BoConfig {
                surrogate: SurrogateChoice::SparseGaussianProcess,
                ..Default::default()
            },
        )
    }

    /// TuRBO-style BO: local trust-region GP around the incumbent with a
    /// capped local model, so per-step cost is flat in campaign length.
    pub fn turbo(space: Space) -> Self {
        BayesianOptimizer::new(
            space,
            BoConfig {
                surrogate: SurrogateChoice::TrustRegion,
                ..Default::default()
            },
        )
    }

    /// Encodes a config per the surrogate's preferred layout.
    fn encode(&self, config: &Config) -> Vec<f64> {
        let r = match self.config.surrogate {
            SurrogateChoice::GaussianProcess
            | SurrogateChoice::SparseGaussianProcess
            | SurrogateChoice::TrustRegion => self.space.encode_onehot(config),
            SurrogateChoice::RandomForest => self.space.encode_unit(config),
        };
        r.expect("configs produced against this space must encode") // lint: allow(D5) configs originate from this space
    }

    /// Imports prior observations (knowledge transfer / warm start,
    /// tutorial slide 67) without counting them against `n_init`.
    pub fn warm_start(&mut self, observations: &[Observation]) {
        for obs in observations {
            self.observe(&obs.config, obs.value);
        }
    }

    /// All raw observations so far (for exporting to another tuner).
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Whether the surrogate can absorb the next data point in place: the
    /// model must hold exactly a liar-free prefix of the real data.
    fn can_extend_model(&self) -> bool {
        self.config.incremental && self.liars.is_empty() && !self.model_liars && self.model_n > 0
    }

    /// Refits the surrogate if new data arrived since the last fit.
    fn ensure_fitted(&mut self) {
        if !self.dirty || self.ys.is_empty() {
            return;
        }
        // Incremental catch-up: when the model holds a clean prefix of the
        // data, absorb the appended observations in place (O(n²) each)
        // instead of refactorizing the whole kernel matrix (O(n³)).
        let mut fallback = false;
        if self.can_extend_model() && self.model_n < self.xs.len() {
            let mut ok = true;
            for i in self.model_n..self.xs.len() {
                let x = self.xs[i].clone();
                if self.model.observe(&x, self.ys[i]).is_err() {
                    ok = false;
                    break;
                }
                self.model_n += 1;
                self.n_model_updates += 1;
            }
            if ok {
                self.dirty = false;
                return;
            }
            // A point refused the in-place update (a model without an
            // incremental path, like the random forest, or a numerical
            // rollback); fall through to the full fit — and count it, so
            // the silent O(full-refit) cost of "incremental" campaigns on
            // such models shows up in `n_refits` / campaign telemetry
            // instead of hiding.
            fallback = true;
        }
        // Include constant liars while a batch is in flight.
        let (xs, ys): (Vec<Vec<f64>>, Vec<f64>) = if self.liars.is_empty() {
            (self.xs.clone(), self.ys.clone())
        } else {
            let lie = autotune_linalg::stats::mean(&self.ys);
            let mut xs = self.xs.clone();
            let mut ys = self.ys.clone();
            for l in &self.liars {
                xs.push(l.clone());
                ys.push(lie);
            }
            (xs, ys)
        };
        if self.model.fit(&xs, &ys).is_err() {
            // A degenerate fit (e.g. all-identical points) falls back to
            // whatever the previous model state was; suggestions degrade to
            // prior-driven sampling rather than crashing the tuner.
            self.model_n = 0;
            self.model_liars = false;
        } else {
            self.model_n = self.xs.len();
            self.model_liars = !self.liars.is_empty();
            if fallback {
                self.n_refits += 1;
            }
        }
        self.dirty = false;
    }

    /// Maybe refit GP hyperparameters on the refit cadence.
    fn maybe_refit_hypers(&mut self, rng: &mut dyn RngCore) {
        if self.config.refit_every == 0
            || self.config.surrogate != SurrogateChoice::GaussianProcess
            || self.observations_since_refit < self.config.refit_every
            || self.n_finite < self.config.n_init
        {
            return;
        }
        self.observations_since_refit = 0;
        self.ensure_fitted();
        // Downcast-free: rebuild a GP, fit hypers on the raw data.
        let d = self.space.onehot_dim().max(1);
        let mut gp = GaussianProcess::new(Box::new(Matern52::ard(vec![0.5; d], 1.0)), 1e-6);
        if gp.fit(&self.xs, &self.ys).is_ok() {
            let mut r = rand::rngs::StdRng::from_seed({
                let mut seed = [0u8; 32];
                rng.fill_bytes(&mut seed);
                seed
            });
            let cfg = HyperFitConfig::default();
            if gp.fit_hyperparameters(&cfg, &mut r).is_ok() {
                self.model = Box::new(gp);
                self.dirty = false;
                self.n_refits += 1;
                // The fresh model holds exactly the real data, liar-free.
                self.model_n = self.xs.len();
                self.model_liars = false;
            }
        }
    }

    /// Proposes the next point by maximizing the acquisition function over
    /// random candidates plus local refinement.
    ///
    /// Candidate configurations are all drawn from `rng` *before* any
    /// scoring, so deterministic acquisitions (EI/PI/LCB) can be scored on
    /// parallel threads as pure functions of the frozen model; the winner
    /// is picked by an index-ordered strictly-greater argmax, making the
    /// result independent of thread count and interleaving (and bitwise
    /// equal to the historical sequential loop). Thompson sampling's score
    /// is itself a posterior draw, so it keeps the sequential
    /// sample-then-score interleaving.
    fn propose(&mut self, rng: &mut dyn RngCore) -> Config {
        self.ensure_fitted();
        // No incumbent means nothing to "improve on": every trial so far
        // crashed (NaN). Defaulting the incumbent to 0.0 silently biases
        // EI/PI, so switch to a confidence bound that needs no incumbent.
        let incumbent = self.tracker.best().map(|b| b.value);
        let acquisition = match incumbent {
            Some(_) => self.config.acquisition,
            None => AcquisitionFunction::LowerConfidenceBound { beta: 1.0 },
        };
        let best_val = incumbent.unwrap_or(0.0);
        // The trust-region surrogate only models the neighborhood of the
        // incumbent; a purely global candidate pool mostly lands where its
        // local GP has reverted to the prior, wasting the acquisition
        // budget. Mirror TuRBO's in-region candidate generation by drawing
        // every other candidate as a neighbor of the incumbent config.
        let local_anchor = match self.config.surrogate {
            SurrogateChoice::TrustRegion => self.tracker.best().map(|b| b.config.clone()),
            _ => None,
        };
        let mut rng = rng;
        let (mut cfg, mut x, mut score) = if acquisition.consumes_rng() {
            // Sequential sample-then-score keeps the draw interleaving.
            let mut best_cfg: Option<(Config, Vec<f64>, f64)> = None;
            // Clamp so a zero candidate budget still yields one draw.
            for i in 0..self.config.n_candidates.max(1) {
                let cand = match &local_anchor {
                    Some(anchor) if i % 2 == 1 => self.space.neighbor(anchor, 0.2, &mut rng),
                    _ => self.space.sample(&mut rng),
                };
                let cx = self.encode(&cand);
                let s = acquisition.score(&self.model.predict(&cx), best_val, &mut rng);
                if best_cfg.as_ref().is_none_or(|(_, _, b)| s > *b) {
                    best_cfg = Some((cand, cx, s));
                }
            }
            best_cfg.expect("n_candidates >= 1 guarantees a candidate") // lint: allow(D5) loop above clamps to at least one draw
        } else {
            let mut cands: Vec<(Config, Vec<f64>)> = Vec::with_capacity(self.config.n_candidates);
            for i in 0..self.config.n_candidates {
                let cand = match &local_anchor {
                    Some(anchor) if i % 2 == 1 => self.space.neighbor(anchor, 0.2, &mut rng),
                    _ => self.space.sample(&mut rng),
                };
                let cx = self.encode(&cand);
                cands.push((cand, cx));
            }
            let model = self.model.as_ref();
            let scores = autotune_linalg::par_map(&cands, MIN_PAR_CANDIDATES, |_, (_, cx)| {
                acquisition.score_pure(&model.predict(cx), best_val)
            });
            let mut best_i = 0;
            for (i, s) in scores.iter().enumerate() {
                if *s > scores[best_i] {
                    best_i = i;
                }
            }
            let (cand, cx) = cands.swap_remove(best_i);
            let s = scores[best_i];
            (cand, cx, s)
        };
        // Local refinement: perturb the winner, keep improvements.
        for step in 0..self.config.n_local_steps {
            let scale = 0.1 * (1.0 - step as f64 / self.config.n_local_steps.max(1) as f64);
            let neighbor = self.space.neighbor(&cfg, scale.max(0.01), &mut rng);
            let nx = self.encode(&neighbor);
            let nscore = {
                let pred = self.model.predict(&nx);
                acquisition.score(&pred, best_val, &mut rng)
            };
            if nscore > score {
                cfg = neighbor;
                x = nx;
                score = nscore;
            }
        }
        let _ = (x, score);
        cfg
    }
}

impl Optimizer for BayesianOptimizer {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> Config {
        let mut r = rng;
        if self.n_finite < self.config.n_init {
            return self.space.sample(&mut r);
        }
        self.maybe_refit_hypers(r);
        self.propose(r)
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
        let x = self.encode(config);
        // Resolve any constant liar pinned at this point.
        if let Some(pos) = self
            .liars
            .iter()
            .position(|l| autotune_linalg::squared_distance(l, &x) < 1e-18)
        {
            self.liars.swap_remove(pos);
        }
        // Crashed trials (NaN) are recorded at a pessimistic value so the
        // model learns to avoid the region (slide 67: "bad samples: make it
        // up — N * worst_score_measured").
        if value.is_finite() {
            self.n_finite += 1;
        }
        let recorded = if value.is_nan() {
            let worst = self.ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if worst.is_finite() {
                worst + (worst.abs() + 1.0)
            } else {
                1e9
            }
        } else {
            value
        };
        // Eager O(n²) absorb: when the model already holds exactly the
        // real data, extend it in place now so the next suggestion pays no
        // refit at all. (The GP's rank-1 extension reproduces the full
        // factorization bitwise, so this does not perturb trajectories.)
        let absorbed = self.can_extend_model()
            && self.model_n == self.xs.len()
            && self.model.observe(&x, recorded).is_ok();
        self.xs.push(x);
        self.ys.push(recorded);
        self.history.push(Observation {
            config: config.clone(),
            value: recorded,
        });
        self.observations_since_refit += 1;
        if absorbed {
            self.model_n += 1;
            self.n_model_updates += 1;
            // Any prior dirtiness came from liar marks that are now fully
            // resolved; the model again matches the data exactly.
            self.dirty = false;
        } else {
            self.dirty = true;
        }
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        match self.config.surrogate {
            SurrogateChoice::GaussianProcess => "bo_gp",
            SurrogateChoice::RandomForest => "smac",
            SurrogateChoice::SparseGaussianProcess => "bo_sparse_gp",
            SurrogateChoice::TrustRegion => "bo_turbo",
        }
    }

    /// Constant-liar pending mark (slide 57): pin a pessimistic pseudo-
    /// observation at the proposed point so proposals made while this one
    /// is in flight spread out instead of piling onto one optimum. The
    /// liar stays pinned until the real observation arrives. During the
    /// random-init phase there is no model to mislead, so nothing is
    /// pinned.
    fn mark_pending(&mut self, config: &Config) {
        if self.n_finite >= self.config.n_init {
            let x = self.encode(config);
            self.liars.push(x);
            self.dirty = true;
        }
    }

    fn unmark_pending(&mut self, config: &Config) {
        let x = self.encode(config);
        if let Some(pos) = self
            .liars
            .iter()
            .position(|l| autotune_linalg::squared_distance(l, &x) < 1e-18)
        {
            self.liars.swap_remove(pos);
            self.dirty = true;
        }
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }

    fn n_refits(&self) -> usize {
        self.n_refits
    }

    fn n_model_updates(&self) -> usize {
        self.n_model_updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gp_bo_beats_budget_on_sphere() {
        let mut opt = BayesianOptimizer::gp(sphere_space());
        let best = run_loop(&mut opt, sphere, 40, 11);
        assert!(best < 0.05, "GP-BO best {best} after 40 trials");
    }

    #[test]
    fn smac_solves_sphere() {
        let mut opt = BayesianOptimizer::smac(sphere_space());
        let best = run_loop(&mut opt, sphere, 60, 12);
        assert!(best < 0.15, "SMAC best {best} after 60 trials");
    }

    #[test]
    fn sparse_gp_bo_solves_sphere() {
        let mut opt = BayesianOptimizer::sparse_gp(sphere_space());
        assert_eq!(opt.name(), "bo_sparse_gp");
        let best = run_loop(&mut opt, sphere, 50, 14);
        assert!(best < 0.1, "sparse-GP BO best {best} after 50 trials");
    }

    #[test]
    fn turbo_bo_solves_sphere() {
        let mut opt = BayesianOptimizer::turbo(sphere_space());
        assert_eq!(opt.name(), "bo_turbo");
        let best = run_loop(&mut opt, sphere, 60, 15);
        assert!(best < 0.1, "TuRBO BO best {best} after 60 trials");
    }

    #[test]
    fn forest_fallback_refits_are_counted() {
        // Satellite regression: RandomForest has no incremental `observe`,
        // so with incremental=true every post-init model sync is silently
        // a full refit. That cost must surface in `n_refits` instead of
        // hiding behind the incremental flag.
        let mut opt = BayesianOptimizer::smac(sphere_space());
        assert!(opt.config.incremental);
        let mut rng = StdRng::seed_from_u64(23);
        let n_init = opt.config.n_init;
        for _ in 0..n_init + 10 {
            let c = opt.suggest(&mut rng);
            let v = sphere(&c);
            opt.observe(&c, v);
        }
        // Each model-phase suggestion past the first full fit re-syncs the
        // forest through the refused-incremental fallback path.
        assert!(
            opt.n_refits() >= 8,
            "forest fallback refits must be counted: {}",
            opt.n_refits()
        );
        assert_eq!(
            opt.n_model_updates(),
            0,
            "the forest has no incremental path to credit"
        );
    }

    #[test]
    fn gp_incremental_path_counts_no_fallback_refits() {
        // The dense GP absorbs everything in place: its campaigns must not
        // be charged any fallback refits (hyper-refit cycles are disabled
        // here to isolate the fallback counter).
        let mut opt = BayesianOptimizer::new(
            sphere_space(),
            BoConfig {
                refit_every: 0,
                ..BoConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..30 {
            let c = opt.suggest(&mut rng);
            let v = sphere(&c);
            opt.observe(&c, v);
        }
        assert_eq!(opt.n_refits(), 0, "GP incremental path never falls back");
        assert!(opt.n_model_updates() > 10);
    }

    #[test]
    fn first_suggestions_are_random_init() {
        let mut opt = BayesianOptimizer::gp(sphere_space());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..opt.config.n_init {
            let c = opt.suggest(&mut rng);
            opt.observe(&c, 1.0);
        }
        assert_eq!(opt.n_observed(), opt.config.n_init);
    }

    #[test]
    fn batch_suggestions_are_diverse() {
        let space = sphere_space();
        let mut opt = BayesianOptimizer::gp(space.clone());
        let mut rng = StdRng::seed_from_u64(4);
        // Seed the model.
        for _ in 0..10 {
            let c = opt.suggest(&mut rng);
            let v = sphere(&c);
            opt.observe(&c, v);
        }
        let batch = opt.suggest_batch(4, &mut rng);
        assert_eq!(batch.len(), 4);
        // Pairwise distances in encoded space must be nonzero: the constant
        // liar must prevent duplicate proposals.
        for i in 0..batch.len() {
            for j in (i + 1)..batch.len() {
                let a = space.encode_unit(&batch[i]).unwrap();
                let b = space.encode_unit(&batch[j]).unwrap();
                let d = autotune_linalg::squared_distance(&a, &b);
                assert!(d > 1e-12, "batch points {i} and {j} identical");
            }
        }
        // Observing the real values releases the liars.
        for c in &batch {
            let v = sphere(c);
            opt.observe(c, v);
        }
        assert!(opt.liars.is_empty());
    }

    #[test]
    fn nan_recorded_as_pessimistic() {
        let space = sphere_space();
        let mut opt = BayesianOptimizer::gp(space.clone());
        opt.observe(&space.default_config(), 2.0);
        opt.observe(&space.default_config().with("x", 1.0), f64::NAN);
        // The NaN trial must not be best, and must be stored worse than 2.0.
        assert_eq!(opt.best().unwrap().value, 2.0);
        assert!(opt.ys[1] > 2.0);
    }

    #[test]
    fn warm_start_counts_as_observations() {
        let space = sphere_space();
        let mut donor = BayesianOptimizer::gp(space.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..12 {
            let c = donor.suggest(&mut rng);
            let v = sphere(&c);
            donor.observe(&c, v);
        }
        let mut recipient = BayesianOptimizer::gp(space);
        recipient.warm_start(donor.history());
        assert_eq!(recipient.n_observed(), 12);
        // Next suggestion is model-driven (past n_init) and valid.
        let c = recipient.suggest(&mut rng);
        assert!(recipient.space().validate_config(&c).is_ok());
    }

    #[test]
    fn incremental_and_full_fit_produce_identical_suggestions() {
        // The rank-1 GP extension reproduces the from-scratch factorization
        // bitwise, so the entire suggestion trajectory must match the
        // fit-per-suggest seed path while doing O(n²) updates instead.
        let run = |incremental: bool| {
            let mut opt = BayesianOptimizer::new(
                sphere_space(),
                BoConfig {
                    incremental,
                    ..BoConfig::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(77);
            let mut trace = Vec::new();
            for _ in 0..25 {
                let c = opt.suggest(&mut rng);
                let v = sphere(&c);
                opt.observe(&c, v);
                trace.push((format!("{c:?}"), v));
            }
            (trace, opt.n_model_updates())
        };
        let (inc_trace, inc_updates) = run(true);
        let (seed_trace, seed_updates) = run(false);
        assert_eq!(inc_trace, seed_trace, "trajectories must be bitwise equal");
        assert!(inc_updates > 10, "incremental path unused: {inc_updates}");
        assert_eq!(seed_updates, 0, "incremental=false must never absorb");
    }

    #[test]
    fn first_model_suggestion_without_any_incumbent() {
        // Satellite regression: with every observation NaN (all trials
        // crashed) there is no incumbent; the old code scored EI against a
        // fabricated best of 0.0. The proposal must still be valid and
        // deterministic, driven by a confidence bound instead.
        let space = sphere_space();
        let mut opt = BayesianOptimizer::new(
            space.clone(),
            BoConfig {
                n_init: 2,
                ..BoConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let c = opt.suggest(&mut rng);
            opt.observe(&c, f64::NAN);
        }
        assert!(opt.best().is_none(), "NaN-only history has no incumbent");
        // n_finite is still 0 < n_init, so force the model path directly.
        opt.n_finite = opt.config.n_init;
        opt.ensure_fitted();
        let a = opt.propose(&mut StdRng::seed_from_u64(9));
        let b = opt.propose(&mut StdRng::seed_from_u64(9));
        assert!(space.validate_config(&a).is_ok());
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "proposal must be deterministic"
        );
    }

    #[test]
    fn incumbent_present_keeps_configured_acquisition_stream() {
        // The incumbent fix must not disturb seeded campaigns that do have
        // finite observations: the first post-init suggestion is unchanged
        // between two identical runs (and exercises the EI path).
        let run = || {
            let mut opt = BayesianOptimizer::gp(sphere_space());
            let mut rng = StdRng::seed_from_u64(13);
            for _ in 0..opt.config.n_init {
                let c = opt.suggest(&mut rng);
                let v = sphere(&c);
                opt.observe(&c, v);
            }
            format!("{:?}", opt.suggest(&mut rng))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn thompson_sampling_still_suggests_valid_configs() {
        // TS consumes RNG inside scoring and must take the sequential
        // path; smoke-test that the campaign still runs end to end.
        let mut opt = BayesianOptimizer::new(
            sphere_space(),
            BoConfig {
                acquisition: AcquisitionFunction::ThompsonSample,
                ..BoConfig::default()
            },
        );
        let best = run_loop(&mut opt, sphere, 30, 17);
        assert!(best.is_finite());
    }

    #[test]
    fn handles_categorical_space() {
        use autotune_space::{Param, Space};
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .add(Param::categorical("mode", &["slow", "fast", "turbo"]))
            .build()
            .unwrap();
        let objective = |c: &Config| {
            let x = c.get_f64("x").unwrap();
            let penalty = match c.get_str("mode").unwrap() {
                "turbo" => 0.0,
                "fast" => 0.5,
                _ => 1.0,
            };
            (x - 0.3).powi(2) + penalty
        };
        for mut opt in [
            BayesianOptimizer::gp(space.clone()),
            BayesianOptimizer::smac(space.clone()),
        ] {
            let best = run_loop(&mut opt, objective, 50, 21);
            assert!(best < 0.3, "{} best {best}", opt.name());
        }
    }
}

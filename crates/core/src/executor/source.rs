//! Trial sources: where configurations come from.
//!
//! A [`TrialSource`] is the suggestion side of the executor loop. The
//! executor pulls requests from it ([`TrialSource::next`]) and pushes
//! finalized outcomes back ([`TrialSource::report`]); the source decides
//! what to propose, when to hold back ([`SourceStep::Wait`] — e.g. a rung
//! barrier), and when the campaign is over.

use super::event::{TrialOutcome, TrialRequest};
use crate::multifid::FidelityLevel;
use autotune_optimizer::Optimizer;
use autotune_space::Config;
use rand::RngCore;

/// What a source answers when asked for the next trial.
#[derive(Debug)]
pub enum SourceStep {
    /// Run this trial.
    Dispatch(TrialRequest),
    /// Nothing to dispatch until some in-flight trial reports back.
    Wait,
    /// The campaign is over once the in-flight trials drain.
    Exhausted,
}

/// The suggestion side of the executor loop.
pub trait TrialSource {
    /// Asks for the next trial. `rng` is the campaign's *suggestion*
    /// stream, distinct from the per-trial evaluation streams.
    fn next(&mut self, rng: &mut dyn RngCore) -> SourceStep;

    /// Reports a finalized trial (possibly out of dispatch order under
    /// asynchronous policies).
    fn report(&mut self, outcome: &TrialOutcome);

    /// Rung promotions to announce since the last poll (successive
    /// halving); the executor turns these into
    /// [`super::TrialEvent::Promoted`] events.
    fn take_promotions(&mut self) -> Vec<(Config, usize)> {
        Vec::new()
    }

    /// Surrogate hyperparameter refits performed so far by whatever
    /// optimizer backs this source (0 for model-free sources). The
    /// executor polls this around every suggest/observe and announces
    /// increases as [`crate::telemetry::OptEvent::SurrogateRefit`].
    fn n_refits(&self) -> usize {
        0
    }

    /// In-place incremental surrogate updates performed so far (0 for
    /// model-free sources). Polled alongside [`TrialSource::n_refits`] and
    /// announced as [`crate::telemetry::OptEvent::ModelUpdate`].
    fn n_model_updates(&self) -> usize {
        0
    }
}

/// Adapts an ask/tell [`Optimizer`] into a [`TrialSource`] with a fixed
/// trial budget.
///
/// Every suggestion is marked pending on the optimizer
/// ([`Optimizer::mark_pending`]), so model-based optimizers give in-flight
/// configurations constant-liar treatment: asynchronous slots never pile
/// onto the same optimum that another slot is already measuring.
pub struct OptimizerSource<'a> {
    optimizer: &'a mut dyn Optimizer,
    budget: usize,
    suggested: usize,
}

impl<'a> OptimizerSource<'a> {
    /// Wraps `optimizer` with a budget of `budget` trials.
    pub fn new(optimizer: &'a mut dyn Optimizer, budget: usize) -> Self {
        OptimizerSource {
            optimizer,
            budget,
            suggested: 0,
        }
    }
}

impl TrialSource for OptimizerSource<'_> {
    fn next(&mut self, rng: &mut dyn RngCore) -> SourceStep {
        if self.suggested >= self.budget {
            return SourceStep::Exhausted;
        }
        self.suggested += 1;
        let config = self.optimizer.suggest(rng);
        self.optimizer.mark_pending(&config);
        SourceStep::Dispatch(TrialRequest::new(config))
    }

    fn report(&mut self, outcome: &TrialOutcome) {
        // A trial lost to infrastructure carries no information about its
        // configuration: feeding it to the learner as a crash would
        // mis-train the surrogate (the naive behaviour E30 measures).
        // Unless middleware substituted a finite learn cost, just release
        // the pending mark and move on. Covers both exhausted retries
        // (`TransientFailure`) and hangs censored to NaN by `TimeoutMw`.
        if outcome.learn_cost.is_nan() && outcome.fault.is_some_and(|f| f.is_transient()) {
            self.optimizer.unmark_pending(&outcome.config);
            return;
        }
        self.optimizer.observe(&outcome.config, outcome.learn_cost);
    }

    fn n_refits(&self) -> usize {
        self.optimizer.n_refits()
    }

    fn n_model_updates(&self) -> usize {
        self.optimizer.n_model_updates()
    }
}

/// The owning twin of [`OptimizerSource`]: same budgeted ask/tell
/// adapter, but it owns its optimizer, so a
/// [`Campaign`](super::Campaign) built over it is `'static` and can be
/// parked in a long-lived registry (the serve layer's normal case).
pub struct OwnedOptimizerSource {
    optimizer: Box<dyn Optimizer>,
    budget: usize,
    suggested: usize,
}

impl OwnedOptimizerSource {
    /// Wraps `optimizer` with a budget of `budget` trials.
    pub fn new(optimizer: Box<dyn Optimizer>, budget: usize) -> Self {
        OwnedOptimizerSource {
            optimizer,
            budget,
            suggested: 0,
        }
    }

    /// The wrapped optimizer (e.g. to export observations for transfer).
    pub fn optimizer(&self) -> &dyn Optimizer {
        self.optimizer.as_ref()
    }
}

impl TrialSource for OwnedOptimizerSource {
    // Keep in lockstep with OptimizerSource above: the two adapters must
    // produce identical suggestion/report behaviour.
    fn next(&mut self, rng: &mut dyn RngCore) -> SourceStep {
        if self.suggested >= self.budget {
            return SourceStep::Exhausted;
        }
        self.suggested += 1;
        let config = self.optimizer.suggest(rng);
        self.optimizer.mark_pending(&config);
        SourceStep::Dispatch(TrialRequest::new(config))
    }

    fn report(&mut self, outcome: &TrialOutcome) {
        if outcome.learn_cost.is_nan() && outcome.fault.is_some_and(|f| f.is_transient()) {
            self.optimizer.unmark_pending(&outcome.config);
            return;
        }
        self.optimizer.observe(&outcome.config, outcome.learn_cost);
    }

    fn n_refits(&self) -> usize {
        self.optimizer.n_refits()
    }

    fn n_model_updates(&self) -> usize {
        self.optimizer.n_model_updates()
    }
}

/// Successive-halving source: dispatches a pool of configurations through
/// a fidelity ladder, holding a barrier at every rung and promoting the
/// top `1/eta` fraction to the next (more expensive) rung.
pub struct RungSource<'a> {
    levels: &'a [FidelityLevel],
    eta: usize,
    rung: usize,
    queue: Vec<Config>,
    next_idx: usize,
    outstanding: usize,
    scored: Vec<(Config, f64)>,
    rung_sizes: Vec<usize>,
    final_scores: Vec<(Config, f64)>,
    promotions: Vec<(Config, usize)>,
    done: bool,
}

impl<'a> RungSource<'a> {
    /// A bracket over `levels` (cheapest first) starting from `pool`.
    pub fn new(levels: &'a [FidelityLevel], eta: usize, pool: Vec<Config>) -> Self {
        assert!(!levels.is_empty(), "need at least one fidelity level");
        assert!(eta >= 2, "eta must be at least 2");
        assert!(!pool.is_empty(), "need at least one config");
        RungSource {
            levels,
            eta,
            rung: 0,
            rung_sizes: vec![pool.len()],
            queue: pool,
            next_idx: 0,
            outstanding: 0,
            scored: Vec::new(),
            final_scores: Vec::new(),
            promotions: Vec::new(),
            done: false,
        }
    }

    /// Survivors per rung (diagnostics).
    pub fn rung_sizes(&self) -> &[usize] {
        &self.rung_sizes
    }

    /// Top-fidelity ranking, best first (empty until the bracket finishes).
    pub fn final_scores(&self) -> &[(Config, f64)] {
        &self.final_scores
    }

    /// Closes the current rung: rank it, keep the top `1/eta` fraction,
    /// and either finish (top rung) or promote survivors to the next rung.
    fn advance_rung(&mut self) {
        // Stable sort: ties keep completion order, so single-slot execution
        // reproduces the classic sequential bracket exactly.
        self.scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        if self.rung + 1 == self.levels.len() {
            self.final_scores = std::mem::take(&mut self.scored);
            self.done = true;
            return;
        }
        let keep = (self.scored.len() / self.eta).max(1);
        self.scored.truncate(keep);
        self.rung += 1;
        self.queue = self.scored.drain(..).map(|(c, _)| c).collect();
        self.next_idx = 0;
        self.rung_sizes.push(self.queue.len());
        for c in &self.queue {
            self.promotions.push((c.clone(), self.rung));
        }
    }
}

impl TrialSource for RungSource<'_> {
    fn next(&mut self, _rng: &mut dyn RngCore) -> SourceStep {
        loop {
            if self.done {
                return SourceStep::Exhausted;
            }
            if self.next_idx < self.queue.len() {
                let config = self.queue[self.next_idx].clone();
                self.next_idx += 1;
                self.outstanding += 1;
                let level = &self.levels[self.rung];
                return SourceStep::Dispatch(TrialRequest {
                    config,
                    fidelity: (self.rung + 1) as f64 / self.levels.len() as f64,
                    workload: Some(level.workload.clone()),
                    machine_id: None,
                });
            }
            if self.outstanding > 0 {
                return SourceStep::Wait;
            }
            self.advance_rung();
        }
    }

    fn report(&mut self, outcome: &TrialOutcome) {
        self.outstanding -= 1;
        // Crashes rank last but stay in the pool accounting.
        let cost = if outcome.cost.is_nan() {
            f64::INFINITY
        } else {
            outcome.cost
        };
        self.scored.push((outcome.config.clone(), cost));
    }

    fn take_promotions(&mut self) -> Vec<(Config, usize)> {
        std::mem::take(&mut self.promotions)
    }
}

//! Cross-crate integration: knowledge transfer (storage JSON export →
//! policy rewrite → warm start) and multi-fidelity successive halving.

use autotune::{
    transfer_observations, FidelityLevel, Objective, SessionConfig, SuccessiveHalving,
    SuccessiveHalvingConfig, Target, TransferPolicy, TrialStorage, TuningSession,
};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_sim::{DbmsSim, Environment, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dbms(load: f64) -> Target {
    Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpcc(load),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    )
}

/// The full transfer loop: campaign -> JSON -> import -> rewrite ->
/// warm-started campaign that avoids the donor's crash region.
#[test]
fn transfer_via_json_roundtrip() {
    // Donor campaign.
    let donor = dbms(500.0);
    let opt = BayesianOptimizer::gp(donor.space().clone());
    let mut session = TuningSession::new(donor, Box::new(opt), SessionConfig::default());
    session.run(40, 1).expect("at least one successful trial");
    let json = session.storage().to_json();

    // "Another process" imports the history.
    let imported = TrialStorage::from_json(&json).expect("valid export");
    let obs = transfer_observations(imported.trials(), &TransferPolicy::default(), true);
    assert!(!obs.is_empty(), "transfer produced no observations");

    // Warm-started recipient: quickly goes below the donor's median cost.
    let recipient = dbms(800.0);
    let mut opt = BayesianOptimizer::gp(recipient.space().clone());
    opt.warm_start(&obs);
    let mut rng = StdRng::seed_from_u64(2);
    let mut best = f64::INFINITY;
    for _ in 0..10 {
        let cfg = opt.suggest(&mut rng);
        let e = recipient.evaluate(&cfg, &mut rng);
        opt.observe(&cfg, e.cost);
        if e.cost.is_finite() {
            best = best.min(e.cost);
        }
    }
    assert!(best.is_finite(), "warm-started campaign found nothing");
    // Crash knowledge: the imported crash observations exist whenever the
    // donor crashed, and carry worse-than-worst scores.
    let donor_worst = imported
        .trials()
        .iter()
        .filter(|t| t.cost.is_finite())
        .map(|t| t.cost)
        .fold(f64::NEG_INFINITY, f64::max);
    let crash_obs: Vec<_> = obs.iter().filter(|o| o.value > donor_worst).collect();
    assert_eq!(
        crash_obs.len(),
        imported.n_crashed(),
        "one penalty obs per crash"
    );
}

/// Successive halving conserves its budget arithmetic and promotes only
/// survivors.
#[test]
fn successive_halving_budget_conservation() {
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpch(10.0),
        Environment::medium(),
        Objective::MinimizeElapsed,
    );
    let sh = SuccessiveHalving::new(
        vec![
            FidelityLevel {
                label: "SF-1".into(),
                workload: Workload::tpch(1.0),
            },
            FidelityLevel {
                label: "SF-10".into(),
                workload: Workload::tpch(10.0),
            },
        ],
        SuccessiveHalvingConfig {
            initial_configs: 16,
            eta: 4,
        },
    );
    assert_eq!(sh.total_trials(), 16 + 4);
    let outcome = sh.run(&target, 3);
    assert_eq!(outcome.rung_sizes, vec![16, 4]);
    assert!(outcome.best_cost.is_finite());
    assert!(outcome.total_elapsed_s > 0.0);
    assert!(target.space().validate_config(&outcome.best_config).is_ok());
}

/// Incompatible-context transfer only moves crash knowledge.
#[test]
fn incompatible_context_transfers_only_crashes() {
    let donor = dbms(500.0);
    let opt = BayesianOptimizer::gp(donor.space().clone());
    let mut session = TuningSession::new(donor, Box::new(opt), SessionConfig::default());
    session.run(40, 5).expect("at least one successful trial");
    let n_crashed = session.storage().n_crashed();
    let obs = transfer_observations(
        session.storage().trials(),
        &TransferPolicy::default(),
        false, // different VM size / workload: scores don't transfer
    );
    assert_eq!(obs.len(), n_crashed);
}

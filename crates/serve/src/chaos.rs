//! Deterministic chaos injection for the serving layer.
//!
//! The durability story (`durability.rs`) only counts if it survives
//! failures *at every byte boundary*: a process killed before, during,
//! or after a WAL append; a worker thread panicking mid-round; a peer
//! feeding the protocol corrupt, truncated, or oversized frames. This
//! module is the fault schedule for all of it, built on the same
//! discipline as [`autotune_sim::FaultPlan`]: every decision is a pure
//! splitmix hash of `(seed, domain, index)`, so a chaos run replays
//! byte-for-byte — which is exactly what lets CI assert that recovery
//! from an injected crash reproduces the uninterrupted history.
//!
//! Crashes are *simulated*, not real `abort()`s: the WAL consults
//! [`ChaosPlan::crash_at`] per append and, when a crash fires, leaves
//! the file in the matching state (nothing written / a torn half-record
//! / the full record) and reports [`Crashed`](crate::ServeError) so the
//! harness can drop every in-memory structure and recover from disk —
//! the same observable sequence as `kill -9` at that instant, but
//! testable in-process.

use serde::{Deserialize, Serialize};

/// Where, relative to one WAL append, a simulated process crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPoint {
    /// The process dies before any byte of the record reaches the file:
    /// recovery sees the previous append as the durable frontier.
    PreAppend,
    /// The process dies mid-write, leaving a torn record — a length
    /// prefix with a short or corrupt body — that recovery must
    /// truncate, not trip over.
    MidAppend,
    /// The record is fully durable but the process dies before the
    /// append is acknowledged: recovery sees state the caller was never
    /// told about, the classic "uncertain outcome" window.
    PostAppendPreAck,
}

impl CrashPoint {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CrashPoint::PreAppend => "pre-append",
            CrashPoint::MidAppend => "mid-append",
            CrashPoint::PostAppendPreAck => "post-append-pre-ack",
        }
    }
}

/// What chaos does to one protocol frame in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Flip one byte of the encoded frame body.
    CorruptByte {
        /// Hash driving which byte flips (reduced modulo the body len).
        roll: u64,
    },
    /// Drop the tail of the frame after the length prefix went out.
    Truncate {
        /// Hash driving how much of the body survives.
        roll: u64,
    },
    /// Rewrite the length prefix to an absurd value.
    OversizePrefix,
    /// The read side stalls; surfaces as a timeout-kind transport error.
    Stall,
}

/// A seeded schedule of serving-layer faults. All-zero probabilities
/// (the [`ChaosPlan::new`] default) inject nothing; builders switch on
/// each fault family. Decisions are pure functions of `(seed, domain,
/// index)` — no RNG state, so concurrent consumers can share a plan and
/// a recovered process re-rolls identically.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed for every hash below.
    pub seed: u64,
    /// Probability an append dies before writing.
    pub p_crash_pre_append: f64,
    /// Probability an append dies mid-write (torn record).
    pub p_crash_mid_append: f64,
    /// Probability an append dies after writing, before the ack.
    pub p_crash_post_append: f64,
    /// Probability a (round, campaign) measurement worker panics.
    pub p_worker_panic: f64,
    /// Probability a frame gets one byte corrupted.
    pub p_frame_corrupt: f64,
    /// Probability a frame is truncated.
    pub p_frame_truncate: f64,
    /// Probability a frame's length prefix is rewritten oversized.
    pub p_frame_oversize: f64,
    /// Probability a read stalls (surfaces as a timeout error).
    pub p_stall: f64,
}

/// Hash domains, so the same index rolls independently per fault family.
const D_CRASH: u64 = 1;
const D_PANIC: u64 = 2;
const D_FRAME: u64 = 3;
const D_STALL: u64 = 4;
const D_AUX: u64 = 5;

impl ChaosPlan {
    /// A quiet plan: nothing injected until a builder turns a family on.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            p_crash_pre_append: 0.0,
            p_crash_mid_append: 0.0,
            p_crash_post_append: 0.0,
            p_worker_panic: 0.0,
            p_frame_corrupt: 0.0,
            p_frame_truncate: 0.0,
            p_frame_oversize: 0.0,
            p_stall: 0.0,
        }
    }

    /// Enables process-crash points around WAL appends, `p` each.
    pub fn with_crashes(mut self, p: f64) -> Self {
        self.p_crash_pre_append = p;
        self.p_crash_mid_append = p;
        self.p_crash_post_append = p;
        self
    }

    /// Enables worker panics with probability `p` per (round, campaign).
    pub fn with_worker_panics(mut self, p: f64) -> Self {
        self.p_worker_panic = p;
        self
    }

    /// Enables frame corruption/truncation/oversizing, `p` each, and
    /// read stalls at `p`.
    pub fn with_frame_faults(mut self, p: f64) -> Self {
        self.p_frame_corrupt = p;
        self.p_frame_truncate = p;
        self.p_frame_oversize = p;
        self.p_stall = p;
        self
    }

    fn hash(&self, domain: u64, index: u64, salt: u64) -> u64 {
        splitmix(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(domain)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(index)
                .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                .wrapping_add(salt),
        )
    }

    fn unit_roll(&self, domain: u64, index: u64, salt: u64) -> f64 {
        unit(self.hash(domain, index, salt))
    }

    /// Whether (and where) the process crashes around append number
    /// `append_index` of the WAL's lifetime. The index is a monotone
    /// operation counter owned by the chaos handle — *not* derived from
    /// WAL contents — so a recovered process does not re-roll the crash
    /// that killed it and loop forever.
    pub fn crash_at(&self, append_index: u64) -> Option<CrashPoint> {
        let r = self.unit_roll(D_CRASH, append_index, 0);
        if r < self.p_crash_pre_append {
            return Some(CrashPoint::PreAppend);
        }
        if r < self.p_crash_pre_append + self.p_crash_mid_append {
            return Some(CrashPoint::MidAppend);
        }
        if r < self.p_crash_pre_append + self.p_crash_mid_append + self.p_crash_post_append {
            return Some(CrashPoint::PostAppendPreAck);
        }
        None
    }

    /// For a torn ([`CrashPoint::MidAppend`]) write of a `record_len`-byte
    /// record: how many bytes actually reached the file (at least 1,
    /// strictly fewer than the whole record).
    pub fn torn_len(&self, append_index: u64, record_len: usize) -> usize {
        if record_len <= 1 {
            return record_len.min(1);
        }
        let h = self.hash(D_AUX, append_index, 1);
        1 + (h as usize) % (record_len - 1)
    }

    /// Whether the measurement worker servicing `campaign_id` in
    /// scheduling round `round` panics.
    pub fn worker_panics(&self, round: u64, campaign_id: u64) -> bool {
        self.unit_roll(D_PANIC, round, campaign_id) < self.p_worker_panic
    }

    /// What happens to outbound frame number `frame_index`.
    pub fn frame_fault(&self, frame_index: u64) -> Option<FrameFault> {
        let r = self.unit_roll(D_FRAME, frame_index, 0);
        if r < self.p_frame_corrupt {
            return Some(FrameFault::CorruptByte {
                roll: self.hash(D_AUX, frame_index, 2),
            });
        }
        if r < self.p_frame_corrupt + self.p_frame_truncate {
            return Some(FrameFault::Truncate {
                roll: self.hash(D_AUX, frame_index, 3),
            });
        }
        if r < self.p_frame_corrupt + self.p_frame_truncate + self.p_frame_oversize {
            return Some(FrameFault::OversizePrefix);
        }
        None
    }

    /// Whether inbound read number `read_index` stalls.
    pub fn read_stalls(&self, read_index: u64) -> bool {
        self.unit_roll(D_STALL, read_index, 0) < self.p_stall
    }
}

/// A stream wrapper injecting [`ChaosPlan`] protocol faults. Writes are
/// buffered until `flush` — the framing layer flushes exactly once per
/// frame, so each flush is one frame and gets one fault roll. Faulted
/// frames still go out (mangled); the *peer's* decoder is what the
/// fault exercises. Reads pass through except for injected stalls,
/// which surface as `TimedOut` errors without consuming bytes.
pub struct ChaosStream<S> {
    inner: S,
    plan: ChaosPlan,
    pending: Vec<u8>,
    frames_out: u64,
    reads_in: u64,
    /// Frames mangled so far (for test assertions).
    pub faults_injected: u64,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`, mangling traffic according to `plan`.
    pub fn new(inner: S, plan: ChaosPlan) -> Self {
        ChaosStream {
            inner,
            plan,
            pending: Vec::new(),
            frames_out: 0,
            reads_in: 0,
            faults_injected: 0,
        }
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: std::io::Write> std::io::Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.pending.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let mut frame = std::mem::take(&mut self.pending);
        let fault = self.plan.frame_fault(self.frames_out);
        self.frames_out += 1;
        match fault {
            Some(FrameFault::CorruptByte { roll }) if frame.len() > 4 => {
                // Flip a body byte (never the prefix: a corrupt prefix
                // is the oversize case below).
                let i = 4 + (roll as usize) % (frame.len() - 4);
                frame[i] ^= 0x40;
                self.faults_injected += 1;
            }
            Some(FrameFault::Truncate { roll }) if frame.len() > 5 => {
                let keep = 5 + (roll as usize) % (frame.len() - 5);
                frame.truncate(keep);
                self.faults_injected += 1;
            }
            Some(FrameFault::OversizePrefix) if frame.len() >= 4 => {
                frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
                self.faults_injected += 1;
            }
            _ => {}
        }
        self.inner.write_all(&frame)?;
        self.inner.flush()
    }
}

impl<S: std::io::Read> std::io::Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let idx = self.reads_in;
        self.reads_in += 1;
        if self.plan.read_stalls(idx) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "chaos: stalled read",
            ));
        }
        self.inner.read(buf)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::new(7).with_crashes(0.2).with_worker_panics(0.1);
        let b = ChaosPlan::new(7).with_crashes(0.2).with_worker_panics(0.1);
        let c = ChaosPlan::new(8).with_crashes(0.2).with_worker_panics(0.1);
        let seq = |p: &ChaosPlan| -> Vec<Option<CrashPoint>> {
            (0..200).map(|i| p.crash_at(i)).collect()
        };
        assert_eq!(seq(&a), seq(&b));
        assert_ne!(seq(&a), seq(&c));
        let panics =
            |p: &ChaosPlan| -> Vec<bool> { (0..100).map(|r| p.worker_panics(r, r % 7)).collect() };
        assert_eq!(panics(&a), panics(&b));
    }

    #[test]
    fn crash_points_cover_all_three_windows() {
        let plan = ChaosPlan::new(3).with_crashes(0.15);
        let mut seen = [false; 3];
        for i in 0..500 {
            match plan.crash_at(i) {
                Some(CrashPoint::PreAppend) => seen[0] = true,
                Some(CrashPoint::MidAppend) => seen[1] = true,
                Some(CrashPoint::PostAppendPreAck) => seen[2] = true,
                None => {}
            }
        }
        assert_eq!(seen, [true; 3], "500 rolls at 45% should hit every window");
    }

    #[test]
    fn torn_len_is_a_strict_prefix() {
        let plan = ChaosPlan::new(11).with_crashes(0.5);
        for i in 0..100 {
            let n = plan.torn_len(i, 64);
            assert!(
                (1..64).contains(&n),
                "torn write must be a strict prefix: {n}"
            );
        }
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = ChaosPlan::new(9);
        for i in 0..500 {
            assert!(plan.crash_at(i).is_none());
            assert!(plan.frame_fault(i).is_none());
            assert!(!plan.worker_panics(i, 0));
            assert!(!plan.read_stalls(i));
        }
    }
}

//! D7 fixture: lock-order discipline — a self re-acquire and a pair of
//! functions that nest the same two locks in opposite orders.

pub fn double_acquire(m: &std::sync::Mutex<u32>) {
    let first = m.plock();
    let second = m.plock();
    drop(second);
    drop(first);
}

pub fn shards_then_clusters(shards: &Shards, clusters: &Clusters) {
    let s = shards.pwrite();
    let c = clusters.pread();
    merge(s, c);
}

pub fn clusters_then_shards(shards: &Shards, clusters: &Clusters) {
    let c = clusters.pwrite();
    let s = shards.pread();
    merge(s, c);
}

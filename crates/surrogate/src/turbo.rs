//! TuRBO-style local trust-region surrogate.
//!
//! Instead of modeling the whole space with one global GP, maintain a
//! dense [`GaussianProcess`] over only the points inside an L∞ ball (the
//! *trust region*) around the incumbent, with deterministic expand/shrink
//! rules driven by success/failure counters: `succ_tol` consecutive
//! incumbent improvements double the radius, `fail_tol` consecutive
//! non-improvements halve it, both clamped to `[min_radius, max_radius]`.
//! The local model is capped at `max_local` points, so suggest latency and
//! observe cost are O(max_local²) regardless of how many observations the
//! campaign has accumulated — the TuRBO escape hatch from cubic global GPs
//! (and the local-modeling direction MCTuner's spatial decomposition points
//! at).
//!
//! Objectives follow the workspace-wide **minimization** convention: the
//! incumbent is the lowest observed value.
//!
//! Determinism: region membership, nearest-point truncation, and the
//! counter updates are all pure functions of the observation sequence, so
//! two replays of the same campaign build identical local models.

use crate::{check_training_set, GaussianProcess, Kernel, Prediction, Result, Surrogate};
use autotune_linalg::squared_distance;

/// Configuration for [`TrustRegionSurrogate`].
#[derive(Debug, Clone)]
pub struct TrustRegionConfig {
    /// Cap on local-model size; observe/suggest cost is O(max_local²).
    pub max_local: usize,
    /// Initial trust-region half-width (L∞, in encoded-space units where
    /// the unit cube spans [0, 1]).
    pub init_radius: f64,
    /// Radius floor — the region never collapses below this.
    pub min_radius: f64,
    /// Radius ceiling.
    pub max_radius: f64,
    /// Consecutive incumbent improvements before the radius doubles.
    pub succ_tol: u32,
    /// Consecutive non-improvements before the radius halves.
    pub fail_tol: u32,
    /// Observation-noise variance of the local GP.
    pub noise: f64,
}

impl Default for TrustRegionConfig {
    fn default() -> Self {
        TrustRegionConfig {
            max_local: 256,
            init_radius: 0.4,
            min_radius: 1.0 / 64.0,
            max_radius: 1.6,
            succ_tol: 3,
            fail_tol: 8,
            noise: 1e-6,
        }
    }
}

/// A surrogate that fits a dense GP over the trust region around the
/// incumbent, with TuRBO expand/shrink dynamics.
pub struct TrustRegionSurrogate {
    /// Kernel template; each local rebuild clones it fresh.
    kernel: Box<dyn Kernel>,
    config: TrustRegionConfig,
    xs: Vec<Vec<f64>>,
    y_raw: Vec<f64>,
    /// Running Σy over all observations (global-prior mean in O(1)).
    y_sum: f64,
    /// Running Σy² over all observations (global-prior std in O(1)).
    y_sq: f64,
    /// Incumbent (index into `xs`, objective value); minimization.
    best: Option<(usize, f64)>,
    radius: f64,
    succ: u32,
    fail: u32,
    local: GaussianProcess,
    /// In-region observations seen since the last rebuild that the local
    /// model (full at `max_local`) could not absorb; a rebuild refreshes
    /// the selection once enough pile up.
    pending: usize,
}

impl std::fmt::Debug for TrustRegionSurrogate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustRegionSurrogate")
            .field("n_train", &self.xs.len())
            .field("n_local", &self.local.n_train())
            .field("radius", &self.radius)
            .finish()
    }
}

impl TrustRegionSurrogate {
    /// Creates an unfitted trust-region surrogate.
    pub fn new(kernel: Box<dyn Kernel>, config: TrustRegionConfig) -> Self {
        assert!(config.max_local >= 2, "local model needs at least 2 points");
        assert!(
            config.min_radius > 0.0 && config.min_radius <= config.max_radius,
            "radius bounds must satisfy 0 < min <= max"
        );
        let local = GaussianProcess::new(kernel.clone_box(), config.noise);
        let radius = config
            .init_radius
            .clamp(config.min_radius, config.max_radius);
        TrustRegionSurrogate {
            kernel,
            config,
            xs: Vec::new(),
            y_raw: Vec::new(),
            y_sum: 0.0,
            y_sq: 0.0,
            best: None,
            radius,
            succ: 0,
            fail: 0,
            local,
            pending: 0,
        }
    }

    /// Current trust-region half-width.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of points in the current local model.
    pub fn n_local(&self) -> usize {
        self.local.n_train()
    }

    /// L∞ distance between two points.
    fn linf(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Rebuilds the local GP from the points inside the current region,
    /// truncating to the `max_local` nearest (Euclidean, ties toward the
    /// lower index). The new model is swapped in only if its fit succeeds,
    /// so a failed rebuild keeps the previous local model serving.
    fn rebuild_local(&mut self) -> Result<()> {
        let (best_idx, _) = match self.best {
            Some(b) => b,
            None => return Ok(()),
        };
        let center = self.xs[best_idx].clone();
        let mut in_region: Vec<usize> = (0..self.xs.len())
            .filter(|&i| Self::linf(&self.xs[i], &center) <= self.radius)
            .collect();
        if in_region.len() > self.config.max_local {
            in_region.sort_by(|&a, &b| {
                let da = squared_distance(&self.xs[a], &center);
                let db = squared_distance(&self.xs[b], &center);
                da.total_cmp(&db).then(a.cmp(&b))
            });
            in_region.truncate(self.config.max_local);
            // Chronological order inside the selection keeps rebuilds
            // reproducible independent of the distance sort above.
            in_region.sort_unstable();
        }
        let xs: Vec<Vec<f64>> = in_region.iter().map(|&i| self.xs[i].clone()).collect();
        let ys: Vec<f64> = in_region.iter().map(|&i| self.y_raw[i]).collect();
        let mut fresh = GaussianProcess::new(self.kernel.clone_box(), self.config.noise);
        fresh.fit(&xs, &ys)?;
        self.local = fresh;
        self.pending = 0;
        Ok(())
    }

    /// The global empirical prior: mean and variance of *every* observed
    /// objective value, in O(1) from the running moments. Degenerate
    /// spreads (n < 2, or all values equal) fall back to unit variance so
    /// acquisition functions still see some uncertainty.
    fn global_prior(&self) -> Prediction {
        let n = self.y_raw.len();
        if n < 2 {
            return Prediction {
                mean: self.y_raw.first().copied().unwrap_or(0.0),
                variance: 1.0,
            };
        }
        let mean = self.y_sum / n as f64;
        let var = ((self.y_sq - self.y_sum * mean) / (n - 1) as f64).max(0.0);
        Prediction {
            mean,
            variance: if var <= 1e-12 { 1.0 } else { var },
        }
    }
}

impl Surrogate for TrustRegionSurrogate {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        check_training_set(xs, ys)?;
        let mut best = (0usize, ys[0]);
        for (i, &y) in ys.iter().enumerate() {
            if y.total_cmp(&best.1) == std::cmp::Ordering::Less {
                best = (i, y);
            }
        }
        let saved_xs = std::mem::replace(&mut self.xs, xs.to_vec());
        let saved_ys = std::mem::replace(&mut self.y_raw, ys.to_vec());
        let saved_best = self.best.replace(best);
        let saved_radius = self.radius;
        self.radius = self
            .config
            .init_radius
            .clamp(self.config.min_radius, self.config.max_radius);
        if let Err(e) = self.rebuild_local() {
            self.xs = saved_xs;
            self.y_raw = saved_ys;
            self.best = saved_best;
            self.radius = saved_radius;
            return Err(e);
        }
        self.y_sum = self.y_raw.iter().sum();
        self.y_sq = self.y_raw.iter().map(|v| v * v).sum();
        self.succ = 0;
        self.fail = 0;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        // Outside the trust region the local posterior would revert to the
        // *local* prior — the mean of the elite in-region points — which is
        // wildly optimistic about unexplored space: every far-away
        // candidate would out-score the region the model actually knows.
        // Answer with the global empirical prior instead: "out there,
        // expect an average outcome with the global spread".
        if let Some((best_idx, _)) = self.best {
            if Self::linf(x, &self.xs[best_idx]) > self.radius {
                return self.global_prior();
            }
        }
        self.local.predict(x)
    }

    fn n_train(&self) -> usize {
        self.xs.len()
    }

    /// Absorbs one observation with TuRBO dynamics. Cost is bounded by the
    /// local model: O(max_local²) when the point lands in-region, O(d)
    /// otherwise, plus an O(max_local³) rebuild when the region moves or
    /// resizes. Never errors after input validation — counter updates and
    /// bookkeeping always succeed, and a failed local rebuild keeps the
    /// previous (still consistent) local model.
    fn observe(&mut self, x: &[f64], y: f64) -> Result<()> {
        if self.xs.is_empty() {
            return self.fit(&[x.to_vec()], &[y]);
        }
        if x.len() != self.xs[0].len() {
            return Err(crate::SurrogateError::DimensionMismatch {
                context: format!(
                    "observe: point has dimension {} (expected {})",
                    x.len(),
                    self.xs[0].len()
                ),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(crate::SurrogateError::DimensionMismatch {
                context: "observe: point contains non-finite values".into(),
            });
        }
        if !y.is_finite() {
            return Err(crate::SurrogateError::NonFiniteTarget);
        }
        self.xs.push(x.to_vec());
        self.y_raw.push(y);
        self.y_sum += y;
        self.y_sq += y * y;
        let idx = self.xs.len() - 1;
        let improved = match self.best {
            Some((_, bv)) => y.total_cmp(&bv) == std::cmp::Ordering::Less,
            None => true,
        };
        let mut region_changed = false;
        if improved {
            self.best = Some((idx, y));
            region_changed = true; // center moved to the new incumbent
            self.succ += 1;
            self.fail = 0;
            if self.succ >= self.config.succ_tol {
                self.succ = 0;
                let grown = (self.radius * 2.0).min(self.config.max_radius);
                region_changed |= grown != self.radius;
                self.radius = grown;
            }
        } else {
            self.succ = 0;
            self.fail += 1;
            if self.fail >= self.config.fail_tol {
                self.fail = 0;
                let shrunk = (self.radius * 0.5).max(self.config.min_radius);
                region_changed |= shrunk != self.radius;
                self.radius = shrunk;
            }
        }
        if region_changed {
            // Center and/or radius moved: the membership set changed, so
            // refresh the local model around the new region.
            let _ = self.rebuild_local();
            return Ok(());
        }
        let center_idx = self.best.map_or(0, |(i, _)| i);
        let in_region = Self::linf(x, &self.xs[center_idx]) <= self.radius;
        if in_region {
            if self.local.n_train() < self.config.max_local && self.local.observe(x, y).is_ok() {
                return Ok(());
            }
            // Local model full (or the incremental path refused the
            // point): defer to a batched refresh instead of refitting on
            // every observation.
            self.pending += 1;
            if self.pending >= self.config.max_local {
                let _ = self.rebuild_local();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matern52;

    fn tr(config: TrustRegionConfig) -> TrustRegionSurrogate {
        TrustRegionSurrogate::new(Box::new(Matern52::ard(vec![0.3, 0.3], 1.0)), config)
    }

    /// Deterministic low-discrepancy-ish point in the unit square.
    fn point(i: usize) -> Vec<f64> {
        vec![
            (i as f64 * 0.754877666).fract(),
            (i as f64 * 0.569840296).fract(),
        ]
    }

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum()
    }

    #[test]
    fn predicts_well_inside_the_region() {
        // Floor the radius at 0.2 so the query below stays in-region even
        // after the failure streaks of random sampling shrink the region.
        let mut s = tr(TrustRegionConfig {
            min_radius: 0.2,
            ..TrustRegionConfig::default()
        });
        for i in 0..80 {
            let x = point(i);
            let y = sphere(&x);
            s.observe(&x, y).unwrap();
        }
        let q = [0.35, 0.25];
        let p = s.predict(&q);
        assert!(
            (p.mean - sphere(&q)).abs() < 0.05,
            "mean {} vs truth {}",
            p.mean,
            sphere(&q)
        );
    }

    #[test]
    fn radius_expands_on_success_streak_and_shrinks_on_failures() {
        let config = TrustRegionConfig {
            succ_tol: 2,
            fail_tol: 3,
            init_radius: 0.4,
            ..TrustRegionConfig::default()
        };
        let mut s = tr(config);
        s.fit(&[vec![0.5, 0.5]], &[10.0]).unwrap();
        assert!((s.radius() - 0.4).abs() < 1e-12);
        // Two consecutive improvements double the radius.
        s.observe(&[0.45, 0.5], 9.0).unwrap();
        s.observe(&[0.4, 0.5], 8.0).unwrap();
        assert!((s.radius() - 0.8).abs() < 1e-12, "radius {}", s.radius());
        // Three consecutive non-improvements halve it again.
        for i in 0..3 {
            s.observe(&[0.6 + 0.01 * i as f64, 0.5], 20.0).unwrap();
        }
        assert!((s.radius() - 0.4).abs() < 1e-12, "radius {}", s.radius());
    }

    #[test]
    fn radius_respects_bounds() {
        let config = TrustRegionConfig {
            succ_tol: 1,
            fail_tol: 1,
            init_radius: 0.4,
            min_radius: 0.1,
            max_radius: 0.8,
            ..TrustRegionConfig::default()
        };
        let mut s = tr(config);
        s.fit(&[vec![0.5, 0.5]], &[10.0]).unwrap();
        for i in 0..5 {
            s.observe(&[0.5, 0.49 - 0.01 * i as f64], 9.0 - i as f64)
                .unwrap();
        }
        assert!(s.radius() <= 0.8 + 1e-12);
        for i in 0..8 {
            s.observe(&[0.52 + 0.001 * i as f64, 0.5], 100.0).unwrap();
        }
        assert!(s.radius() >= 0.1 - 1e-12);
    }

    #[test]
    fn local_model_stays_capped() {
        let config = TrustRegionConfig {
            max_local: 16,
            ..TrustRegionConfig::default()
        };
        let mut s = tr(config);
        for i in 0..200 {
            let x = point(i);
            s.observe(&x, sphere(&x)).unwrap();
        }
        assert_eq!(s.n_train(), 200);
        assert!(
            s.n_local() <= 16,
            "local model has {} points (cap 16)",
            s.n_local()
        );
    }

    #[test]
    fn incumbent_move_recenters_the_region() {
        let config = TrustRegionConfig {
            init_radius: 0.1,
            max_local: 8,
            ..TrustRegionConfig::default()
        };
        let mut s = tr(config);
        // Cluster around (0.8, 0.8), then a much better point far away.
        for i in 0..10 {
            let x = vec![0.8 + 0.005 * i as f64, 0.8];
            s.observe(&x, 5.0 + 0.01 * i as f64).unwrap();
        }
        s.observe(&[0.1, 0.1], 1.0).unwrap();
        // The local model now centers on (0.1, 0.1); the old cluster is
        // outside the 0.1-radius region, so the local set collapses to the
        // new incumbent.
        assert_eq!(s.n_local(), 1);
        let p = s.predict(&[0.1, 0.1]);
        assert!((p.mean - 1.0).abs() < 0.2, "mean {}", p.mean);
    }

    #[test]
    fn out_of_region_queries_get_the_global_prior_not_local_optimism() {
        let config = TrustRegionConfig {
            init_radius: 0.1,
            ..TrustRegionConfig::default()
        };
        let mut s = tr(config);
        // Elite cluster near (0.1, 0.1) with low objective values...
        for i in 0..10 {
            s.observe(&[0.1 + 0.005 * i as f64, 0.1], 1.0 + 0.01 * i as f64)
                .unwrap();
        }
        // ...and far-away points the campaign has learned are bad.
        for i in 0..10 {
            s.observe(&[0.9 - 0.005 * i as f64, 0.9], 100.0).unwrap();
        }
        // An unexplored far query must answer with the global average
        // (~50), not the elite local prior (~1) that would make every
        // far candidate out-score the known-good region.
        let far = s.predict(&[0.5, 0.9]);
        assert!(
            far.mean > 20.0,
            "far mean {} should reflect the global average",
            far.mean
        );
        assert!(far.variance > 0.0);
        // In-region queries still use the local posterior.
        let near = s.predict(&[0.1, 0.1]);
        assert!(near.mean < 5.0, "near mean {}", near.mean);
    }

    #[test]
    fn observe_rejects_bad_input_without_mutating() {
        let mut s = tr(TrustRegionConfig::default());
        for i in 0..10 {
            let x = point(i);
            s.observe(&x, sphere(&x)).unwrap();
        }
        let before = s.predict(&[0.3, 0.3]);
        assert!(s.observe(&[0.1], 1.0).is_err());
        assert!(s.observe(&[0.2, 0.2], f64::NAN).is_err());
        assert!(s.observe(&[f64::INFINITY, 0.2], 1.0).is_err());
        assert_eq!(s.n_train(), 10);
        assert_eq!(s.predict(&[0.3, 0.3]), before);
    }

    #[test]
    fn fit_replaces_previous_state() {
        let mut s = tr(TrustRegionConfig::default());
        for i in 0..20 {
            let x = point(i);
            s.observe(&x, sphere(&x)).unwrap();
        }
        let xs: Vec<Vec<f64>> = (0..5).map(point).collect();
        let ys: Vec<f64> = xs.iter().map(|x| sphere(x)).collect();
        s.fit(&xs, &ys).unwrap();
        assert_eq!(s.n_train(), 5);
        assert!(s.n_local() <= 5);
    }
}

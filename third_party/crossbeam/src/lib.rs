//! Offline stub of `crossbeam` (see `third_party/README.md`): only
//! `thread::scope`, delegating to `std::thread::scope` (Rust ≥ 1.63).

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention
    //! (`scope` returns a `Result`, spawn closures receive `&Scope`).

    use std::marker::PhantomData;

    /// Handle passed to `scope`'s closure; spawns scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to this block. The closure receives the
        /// scope handle again (crossbeam convention) so it can spawn too.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
                _marker: PhantomData,
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before this returns. Unjoined panicking
    /// children surface as `Err` like crossbeam (std would propagate the
    /// panic, which is close enough for this workspace's `.expect` use).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

//! Property-based tests for the blocked linalg kernels: across arbitrary
//! shapes and block sizes (including blocks larger than the matrix and
//! non-multiple-of-block dims), the cache-blocked paths must agree with
//! the naive references, non-finite inputs must propagate instead of
//! vanishing, and the incremental factor updates must stay atomic on
//! failure.

use autotune_linalg::{Cholesky, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// A well-conditioned random SPD matrix: G·Gᵀ + n·I.
fn rand_spd(rng: &mut StdRng, n: usize) -> Matrix {
    let g = rand_matrix(rng, n, n);
    let mut a = g.syrk_blocked(16);
    a.add_diag(n as f64);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled matmul visits k in the same ascending order as the naive
    /// loop, so on finite inputs the result is bitwise identical for
    /// every block size — including blocks of 1 and blocks larger than
    /// any dimension.
    #[test]
    fn blocked_matmul_is_bitwise_equal_to_naive(
        seed in 0u64..1000,
        m in 1usize..28,
        k in 1usize..28,
        n in 1usize..28,
        block in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, m, k);
        let b = rand_matrix(&mut rng, k, n);
        let naive = a.matmul(&b).expect("shapes agree");
        let blocked = a.matmul_blocked(&b, block).expect("shapes agree");
        prop_assert_eq!(naive.as_slice(), blocked.as_slice());
    }

    /// Blocked syrk computes X·Xᵀ like matmul-with-transpose does (up to
    /// float association inside a tile).
    #[test]
    fn blocked_syrk_matches_matmul_with_transpose(
        seed in 0u64..1000,
        n in 1usize..24,
        d in 1usize..24,
        block in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = rand_matrix(&mut rng, n, d);
        let reference = x.matmul(&x.transpose()).expect("shapes agree");
        let syrk = x.syrk_blocked(block);
        prop_assert!(
            syrk.approx_eq(&reference, 1e-10 * d as f64),
            "syrk diverges from X·Xᵀ at n={} d={} block={}", n, d, block
        );
    }

    /// Blocked Cholesky factors random SPD matrices to the same factor as
    /// the naive right-looking loop, for every block size.
    #[test]
    fn blocked_cholesky_matches_naive_on_random_spd(
        seed in 0u64..1000,
        n in 1usize..40,
        block in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_spd(&mut rng, n);
        let naive = Cholesky::new(&a).expect("SPD by construction");
        let blocked = Cholesky::new_blocked(&a, block).expect("SPD by construction");
        prop_assert!(
            blocked.l().approx_eq(naive.l(), 1e-9 * n as f64),
            "blocked factor diverges at n={} block={}", n, block
        );
        let back = blocked
            .l()
            .matmul(&blocked.l().transpose())
            .expect("square factor");
        prop_assert!(back.approx_eq(&a, 1e-8 * n as f64), "L·Lᵀ does not reconstruct A");
    }

    /// A non-finite entry anywhere in the right operand must poison its
    /// whole output column — on the naive path (whose zero-skip fast path
    /// once swallowed it) and identically on the blocked path.
    #[test]
    fn matmul_propagates_non_finite_operands(
        seed in 0u64..1000,
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        block in 1usize..20,
    ) {
        let use_inf = seed % 2 == 0;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(&mut rng, m, k);
        let mut b = rand_matrix(&mut rng, k, n);
        let k0 = rng.gen_range(0..k);
        let j0 = rng.gen_range(0..n);
        b[(k0, j0)] = if use_inf { f64::INFINITY } else { f64::NAN };
        let naive = a.matmul(&b).expect("shapes agree");
        let blocked = a.matmul_blocked(&b, block).expect("shapes agree");
        for i in 0..m {
            prop_assert!(
                !naive[(i, j0)].is_finite(),
                "naive matmul swallowed a non-finite operand at ({}, {})", i, j0
            );
            prop_assert_eq!(
                naive[(i, j0)].to_bits(),
                blocked[(i, j0)].to_bits(),
                "blocked path disagrees with naive on the poisoned column"
            );
        }
    }

    /// At large n, a refused `extend` (indefinite growth, non-finite
    /// column, wrong length) must leave the factor byte-identical, and the
    /// factor must still accept a valid extension afterwards.
    #[test]
    fn extend_is_atomic_on_failure_at_large_n(seed in 0u64..200) {
        let n = 300;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_spd(&mut rng, n);
        let mut chol = Cholesky::new_blocked(&a, 64).expect("SPD by construction");
        let before: Vec<u64> = chol.l().as_slice().iter().map(|v| v.to_bits()).collect();

        let k0 = rng.gen_range(0..n);
        let col: Vec<f64> = (0..n).map(|i| a[(i, k0)]).collect();
        // A duplicate of column k0 with a lowered diagonal makes the
        // Schur complement ≈ -1: robustly indefinite.
        prop_assert!(chol.extend(&col, a[(k0, k0)] - 1.0).is_err());
        let mut nan_col = col.clone();
        nan_col[0] = f64::NAN;
        prop_assert!(chol.extend(&nan_col, a[(k0, k0)] + 2.0).is_err());
        prop_assert!(chol.extend(&col[..n - 1], a[(k0, k0)] + 2.0).is_err());

        let after: Vec<u64> = chol.l().as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&before, &after, "failed extend mutated the factor");

        // The duplicate direction with enough added diagonal is SPD again.
        chol.extend(&col, a[(k0, k0)] + 2.0).expect("valid extension");
        prop_assert_eq!(chol.l().rows(), n + 1);
    }

    /// `rank_one_update` (A → A + v·vᵀ) matches factoring the updated
    /// matrix from scratch.
    #[test]
    fn rank_one_update_matches_fresh_factorization(
        seed in 0u64..1000,
        n in 1usize..24,
        block in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_spd(&mut rng, n);
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut chol = Cholesky::new_blocked(&a, block).expect("SPD by construction");
        chol.rank_one_update(&v).expect("SPD + v·vᵀ stays SPD");
        let updated = a.add(&Matrix::from_fn(n, n, |i, j| v[i] * v[j])).expect("same shape");
        let fresh = Cholesky::new(&updated).expect("still SPD");
        prop_assert!(
            chol.l().approx_eq(fresh.l(), 1e-8 * n as f64),
            "rank-1 updated factor diverges from scratch refactorization at n={}", n
        );
    }
}

//! Gaussian-process regression (tutorial slides 35-44).
//!
//! The GP models the unknown target as `f ~ GP(m, K)`; conditioning on the
//! observed trials gives a closed-form posterior (slide 41):
//!
//! ```text
//! mean(x)  = k(x, X) (K + σ²I)⁻¹ y
//! var(x)   = k(x, x) - k(x, X) (K + σ²I)⁻¹ k(X, x)
//! ```
//!
//! Targets are standardized internally (zero mean, unit variance) so kernel
//! signal scales stay O(1) regardless of whether the metric is nanoseconds
//! or transactions per minute.

use crate::{check_training_set, Kernel, Prediction, Result, Surrogate, SurrogateError};
use autotune_linalg::{Cholesky, Matrix};
use rand::Rng;

/// Configuration for marginal-likelihood hyperparameter fitting.
#[derive(Debug, Clone)]
pub struct HyperFitConfig {
    /// Number of random restarts sampled from the search ranges.
    pub n_candidates: usize,
    /// Log-space search half-width around the current parameter values.
    pub log_range: f64,
    /// Also fit the observation-noise variance.
    pub fit_noise: bool,
    /// Noise search bounds (variance), log-uniform.
    pub noise_bounds: (f64, f64),
}

impl Default for HyperFitConfig {
    fn default() -> Self {
        HyperFitConfig {
            n_candidates: 50,
            log_range: 3.0,
            fit_noise: true,
            noise_bounds: (1e-8, 1e-1),
        }
    }
}

/// A Gaussian-process regressor with a pluggable kernel.
pub struct GaussianProcess {
    kernel: Box<dyn Kernel>,
    /// Observation-noise *variance* added to the kernel diagonal.
    noise: f64,
    x_train: Vec<Vec<f64>>,
    /// Standardized targets.
    y_std: Vec<f64>,
    /// Standardization parameters (mean, std) of the raw targets.
    y_shift: (f64, f64),
    chol: Option<Cholesky>,
    /// `(K + σ²I)⁻¹ y`, precomputed at fit time.
    alpha: Vec<f64>,
}

impl std::fmt::Debug for GaussianProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaussianProcess")
            .field("kernel", &self.kernel)
            .field("noise", &self.noise)
            .field("n_train", &self.x_train.len())
            .finish()
    }
}

impl GaussianProcess {
    /// Creates an unfitted GP with the given kernel and observation-noise
    /// variance.
    pub fn new(kernel: Box<dyn Kernel>, noise: f64) -> Self {
        assert!(noise >= 0.0, "noise variance must be non-negative");
        GaussianProcess {
            kernel,
            noise,
            x_train: Vec::new(),
            y_std: Vec::new(),
            y_shift: (0.0, 1.0),
            chol: None,
            alpha: Vec::new(),
        }
    }

    /// The kernel currently in use.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Observation-noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Builds the (noise-augmented) kernel matrix over the training set.
    fn kernel_matrix(&self) -> Matrix {
        let n = self.x_train.len();
        let mut k = Matrix::from_fn(n, n, |i, j| {
            if j < i {
                0.0 // filled by symmetry below
            } else {
                self.kernel.eval(&self.x_train[i], &self.x_train[j])
            }
        });
        for i in 0..n {
            for j in 0..i {
                k[(i, j)] = k[(j, i)];
            }
        }
        k.add_diag(self.noise.max(1e-12));
        k
    }

    /// Re-runs the factorization against the stored training data.
    fn refit(&mut self) -> Result<()> {
        let k = self.kernel_matrix();
        let chol = Cholesky::new(&k).map_err(|_| SurrogateError::NumericalFailure)?;
        self.alpha = chol.solve_vec(&self.y_std);
        self.chol = Some(chol);
        Ok(())
    }

    /// Log marginal likelihood of the current fit (standardized targets).
    ///
    /// `log p(y|X) = -½ yᵀα - ½ log|K| - n/2 log 2π` (slide 39: the
    /// closed-form payoff of choosing Gaussians).
    pub fn log_marginal_likelihood(&self) -> f64 {
        let Some(chol) = &self.chol else {
            return f64::NEG_INFINITY;
        };
        let n = self.y_std.len() as f64;
        let data_fit: f64 = autotune_linalg::dot(&self.y_std, &self.alpha);
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Maximizes the log marginal likelihood over kernel hyperparameters
    /// (and optionally the noise) by random multi-start search around the
    /// current values. Returns the best LML found.
    ///
    /// Random search is deliberate: it is derivative-free, trivially
    /// correct for composite kernels, and at the trial counts autotuning
    /// sees (n ≤ a few hundred) each LML evaluation is a sub-millisecond
    /// Cholesky — robustness beats gradient bookkeeping.
    pub fn fit_hyperparameters(
        &mut self,
        config: &HyperFitConfig,
        rng: &mut impl Rng,
    ) -> Result<f64> {
        if self.x_train.is_empty() {
            return Err(SurrogateError::EmptyTrainingSet);
        }
        let base = self.kernel.params();
        let base_noise = self.noise;
        let mut best_params = base.clone();
        let mut best_noise = base_noise;
        let mut best_lml = self.log_marginal_likelihood();
        for i in 0..config.n_candidates {
            // Half the candidates perturb the current values; the other
            // half search around unit scales (log-param 0), which rescues
            // the fit from a hopeless initialization.
            let center: &[f64] = if i % 2 == 0 { &base } else { &[] };
            let cand: Vec<f64> = (0..base.len())
                .map(|j| {
                    let c = center.get(j).copied().unwrap_or(0.0);
                    c + rng.gen_range(-config.log_range..config.log_range)
                })
                .collect();
            self.kernel.set_params(&cand);
            if config.fit_noise {
                let (lo, hi) = config.noise_bounds;
                let u: f64 = rng.gen();
                self.noise = (lo.ln() + u * (hi.ln() - lo.ln())).exp();
            }
            if self.refit().is_err() {
                continue;
            }
            let lml = self.log_marginal_likelihood();
            if lml > best_lml {
                best_lml = lml;
                best_params = cand;
                best_noise = self.noise;
            }
        }
        self.kernel.set_params(&best_params);
        self.noise = best_noise;
        self.refit()?;
        Ok(best_lml)
    }

    /// Posterior covariance between two query points.
    fn posterior_cov(&self, a: &[f64], b: &[f64], ka: &[f64], kb: &[f64]) -> f64 {
        let chol = self.chol.as_ref().expect("called only after fit");
        // cov(a,b) = k(a,b) - k(a,X) K⁻¹ k(X,b), computed via the factor:
        // v_a = L⁻¹ k(X,a), v_b = L⁻¹ k(X,b), cov = k(a,b) - v_a·v_b.
        let va = chol.solve_lower(ka);
        let vb = chol.solve_lower(kb);
        self.kernel.eval(a, b) - autotune_linalg::dot(&va, &vb)
    }

    /// Cross-covariance vector `k(X, x)`.
    fn k_vec(&self, x: &[f64]) -> Vec<f64> {
        self.x_train
            .iter()
            .map(|xi| self.kernel.eval(xi, x))
            .collect()
    }

    /// Draws one sample path of the posterior evaluated at `points`
    /// (or the prior, when the GP is unfitted). This powers the tutorial's
    /// "distribution over functions" figures (slides 35-36).
    pub fn sample_function(&self, points: &[Vec<f64>], rng: &mut impl Rng) -> Vec<f64> {
        let m = points.len();
        if m == 0 {
            return Vec::new();
        }
        // Mean vector and covariance matrix at the query points.
        let (mean, mut cov) = if self.chol.is_some() {
            let kvecs: Vec<Vec<f64>> = points.iter().map(|p| self.k_vec(p)).collect();
            let mean: Vec<f64> = points
                .iter()
                .zip(&kvecs)
                .map(|(_, kv)| autotune_linalg::dot(kv, &self.alpha))
                .collect();
            let cov = Matrix::from_fn(m, m, |i, j| {
                self.posterior_cov(&points[i], &points[j], &kvecs[i], &kvecs[j])
            });
            (mean, cov)
        } else {
            let mean = vec![0.0; m];
            let cov = Matrix::from_fn(m, m, |i, j| self.kernel.eval(&points[i], &points[j]));
            (mean, cov)
        };
        // Symmetrize against round-off before factorizing.
        for i in 0..m {
            for j in 0..i {
                let avg = 0.5 * (cov[(i, j)] + cov[(j, i)]);
                cov[(i, j)] = avg;
                cov[(j, i)] = avg;
            }
        }
        cov.add_diag(1e-9);
        let chol = Cholesky::new(&cov).expect("posterior covariance is PSD with jitter");
        let z: Vec<f64> = (0..m)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let lz = chol
            .l()
            .matvec(&z)
            .expect("dimensions match by construction");
        let (ym, ys) = self.y_shift;
        mean.iter()
            .zip(&lz)
            .map(|(&mu, &dz)| ym + ys * (mu + dz))
            .collect()
    }

    /// Predictive distribution at `x` in the *standardized* target space.
    fn predict_std(&self, x: &[f64]) -> Prediction {
        let Some(chol) = &self.chol else {
            return Prediction {
                mean: 0.0,
                variance: self.kernel.diag(x),
            };
        };
        let k = self.k_vec(x);
        let mean = autotune_linalg::dot(&k, &self.alpha);
        let v = chol.solve_lower(&k);
        let variance = (self.kernel.diag(x) - autotune_linalg::dot(&v, &v)).max(0.0);
        Prediction { mean, variance }
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        check_training_set(xs, ys)?;
        let mean = autotune_linalg::stats::mean(ys);
        let std = autotune_linalg::stats::std_dev(ys);
        let std = if std > 1e-12 { std } else { 1.0 };
        self.y_shift = (mean, std);
        self.y_std = ys.iter().map(|&y| (y - mean) / std).collect();
        self.x_train = xs.to_vec();
        self.refit()
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        let p = self.predict_std(x);
        let (ym, ys) = self.y_shift;
        Prediction {
            mean: ym + ys * p.mean,
            variance: ys * ys * p.variance,
        }
    }

    fn n_train(&self) -> usize {
        self.x_train.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matern52, Rbf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin() + 2.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points_with_tiny_noise() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-8);
        gp.fit(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 1e-3, "mean {} vs target {y}", p.mean);
            assert!(p.variance < 1e-4, "variance {} not collapsed", p.variance);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.2, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let at_data = gp.predict(&xs[4]).variance;
        let far = gp.predict(&[3.0]).variance;
        assert!(
            far > 100.0 * at_data.max(1e-12),
            "far {far} vs at-data {at_data}"
        );
    }

    #[test]
    fn prediction_reasonable_between_points() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.3, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let x = 0.5f64;
        let truth = (4.0 * x).sin() + 2.0;
        let p = gp.predict(&[x]);
        assert!(
            (p.mean - truth).abs() < 0.1,
            "mean {} vs truth {truth}",
            p.mean
        );
    }

    #[test]
    fn unfitted_gp_returns_prior() {
        let gp = GaussianProcess::new(Box::new(Rbf::isotropic(1.0, 2.0)), 0.0);
        let p = gp.predict(&[0.3]);
        assert_eq!(p.mean, 0.0);
        assert!((p.variance - 4.0).abs() < 1e-12);
        assert_eq!(gp.n_train(), 0);
    }

    #[test]
    fn standardization_handles_large_offsets() {
        // Latencies around 1e6 ns: without standardization an O(1) signal
        // prior would be hopeless.
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0e6 + 1.0e4 * x[0]).collect();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.5, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.005e6).abs() < 2e3, "mean {}", p.mean);
    }

    #[test]
    fn hyperparameter_fit_improves_lml() {
        let (xs, ys) = toy_data();
        // Deliberately bad starting lengthscale.
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(50.0, 0.1)), 1e-4);
        gp.fit(&xs, &ys).unwrap();
        let before = gp.log_marginal_likelihood();
        let mut rng = StdRng::seed_from_u64(42);
        let after = gp
            .fit_hyperparameters(&HyperFitConfig::default(), &mut rng)
            .unwrap();
        assert!(after > before, "LML {after} should beat initial {before}");
        // And the fit should now interpolate decently.
        let p = gp.predict(&[0.5]);
        assert!((p.mean - ((2.0f64).sin() + 2.0)).abs() < 0.3);
    }

    #[test]
    fn posterior_samples_pass_near_observations() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-8);
        gp.fit(&xs, &ys).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let sample = gp.sample_function(&xs, &mut rng);
        for (s, &y) in sample.iter().zip(&ys) {
            assert!(
                (s - y).abs() < 0.05,
                "sample {s} strays from observation {y}"
            );
        }
    }

    #[test]
    fn prior_samples_have_prior_scale() {
        let gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.5, 1.0)), 0.0);
        let points: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        let mut rng = StdRng::seed_from_u64(5);
        // Pool many prior draws: empirical std should be near 1.
        let mut all = Vec::new();
        for _ in 0..20 {
            all.extend(gp.sample_function(&points, &mut rng));
        }
        let sd = autotune_linalg::stats::std_dev(&all);
        assert!((sd - 1.0).abs() < 0.3, "prior sample std {sd}");
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(1.0, 1.0)), 1e-6);
        assert_eq!(
            gp.fit(&[], &[]).unwrap_err(),
            SurrogateError::EmptyTrainingSet
        );
        assert!(gp.fit(&[vec![0.0], vec![0.0, 1.0]], &[1.0, 2.0]).is_err());
        assert_eq!(
            gp.fit(&[vec![0.0]], &[f64::NAN]).unwrap_err(),
            SurrogateError::NonFiniteTarget
        );
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![1.0, 1.1, 0.9];
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(1.0, 1.0)), 0.0);
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.0).abs() < 0.1);
    }
}

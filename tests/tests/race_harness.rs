//! Deterministic interleaving race harness.
//!
//! The static side of PR 10 (lint rules D7–D12) argues about locks and
//! atomics on paper; this harness *executes* the invariants those rules
//! protect. A schedule-controlled turn gate drives [`ShardedCache`] and
//! [`TenantRouter`] through seeded adversarial interleavings:
//!
//! * every schedule must be equivalent to some serial order
//!   (linearizability against a serial replay of the realized order);
//! * a fixed logical op sequence must produce **byte-identical cache
//!   snapshots and hit/miss sequences** no matter which thread executes
//!   each op, for every seed and thread count — the determinism contract
//!   the eviction/LRU atomics audit (satellite of ISSUE 10) exists to
//!   keep;
//! * the router's per-family single-flight admission must admit exactly
//!   one campaign per family under every merge order of tenant streams;
//! * an ungated stress test checks the read path never serves torn
//!   values under real concurrency.
//!
//! Seed count comes from `RACE_SEEDS` (default 8 for the inner loop;
//! CI's `race` job runs 64 in release mode).

use autotune::sync::{pwait, PoisonFreeMutex};
use autotune_cache::{CacheConfig, CacheLookup, ShardedCache};
use autotune_serve::{
    CampaignSpec, RouterConfig, RouterLookup, SystemKind, TenantRouter, WalConfig,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

// ---------------------------------------------------------------------
// Seeded scheduling primitives (same splitmix discipline as the sim
// crate's fault plans and the serve crate's chaos streams).
// ---------------------------------------------------------------------

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Schedule seeds for this run: `RACE_SEEDS` many (default 8).
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("RACE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    (1..=n).collect()
}

/// In-place Fisher–Yates driven by a splitmix stream.
fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut s = seed;
    for i in (1..v.len()).rev() {
        s = splitmix(s);
        let j = (s % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Turn gate: a precomputed schedule of thread ids, enforced with a
/// mutex + condvar so exactly the scheduled thread runs each turn. The
/// harness dogfoods the `PoisonFree` acquisitions the lint mandates.
struct Interleaver {
    schedule: Vec<usize>,
    cursor: Mutex<usize>,
    turn: Condvar,
}

impl Interleaver {
    /// Builds a seeded schedule interleaving `counts[t]` turns for each
    /// thread `t` (a shuffled multiset, so per-thread program order is
    /// preserved but every merge order is reachable across seeds).
    fn new(seed: u64, counts: &[usize]) -> Self {
        let mut schedule = Vec::new();
        for (t, &n) in counts.iter().enumerate() {
            schedule.extend(std::iter::repeat_n(t, n));
        }
        shuffle(&mut schedule, seed);
        Interleaver {
            schedule,
            cursor: Mutex::new(0),
            turn: Condvar::new(),
        }
    }
}

// ---------------------------------------------------------------------
// Cache op streams.
// ---------------------------------------------------------------------

const FAMILIES: usize = 6;

/// Small shards + short hot window so eviction and LRU protection are
/// exercised, not just the happy path.
fn tight_cache() -> CacheConfig {
    CacheConfig {
        threshold: 1.0,
        n_shards: 2,
        capacity_per_shard: 4,
        hot_window: 8,
    }
}

/// Tenant fingerprint `j` of family `fam`: centroids sit 10 apart, the
/// jitter stays well inside the clustering threshold.
fn feat(fam: usize, j: u64) -> [f64; 2] {
    [10.0 * fam as f64 + (j % 5) as f64 * 0.1, 0.0]
}

/// Spawns the fixed family set so the concurrent phase never mutates the
/// clustering model (lookups classify, only `admit_family` assigns).
fn seed_families(cache: &ShardedCache) {
    for fam in 0..FAMILIES {
        let a = cache.admit_family(&feat(fam, 0));
        assert_eq!(a.family, fam, "setup must spawn families in order");
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup { fam: usize, j: u64 },
    Insert { fam: usize, j: u64, cost: f64 },
}

/// A deterministic mixed op stream. Costs encode `(family, slot)` so the
/// torn-read check can validate any served value against its family.
fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    (0..n as u64)
        .map(|i| {
            let h = splitmix(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let fam = (h % FAMILIES as u64) as usize;
            let j = (h >> 8) % 5;
            if (h >> 16).is_multiple_of(3) {
                let cost = (fam * 1000) as f64 + j as f64 + ((h >> 24) % 7) as f64 * 0.125;
                Op::Insert { fam, j, cost }
            } else {
                Op::Lookup { fam, j }
            }
        })
        .collect()
}

/// Executes one op, returning a canonical outcome string (the hit/miss
/// sequence the acceptance criteria compare byte-for-byte).
fn apply(cache: &ShardedCache, op: &Op) -> String {
    match op {
        Op::Lookup { fam, j } => match cache.lookup(&feat(*fam, *j)) {
            CacheLookup::Hit(h) => format!(
                "H f={} k={:016x} c={:016x} b={}",
                h.family,
                h.key,
                h.cost.to_bits(),
                h.borrowed
            ),
            CacheLookup::Miss { family } => format!("M f={family:?}"),
        },
        Op::Insert { fam, j, cost } => {
            let f = feat(*fam, *j);
            let mut config = autotune_space::Config::new();
            config.set("slot", *j as f64);
            cache.insert(*fam, &f, config, *cost);
            "I".into()
        }
    }
}

fn snapshot_bytes(cache: &ShardedCache) -> String {
    serde_json::to_string(&cache.snapshot()).expect("snapshot serializes")
}

// ---------------------------------------------------------------------
// Test 1 — the acceptance criterion: a fixed logical op sequence yields
// byte-identical snapshots and hit/miss sequences across every seed and
// thread count. The seed controls which *thread* executes each op (the
// adversarial part: every lock handoff pattern between shard readers
// and writers is reachable), so any dependence of eviction/LRU state on
// scheduling — exactly what the D9 atomics audit guards — breaks the
// byte equality. Also the satellite regression test that eviction
// decisions are identical across thread counts.
// ---------------------------------------------------------------------

/// Runs `ops` in fixed global order, op `i` executed by thread
/// `assign[i]`, and returns (outcome sequence, final snapshot bytes).
fn run_assigned(ops: &[Op], assign: &[usize], threads: usize) -> (Vec<String>, String) {
    let cache = ShardedCache::new(tight_cache());
    seed_families(&cache);
    let cursor = Mutex::new(0usize);
    let turn = Condvar::new();
    let results: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let mine: Vec<usize> = (0..ops.len()).filter(|&i| assign[i] == t).collect();
            let (cache, cursor, turn, results) = (&cache, &cursor, &turn, &results);
            s.spawn(move || {
                for &i in &mine {
                    let mut cur = cursor.plock();
                    while *cur != i {
                        cur = pwait(turn, cur);
                    }
                    let out = apply(cache, &ops[i]);
                    results.plock().push((i, out));
                    *cur += 1;
                    turn.notify_all();
                }
            });
        }
    });
    let mut seq = std::mem::take(&mut *results.plock());
    seq.sort_by_key(|&(i, _)| i);
    (
        seq.into_iter().map(|(_, s)| s).collect(),
        snapshot_bytes(&cache),
    )
}

#[test]
fn snapshots_and_outcomes_identical_across_schedules_and_thread_counts() {
    let ops = gen_ops(0xCAFE, 160);
    let baseline = run_assigned(&ops, &vec![0; ops.len()], 1);
    // The fixed stream must actually exercise eviction, or the test says
    // nothing about the LRU/heat machinery.
    {
        let cache = ShardedCache::new(tight_cache());
        seed_families(&cache);
        for op in &ops {
            apply(&cache, op);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "op stream never evicted");
        assert!(stats.hits > 0 && stats.misses > 0, "op stream too tame");
    }
    for seed in seeds() {
        for threads in [2usize, 4] {
            let assign: Vec<usize> = (0..ops.len() as u64)
                .map(|i| (splitmix(seed ^ i) % threads as u64) as usize)
                .collect();
            let (outcomes, snap) = run_assigned(&ops, &assign, threads);
            assert_eq!(
                outcomes, baseline.0,
                "hit/miss sequence diverged (seed={seed}, threads={threads})"
            );
            assert_eq!(
                snap, baseline.1,
                "cache snapshot diverged (seed={seed}, threads={threads})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Test 2 — linearizability: two threads run *different* op programs
// under a seeded interleaver; the realized global order must be
// reproducible by a serial replay of that order, byte-for-byte. Each
// seed realizes a different interleaving, so outcomes differ across
// seeds — but never from their own serial witness.
// ---------------------------------------------------------------------

#[test]
fn every_interleaving_matches_its_serial_replay() {
    for seed in seeds() {
        let programs = [gen_ops(seed ^ 0xA, 60), gen_ops(seed ^ 0xB, 60)];
        let gate = Interleaver::new(seed, &[programs[0].len(), programs[1].len()]);
        let cache = ShardedCache::new(tight_cache());
        seed_families(&cache);
        // (turn index, outcome) per thread; merged afterwards into the
        // realized global history.
        let histories: Mutex<Vec<(usize, usize, usize, String)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for (tid, prog) in programs.iter().enumerate() {
                let (gate, cache, histories) = (&gate, &cache, &histories);
                s.spawn(move || {
                    for (pi, op) in prog.iter().enumerate() {
                        let mut cur = gate.cursor.plock();
                        while gate.schedule[*cur] != tid {
                            cur = pwait(&gate.turn, cur);
                        }
                        let turn = *cur;
                        let out = apply(cache, op);
                        histories.plock().push((turn, tid, pi, out));
                        *cur += 1;
                        gate.turn.notify_all();
                    }
                });
            }
        });
        let mut history = std::mem::take(&mut *histories.plock());
        history.sort_by_key(|&(turn, ..)| turn);
        // Serial witness: replay the realized order on a fresh cache.
        let witness = ShardedCache::new(tight_cache());
        seed_families(&witness);
        for &(_, tid, pi, ref out) in &history {
            let replayed = apply(&witness, &programs[tid][pi]);
            assert_eq!(
                &replayed, out,
                "outcome diverged from serial replay (seed={seed}, tid={tid}, op={pi})"
            );
        }
        assert_eq!(
            snapshot_bytes(&witness),
            snapshot_bytes(&cache),
            "final state diverged from serial replay (seed={seed})"
        );
    }
}

// ---------------------------------------------------------------------
// Test 3 — router single-flight admission under every merge order of
// two tenant streams per family. The projection (families, campaigns,
// joins) must be identical across all seeds: exactly one campaign per
// family, every other miss joins it.
// ---------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "autotune-race-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mini_spec(name: &str, seed: u64) -> CampaignSpec {
    CampaignSpec::minimal(name.to_string(), SystemKind::Redis, 4, seed)
}

#[test]
fn single_flight_admission_is_schedule_invariant() {
    let router_config = RouterConfig {
        cache: tight_cache(),
        journal_hits: true,
    };
    let mut projections: Vec<String> = Vec::new();
    for seed in seeds() {
        // Three families × two tenants × three requests each, merged in
        // a seeded order (the router API is &mut self, so the adversary
        // here is the arrival order, not thread scheduling).
        let mut arrivals: Vec<(usize, u64)> = Vec::new();
        for fam in 0..3 {
            for tenant in 0..2u64 {
                for _ in 0..3 {
                    arrivals.push((fam, tenant));
                }
            }
        }
        shuffle(&mut arrivals, seed);
        let dir = temp_dir("single-flight");
        let mut router = TenantRouter::create(&dir, 1, WalConfig::default(), router_config.clone())
            .expect("create router");
        let mut admitted: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut joined: BTreeMap<u64, u64> = BTreeMap::new();
        for &(fam, tenant) in &arrivals {
            let features = feat(fam, tenant);
            let spec = mini_spec(&format!("f{fam}t{tenant}"), 7);
            match router.lookup(&features, &spec).expect("router lookup") {
                RouterLookup::Miss { campaign, enqueued } => {
                    let fams = router.cache().clusters();
                    // All tenants of a family must map to one cluster.
                    assert!(fams.len() as u64 <= 3, "family split (seed={seed})");
                    if enqueued {
                        admitted.entry(fam as u64).or_default().push(campaign);
                    } else {
                        let owners = admitted.get(&(fam as u64)).expect("join before admit");
                        assert_eq!(owners.as_slice(), &[campaign], "joined wrong campaign");
                        *joined.entry(fam as u64).or_default() += 1;
                    }
                }
                RouterLookup::Hit(_) => panic!("no backfill ran; hits impossible (seed={seed})"),
            }
        }
        for (fam, owners) in &admitted {
            assert_eq!(
                owners.len(),
                1,
                "family {fam} admitted {} campaigns (seed={seed})",
                owners.len()
            );
        }
        assert_eq!(router.registry().fleet_stats().n_campaigns, 3);
        // Canonical projection: per-family admit/join counts (campaign
        // ids are assignment-order-dependent, so they are projected out).
        let proj = format!(
            "admits={:?} joins={joined:?}",
            admitted.keys().collect::<Vec<_>>()
        );
        projections.push(proj);
        let _ = std::fs::remove_dir_all(&dir);
    }
    projections.dedup();
    assert_eq!(
        projections.len(),
        1,
        "single-flight projection varied across seeds: {projections:?}"
    );
}

// ---------------------------------------------------------------------
// Test 4 — ungated stress: real concurrency on the read path while a
// writer backfills. Nothing here is schedule-deterministic; the checks
// are invariants: no panic, no poisoned lock, no torn value (every hit
// is a (family, cost) pair some insert actually wrote), coherent
// counters.
// ---------------------------------------------------------------------

#[test]
fn ungated_readers_never_observe_torn_values() {
    let cache = ShardedCache::new(tight_cache());
    seed_families(&cache);
    let lookups_done = AtomicU64::new(0);
    std::thread::scope(|s| {
        let cache = &cache;
        let lookups_done = &lookups_done;
        s.spawn(move || {
            for op in gen_ops(0xD00D, 400) {
                if matches!(op, Op::Insert { .. }) {
                    apply(cache, &op);
                }
            }
        });
        for r in 0..3u64 {
            s.spawn(move || {
                for i in 0..400u64 {
                    let h = splitmix(r ^ i.wrapping_mul(0x5DEECE66D));
                    let fam = (h % FAMILIES as u64) as usize;
                    let j = (h >> 8) % 5;
                    if let CacheLookup::Hit(hit) = cache.lookup(&feat(fam, j)) {
                        assert_eq!(hit.family, fam, "hit routed to wrong family");
                        // Costs encode their family: cost in
                        // [fam*1000, fam*1000 + 6) for every insert of
                        // `fam`, so a torn/mismatched value is visible.
                        let base = (fam * 1000) as f64;
                        assert!(
                            hit.cost >= base && hit.cost < base + 6.0,
                            "torn value: family {fam} served cost {}",
                            hit.cost
                        );
                    }
                    lookups_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups_done.load(Ordering::Relaxed),
        "every lookup must count exactly once"
    );
}

//! Telemetry time-series emission (tutorial slide 90: "Data to Embed").
//!
//! Each trial emits a short multi-channel time series — CPU, memory, disk
//! and network utilization plus operation-mix counters — of the kind cloud
//! providers can collect without touching customer data. The
//! workload-identification crate builds embeddings from these.

use crate::Workload;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// One telemetry sample (one scrape interval).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySample {
    /// CPU utilization, 0-1.
    pub cpu: f64,
    /// Memory utilization, 0-1.
    pub mem: f64,
    /// Disk I/O utilization, 0-1.
    pub disk_io: f64,
    /// Network utilization, 0-1.
    pub net_io: f64,
    /// Operations per second served in this interval.
    pub ops: f64,
    /// Read share of the interval's operations, 0-1.
    pub read_share: f64,
    /// Scan share of the interval's operations, 0-1.
    pub scan_share: f64,
}

/// Number of samples emitted per trial.
pub(crate) const SAMPLES_PER_TRIAL: usize = 32;

/// Emits a telemetry series consistent with the workload's character and
/// the trial's utilization level.
pub(crate) fn emit(
    workload: &Workload,
    utilization: f64,
    throughput_ops: f64,
    rng: &mut dyn RngCore,
) -> Vec<TelemetrySample> {
    let mut rng = rng;
    let util = utilization.clamp(0.0, 1.0);
    // Channel baselines follow the workload family: scans hammer disk,
    // writes add I/O, hot caches barely touch the network, etc.
    let disk_base =
        (0.15 + 0.7 * workload.scan_fraction + 0.4 * workload.write_fraction()).min(1.0) * util;
    let net_base = (0.2 + 0.5 * (1.0 - workload.scan_fraction)) * util;
    let mem_base = 0.3 + 0.5 * (workload.skew * 0.3 + util * 0.7);
    (0..SAMPLES_PER_TRIAL)
        .map(|i| {
            let t = i as f64 / SAMPLES_PER_TRIAL as f64;
            // Mild periodic structure plus noise, so embeddings see both a
            // level and a shape per channel.
            let wave = 0.05 * (2.0 * std::f64::consts::PI * 3.0 * t).sin();
            let n = |rng: &mut dyn RngCore, scale: f64| scale * (rng.gen::<f64>() - 0.5);
            TelemetrySample {
                cpu: (util + wave + n(&mut rng, 0.06)).clamp(0.0, 1.0),
                mem: (mem_base + 0.1 * t + n(&mut rng, 0.04)).clamp(0.0, 1.0),
                disk_io: (disk_base + wave + n(&mut rng, 0.08)).clamp(0.0, 1.0),
                net_io: (net_base + n(&mut rng, 0.05)).clamp(0.0, 1.0),
                ops: (throughput_ops * (1.0 + wave + n(&mut rng, 0.05))).max(0.0),
                read_share: (workload.read_fraction + n(&mut rng, 0.04)).clamp(0.0, 1.0),
                scan_share: (workload.scan_fraction + n(&mut rng, 0.03)).clamp(0.0, 1.0),
            }
        })
        .collect()
}

/// Flattens a telemetry series into a fixed-length feature vector: per
/// channel, the mean and standard deviation. This is the "hand-rolled"
/// featurization that `autotune-wid` embeds further.
pub fn telemetry_features(series: &[TelemetrySample]) -> Vec<f64> {
    let channels: [&dyn Fn(&TelemetrySample) -> f64; 7] = [
        &|s| s.cpu,
        &|s| s.mem,
        &|s| s.disk_io,
        &|s| s.net_io,
        &|s| s.ops,
        &|s| s.read_share,
        &|s| s.scan_share,
    ];
    let mut features = Vec::with_capacity(channels.len() * 2);
    for ch in channels {
        let values: Vec<f64> = series.iter().map(ch).collect();
        features.push(autotune_linalg::stats::mean(&values));
        features.push(autotune_linalg::stats::std_dev(&values));
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn emit_produces_full_series_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Workload::ycsb_a(1000.0);
        let series = emit(&w, 0.6, 950.0, &mut rng);
        assert_eq!(series.len(), SAMPLES_PER_TRIAL);
        for s in &series {
            for v in [
                s.cpu,
                s.mem,
                s.disk_io,
                s.net_io,
                s.read_share,
                s.scan_share,
            ] {
                assert!((0.0..=1.0).contains(&v), "channel out of bounds: {v}");
            }
            assert!(s.ops >= 0.0);
        }
    }

    #[test]
    fn scan_heavy_workloads_show_more_disk() {
        let mut rng = StdRng::seed_from_u64(2);
        let scan = emit(&Workload::tpch(1.0), 0.6, 10.0, &mut rng);
        let point = emit(&Workload::ycsb_c(1000.0), 0.6, 950.0, &mut rng);
        let disk_mean = |s: &[TelemetrySample]| {
            autotune_linalg::stats::mean(&s.iter().map(|x| x.disk_io).collect::<Vec<_>>())
        };
        assert!(
            disk_mean(&scan) > disk_mean(&point) + 0.1,
            "TPC-H should be visibly more disk-bound"
        );
    }

    #[test]
    fn features_have_fixed_length_and_track_means() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Workload::ycsb_b(500.0);
        let series = emit(&w, 0.5, 480.0, &mut rng);
        let f = telemetry_features(&series);
        assert_eq!(f.len(), 14);
        // read_share mean (index 10) should be near the workload's 0.95.
        assert!((f[10] - 0.95).abs() < 0.05, "read_share mean {}", f[10]);
    }

    #[test]
    fn utilization_drives_cpu_channel() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Workload::ycsb_a(1000.0);
        let lo = emit(&w, 0.2, 500.0, &mut rng);
        let hi = emit(&w, 0.9, 500.0, &mut rng);
        let cpu_mean = |s: &[TelemetrySample]| {
            autotune_linalg::stats::mean(&s.iter().map(|x| x.cpu).collect::<Vec<_>>())
        };
        assert!(cpu_mean(&hi) > cpu_mean(&lo) + 0.4);
    }
}

//! The typed records flowing through the executor: what a source asks to
//! run ([`TrialRequest`]), what a measurement produced ([`Measurement`]),
//! what a completed trial looks like to the source ([`TrialOutcome`]),
//! and the event stream a campaign emits ([`TrialEvent`]).

use crate::trial::nan_as_null;
use crate::TrialStatus;
use autotune_sim::{FailureKind, TelemetrySample, Workload};
use autotune_space::Config;
use serde::{Deserialize, Serialize};

/// A trial a [`super::TrialSource`] wants executed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialRequest {
    /// The configuration to evaluate.
    pub config: Config,
    /// Fidelity annotation recorded on the trial (1.0 = full fidelity).
    pub fidelity: f64,
    /// Workload override (multi-fidelity rungs, online schedules); `None`
    /// runs the target's own workload.
    pub workload: Option<Workload>,
    /// Pin the trial to a specific machine of the noise fleet.
    pub machine_id: Option<usize>,
}

impl TrialRequest {
    /// A plain full-fidelity request on the target's own workload.
    pub fn new(config: Config) -> Self {
        TrialRequest {
            config,
            fidelity: 1.0,
            workload: None,
            machine_id: None,
        }
    }
}

/// What one measurement produced, before and after the middleware chain
/// transforms it (early-abort censoring adjusts `cost`/`elapsed_s` and
/// sets `aborted`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Scalar cost (NaN = crashed). JSON has no NaN, so crashes
    /// serialize as `null` and round-trip back to NaN.
    #[serde(with = "nan_as_null")]
    pub cost: f64,
    /// Benchmark seconds charged for the trial.
    pub elapsed_s: f64,
    /// Machine the trial landed on, when a noise fleet is attached.
    pub machine_id: Option<usize>,
    /// Telemetry stream of the run (empty for aggregate noise strategies).
    pub telemetry: Vec<TelemetrySample>,
    /// Set by censoring middleware when the trial was cut short.
    pub aborted: bool,
    /// Benchmark seconds shaved off by censoring middleware.
    pub saved_s: f64,
    /// Fault annotation: a deterministic config crash reported by the
    /// target, or the fault a [`autotune_sim::FaultPlan`] injected into
    /// this attempt. Stragglers and corruptions keep their (suspect)
    /// measurement; the transient kinds carry a NaN cost.
    pub fault: Option<FailureKind>,
    /// Position of the target's temporal-drift clock immediately after
    /// this measurement (0 when unstamped, e.g. legacy logs). Replaying
    /// a *partial* event log uses it to fast-forward the fresh target to
    /// exactly where the recorded history ends, so live measurement can
    /// take over mid-tick on the original drift trajectory.
    #[serde(default)]
    pub clock: u64,
}

impl Measurement {
    /// Wraps a raw target evaluation.
    pub fn from_eval(e: crate::target::Evaluation) -> Self {
        Measurement {
            cost: e.cost,
            elapsed_s: e.result.elapsed_s,
            machine_id: e.machine_id,
            telemetry: e.result.telemetry,
            aborted: false,
            saved_s: 0.0,
            fault: e.failure,
            clock: 0,
        }
    }
}

/// A finalized trial as reported back to the [`super::TrialSource`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Trial id within the campaign (dispatch order).
    pub id: u64,
    /// The evaluated configuration.
    pub config: Config,
    /// Recorded cost (NaN = crashed, censored when aborted; NaN
    /// serializes as JSON `null`).
    #[serde(with = "nan_as_null")]
    pub cost: f64,
    /// Cost fed to the learner. Defaults to `cost`; crash-penalty
    /// middleware may replace NaN with a large finite penalty.
    #[serde(with = "nan_as_null")]
    pub learn_cost: f64,
    /// Benchmark seconds charged.
    pub elapsed_s: f64,
    /// Fidelity the trial ran at.
    pub fidelity: f64,
    /// Machine assignment, if any.
    pub machine_id: Option<usize>,
    /// Outcome status.
    pub status: TrialStatus,
    /// Retry attempts consumed before this outcome (0 = first try).
    pub retries: u32,
    /// Fault annotation of the final attempt, if any.
    pub fault: Option<FailureKind>,
    /// Telemetry stream of the run.
    pub telemetry: Vec<TelemetrySample>,
}

/// The event stream a campaign emits, one entry per lifecycle transition.
#[derive(Debug, Clone)]
pub enum TrialEvent {
    /// A source proposed a configuration (before it starts running).
    Suggested {
        /// Trial id.
        id: u64,
        /// The proposed configuration.
        config: Config,
    },
    /// The trial began executing at the given virtual time.
    Started {
        /// Trial id.
        id: u64,
        /// Virtual-clock start time, seconds.
        at_s: f64,
        /// Machine the first attempt landed on, when a fleet is attached.
        machine_id: Option<usize>,
    },
    /// The trial completed normally.
    Finished {
        /// Trial id.
        id: u64,
        /// Its cost.
        cost: f64,
        /// Benchmark seconds charged.
        elapsed_s: f64,
    },
    /// The trial crashed the system under test.
    Crashed {
        /// Trial id.
        id: u64,
        /// Benchmark seconds charged before the crash.
        elapsed_s: f64,
    },
    /// The trial was cut short by censoring middleware.
    Aborted {
        /// Trial id.
        id: u64,
        /// The censored cost.
        cost: f64,
        /// Benchmark seconds charged up to the abort.
        elapsed_s: f64,
    },
    /// The trial was lost to infrastructure with every retry exhausted.
    FailedTransient {
        /// Trial id.
        id: u64,
        /// What finally took it down.
        kind: FailureKind,
        /// Benchmark seconds burned across all attempts.
        elapsed_s: f64,
    },
    /// An attempt failed transiently and the trial is being re-measured.
    Retried {
        /// Trial id.
        id: u64,
        /// The attempt about to run (1 = first retry).
        attempt: u32,
        /// Virtual-clock backoff before the new attempt, seconds.
        backoff_s: f64,
        /// Virtual-clock time at which the new attempt begins; the failed
        /// attempt ended and the backoff started at `at_s - backoff_s`.
        at_s: f64,
    },
    /// A machine's failure rate crossed the quarantine threshold; no new
    /// trials are steered to it until probation.
    Quarantined {
        /// The machine taken out of rotation.
        machine_id: usize,
    },
    /// A quarantined machine finished its cooldown and re-entered the
    /// rotation on probation.
    Released {
        /// The machine returning to rotation.
        machine_id: usize,
    },
    /// A configuration graduated to the next fidelity rung.
    Promoted {
        /// The promoted configuration.
        config: Config,
        /// The rung it enters (0-based).
        rung: usize,
    },
}

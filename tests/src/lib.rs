//! Cross-crate integration-test package. All tests live in `tests/tests/`
//! and exercise the public APIs of multiple workspace crates together.
//!
//! The library part holds shared fixtures so each test file doesn't carry
//! its own copy of the standard simulated targets.

use autotune::{Objective, Target};
use autotune_sim::{Environment, RedisSim, SparkSim, Workload};

/// The tutorial's running example: Redis P95 latency on a KV-cache
/// workload, medium VM.
pub fn redis_target() -> Target {
    Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    )
}

/// Spark on TPC-H SF-20, large cluster, minimizing elapsed time — trial
/// durations spread widely with the config, which parallel-scheduling
/// tests rely on.
pub fn spark_target() -> Target {
    Target::simulated(
        Box::new(SparkSim::new()),
        Workload::tpch(20.0),
        Environment::large(),
        Objective::MinimizeElapsed,
    )
}

//! Criterion microbenchmarks for the numerical substrate: the kernels
//! every tuning step pays for (Cholesky, GP fit/predict, forest fit,
//! acquisition maximization inputs).

use autotune_linalg::{Cholesky, Matrix};
use autotune_surrogate::{GaussianProcess, Matern52, RandomForest, Surrogate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn training_set(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum::<f64>())
        .collect();
    (xs, ys)
}

fn spd(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>() - 0.5);
    let mut m = a.matmul(&a.transpose()).expect("square product");
    m.add_diag(n as f64);
    m
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    for &n in &[32usize, 64, 128] {
        let m = spd(n, 1);
        group.bench_with_input(BenchmarkId::new("factor", n), &m, |b, m| {
            b.iter(|| Cholesky::new(m).expect("SPD"));
        });
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    for &n in &[25usize, 50, 100] {
        let (xs, ys) = training_set(n, 8, 2);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.4, 1.0)), 1e-6);
                gp.fit(&xs, &ys).expect("fits");
                gp
            });
        });
        let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.4, 1.0)), 1e-6);
        gp.fit(&xs, &ys).expect("fits");
        let query = vec![0.3; 8];
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| gp.predict(&query));
        });
    }
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_forest");
    for &n in &[50usize, 200] {
        let (xs, ys) = training_set(n, 8, 3);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                let mut rf = RandomForest::default_forest();
                rf.fit(&xs, &ys).expect("fits");
                rf
            });
        });
        let mut rf = RandomForest::default_forest();
        rf.fit(&xs, &ys).expect("fits");
        let query = vec![0.3; 8];
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| rf.predict(&query));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cholesky, bench_gp, bench_forest);
criterion_main!(benches);

//! Recursive-descent JSON parser producing a `Content` tree.

use serde::__private::Content;

use crate::Error;

pub(crate) fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

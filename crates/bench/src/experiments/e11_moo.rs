//! E11 (slide 58): multi-objective optimization — latency vs dollar cost
//! on the DBMS target via ParEGO scalarization. The deliverable is a
//! Pareto frontier; quality is measured by 2-D hypervolume against a
//! large-budget random-search reference front.

use crate::report::{f, Report};
use autotune::{Objective, Target};
use autotune_optimizer::moo::{MultiObservation, ParEgo, ParetoFront};
use autotune_optimizer::{NsgaConfig, NsgaII};
use autotune_sim::{DbmsSim, Environment, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates (latency_ms, cost_units*1000) for a config; the cost axis is
/// driven by how big a VM the config implicitly needs (buffer pool rent).
fn objectives(target: &Target, cfg: &autotune_space::Config, rng: &mut StdRng) -> Option<[f64; 2]> {
    let e = target.evaluate(cfg, rng);
    if !e.cost.is_finite() {
        return None;
    }
    // Cost model: the VM bill plus memory rent proportional to the pool.
    let pool = cfg.get_f64("buffer_pool_gb").unwrap_or(0.125);
    let cost = e.result.cost_units * 1000.0 + pool * 0.05;
    Some([e.cost, cost])
}

/// Runs the experiment.
pub fn run() -> Report {
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpcc(500.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    );
    // Crash placeholder: far beyond anything finite observed.
    let crash_obj = [1e6, 1e6];

    // ParEGO with 60 trials.
    let mut pe = ParEgo::new(target.space().clone(), 2);
    let mut rng = StdRng::seed_from_u64(1);
    let mut all_points: Vec<[f64; 2]> = Vec::new();
    for _ in 0..60 {
        let cfg = pe.suggest(&mut rng);
        if let Some(obj) = objectives(&target, &cfg, &mut rng) {
            all_points.push(obj);
            pe.observe(&cfg, &obj);
        } else {
            pe.observe(&cfg, &crash_obj);
        }
    }

    // Reference method: random search with 3x the budget.
    let mut random_front = ParetoFront::new();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..180 {
        let cfg = target.space().sample(&mut rng);
        if let Some(obj) = objectives(&target, &cfg, &mut rng) {
            all_points.push(obj);
            random_front.insert(MultiObservation {
                config: cfg,
                objectives: obj.to_vec(),
            });
        }
    }
    // NSGA-II at the same budget as ParEGO (60 trials).
    let mut nsga = NsgaII::new(target.space().clone(), 2, NsgaConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..60 {
        let cfg = nsga.suggest(&mut rng);
        match objectives(&target, &cfg, &mut rng) {
            Some(obj) => {
                all_points.push(obj);
                nsga.observe(&cfg, &obj);
            }
            None => nsga.observe(&cfg, &crash_obj),
        }
    }

    // Hypervolume reference: 10% beyond the worst finite observation on
    // each axis, shared by all fronts.
    let reference = (
        1.1 * all_points.iter().map(|p| p[0]).fold(0.0_f64, f64::max),
        1.1 * all_points.iter().map(|p| p[1]).fold(0.0_f64, f64::max),
    );
    let parego_hv = pe.front().hypervolume_2d(reference);
    let random_hv = random_front.hypervolume_2d(reference);
    let nsga_hv = nsga.front().hypervolume_2d(reference);

    let mut rows: Vec<Vec<String>> = pe
        .front()
        .members()
        .iter()
        .map(|m| {
            vec![
                format!("{} ms", f(m.objectives[0], 4)),
                format!("{} $m", f(m.objectives[1], 4)),
                m.config
                    .get_f64("buffer_pool_gb")
                    .map_or("-".into(), |v| format!("bp={v:.2}G")),
            ]
        })
        .collect();
    rows.sort();
    rows.push(vec![
        "ParEGO hypervolume".into(),
        f(parego_hv, 2),
        format!("front size {}", pe.front().len()),
    ]);
    rows.push(vec![
        "NSGA-II hypervolume".into(),
        f(nsga_hv, 2),
        format!("front size {}", nsga.front().len()),
    ]);
    rows.push(vec![
        "random(3x) hypervolume".into(),
        f(random_hv, 2),
        format!("front size {}", random_front.len()),
    ]);

    let ratio = parego_hv / random_hv.max(1e-9);
    let shape_holds = pe.front().len() >= 3 && ratio >= 0.9 && nsga_hv >= 0.8 * random_hv;
    Report {
        id: "E11",
        title: "Multi-objective: latency vs cost Pareto front (slide 58)",
        headers: vec!["latency", "cost", "note"],
        rows,
        paper_claim: "scalarized BO (ParEGO) recovers the latency/cost trade-off frontier",
        measured: format!(
            "ParEGO HV {} / NSGA-II HV {} vs 3x-budget random HV {} (ParEGO ratio {})",
            f(parego_hv, 2),
            f(nsga_hv, 2),
            f(random_hv, 2),
            f(ratio, 2)
        ),
        shape_holds,
    }
}

//! Online tuning algorithms (tutorial slides 75-84).
//!
//! Online tuning learns in real time, in production: an agent observes the
//! running system (its *state*/*context*), adjusts knobs (*actions*), and
//! receives performance feedback (*reward*). This crate implements the
//! algorithm families the tutorial covers:
//!
//! * [`QLearning`] / [`Sarsa`] — tabular value-based RL (CDBTune, QTune
//!   lineage, slides 79-80);
//! * [`ActorCritic`] — policy gradient with a linear value baseline
//!   (slide 79's actor-critic diagram);
//! * [`LinUcb`] and [`ContextualEpsilonGreedy`] — contextual bandits for
//!   workload-aware tuning (slides 82-83);
//! * [`HybridBandit`] — OPPerTune-style AutoScoper: a context-splitting
//!   tree with an independent bandit per leaf (slide 83);
//! * [`SafeTuner`] — guardrailed exploration that reverts and blacklists
//!   configurations that regress performance (slide 84).
//!
//! Reward convention: RL components **maximize reward** (the standard RL
//! convention, opposite of the optimizer crate's cost minimization). The
//! [`SafeTuner`] wrapper, which speaks to system metrics, uses cost and
//! documents it.

mod actor_critic;
mod contextual;
mod hybrid;
mod qlearning;
mod safe;

pub use actor_critic::{ActorCritic, ActorCriticConfig};
pub use contextual::{ContextualEpsilonGreedy, LinUcb};
pub use hybrid::{ContextKey, HybridBandit};
pub use qlearning::{QLearning, QLearningConfig, Sarsa};
pub use safe::{SafeDecision, SafeTuner, SafeTunerConfig};

/// Errors produced by online tuners.
#[derive(Debug, Clone, PartialEq)]
pub enum RlError {
    /// A state or action index was out of range.
    IndexOutOfRange {
        /// What was indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The allowed bound.
        bound: usize,
    },
    /// A feature vector had the wrong dimensionality.
    FeatureDimension {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl std::fmt::Display for RlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RlError::IndexOutOfRange { what, index, bound } => {
                write!(f, "{what} index {index} out of range (bound {bound})")
            }
            RlError::FeatureDimension { expected, actual } => {
                write!(f, "feature dimension {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RlError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, RlError>;

//! D4 clean fixture: `total_cmp` gives a total order — NaN sorts high
//! instead of panicking.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn max_score(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}

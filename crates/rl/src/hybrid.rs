//! OPPerTune-style hybrid bandit ("AutoScoper", tutorial slide 83).
//!
//! Production services see heterogeneous traffic: the right configuration
//! for `job_type=etl, rps=high` differs from `job_type=oltp, rps=low`.
//! The hybrid bandit *scopes* tuning by discrete context key — one
//! independent bandit per observed context — so each traffic class
//! converges to its own arm instead of averaging across classes.
//!
//! Cost convention: **minimize** (matches the underlying
//! [`autotune_optimizer::bandit::Bandit`]).

use autotune_optimizer::bandit::{Bandit, BanditPolicy};
use rand::Rng;
use std::collections::BTreeMap;

/// A discrete context key, e.g. `("etl", "rps_high")`.
///
/// Callers bucketize continuous signals (requests/sec, data size) into
/// bands before building the key; the tuner treats keys as opaque.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContextKey(pub Vec<String>);

impl ContextKey {
    /// Builds a key from string-ish parts.
    pub fn new<I, S>(parts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ContextKey(parts.into_iter().map(Into::into).collect())
    }
}

impl std::fmt::Display for ContextKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.join("/"))
    }
}

/// Context-scoped bandit: an independent [`Bandit`] per context key.
#[derive(Debug)]
pub struct HybridBandit {
    n_arms: usize,
    policy: BanditPolicy,
    scopes: BTreeMap<ContextKey, Bandit>,
    /// Fallback bandit that pools all traffic; consulted for brand-new
    /// contexts so they start from the global prior instead of uniform.
    global: Bandit,
}

impl HybridBandit {
    /// Creates a hybrid bandit over `n_arms` configurations.
    pub fn new(n_arms: usize, policy: BanditPolicy) -> Self {
        HybridBandit {
            n_arms,
            policy,
            scopes: BTreeMap::new(),
            global: Bandit::new(n_arms, policy),
        }
    }

    /// Number of distinct contexts observed so far.
    pub fn n_scopes(&self) -> usize {
        self.scopes.len()
    }

    /// Number of arms.
    pub fn n_arms(&self) -> usize {
        self.n_arms
    }

    /// Selects an arm for the given context.
    ///
    /// A context seen for the first time consults the pooled global bandit
    /// (warm start); afterwards its scoped bandit takes over.
    pub fn select(&mut self, context: &ContextKey, rng: &mut (impl Rng + ?Sized)) -> usize {
        match self.scopes.get(context) {
            Some(b) if b.total_pulls() >= self.n_arms as u64 => b.select(rng),
            Some(b) => {
                // Young scope: mix scoped exploration with global knowledge.
                if b.total_pulls() == 0 && self.global.total_pulls() >= self.n_arms as u64 {
                    self.global.greedy_arm()
                } else {
                    b.select(rng)
                }
            }
            None => {
                self.scopes
                    .insert(context.clone(), Bandit::new(self.n_arms, self.policy));
                if self.global.total_pulls() >= self.n_arms as u64 {
                    self.global.greedy_arm()
                } else {
                    rng.gen_range(0..self.n_arms)
                }
            }
        }
    }

    /// Records the observed cost of `arm` under `context`.
    pub fn update(&mut self, context: &ContextKey, arm: usize, cost: f64) {
        self.scopes
            .entry(context.clone())
            .or_insert_with(|| Bandit::new(self.n_arms, self.policy))
            .update(arm, cost);
        self.global.update(arm, cost);
    }

    /// The currently-best arm for a context (global fallback when unseen).
    pub fn greedy(&self, context: &ContextKey) -> usize {
        self.scopes
            .get(context)
            .filter(|b| b.total_pulls() > 0)
            .map(|b| b.greedy_arm())
            .unwrap_or_else(|| self.global.greedy_arm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two traffic classes with opposite best arms.
    fn cost(ctx: &ContextKey, arm: usize, rng: &mut StdRng) -> f64 {
        let base = match (ctx.0[0].as_str(), arm) {
            ("oltp", 0) => 1.0,
            ("oltp", _) => 3.0,
            ("etl", 1) => 1.0,
            ("etl", _) => 3.0,
            _ => 2.0,
        };
        base + 0.2 * rng.gen::<f64>()
    }

    #[test]
    fn scopes_learn_opposite_arms() {
        let mut hb = HybridBandit::new(2, BanditPolicy::Ucb { c: 1.0 });
        let mut rng = StdRng::seed_from_u64(1);
        let oltp = ContextKey::new(["oltp"]);
        let etl = ContextKey::new(["etl"]);
        for step in 0..400 {
            let ctx = if step % 2 == 0 { &oltp } else { &etl };
            let arm = hb.select(ctx, &mut rng);
            let c = cost(ctx, arm, &mut rng);
            hb.update(ctx, arm, c);
        }
        assert_eq!(hb.greedy(&oltp), 0);
        assert_eq!(hb.greedy(&etl), 1);
        assert_eq!(hb.n_scopes(), 2);
    }

    #[test]
    fn a_single_pooled_bandit_would_average() {
        // Sanity check of the motivation: a global bandit alternating
        // between contexts cannot satisfy both, so at least one context
        // gets a suboptimal greedy arm.
        let mut global = Bandit::new(2, BanditPolicy::Ucb { c: 1.0 });
        let mut rng = StdRng::seed_from_u64(2);
        let oltp = ContextKey::new(["oltp"]);
        let etl = ContextKey::new(["etl"]);
        for step in 0..400 {
            let ctx = if step % 2 == 0 { &oltp } else { &etl };
            let arm = global.select(&mut rng);
            global.update(arm, cost(ctx, arm, &mut rng));
        }
        // The pooled bandit's single greedy arm is wrong for one of the two
        // contexts by construction (costs are symmetric).
        let g = global.greedy_arm();
        let wrong_for = if g == 0 { "etl" } else { "oltp" };
        assert!(!wrong_for.is_empty());
    }

    #[test]
    fn new_context_warm_starts_from_global() {
        let mut hb = HybridBandit::new(2, BanditPolicy::Ucb { c: 1.0 });
        let mut rng = StdRng::seed_from_u64(3);
        let oltp = ContextKey::new(["oltp"]);
        // Train only on oltp (best arm 0).
        for _ in 0..100 {
            let arm = hb.select(&oltp, &mut rng);
            hb.update(&oltp, arm, cost(&oltp, arm, &mut rng));
        }
        // A brand-new context's first pick should follow the global best.
        let fresh = ContextKey::new(["oltp_v2"]);
        let first = hb.select(&fresh, &mut rng);
        assert_eq!(first, 0, "fresh context should inherit global greedy arm");
    }

    #[test]
    fn greedy_on_unseen_context_uses_global() {
        let mut hb = HybridBandit::new(2, BanditPolicy::Thompson);
        hb.update(&ContextKey::new(["a"]), 1, 0.5);
        hb.update(&ContextKey::new(["a"]), 0, 2.0);
        let unseen = ContextKey::new(["never"]);
        assert_eq!(hb.greedy(&unseen), 1);
    }

    #[test]
    fn context_key_display() {
        let k = ContextKey::new(["etl", "rps_high"]);
        assert_eq!(k.to_string(), "etl/rps_high");
    }
}

//! Workload fingerprints: the raw feature vector a workload leaves behind.

use autotune_sim::{telemetry_features, TelemetrySample};
use serde::{Deserialize, Serialize};

/// A workload's observable signature.
///
/// Combines the telemetry-channel statistics (always available, never
/// sensitive — slide 90) with the operation-mix counters a database can
/// expose without seeing user data (`# of inserts/updates/selects`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Flat feature vector.
    features: Vec<f64>,
}

impl Fingerprint {
    /// Builds a fingerprint from a telemetry series.
    pub fn from_telemetry(series: &[TelemetrySample]) -> Self {
        Fingerprint {
            features: telemetry_features(series),
        }
    }

    /// Builds a fingerprint from a raw feature vector (e.g. when features
    /// come from query logs rather than telemetry).
    pub fn from_features(features: Vec<f64>) -> Self {
        Fingerprint { features }
    }

    /// The feature vector.
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// Euclidean distance to another fingerprint.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn distance(&self, other: &Fingerprint) -> f64 {
        assert_eq!(self.dim(), other.dim(), "fingerprint dimension mismatch");
        autotune_linalg::squared_distance(&self.features, &other.features).sqrt()
    }

    /// Cosine similarity to another fingerprint (1 = identical direction).
    pub fn cosine_similarity(&self, other: &Fingerprint) -> f64 {
        assert_eq!(self.dim(), other.dim(), "fingerprint dimension mismatch");
        let dot = autotune_linalg::dot(&self.features, &other.features);
        let na = autotune_linalg::norm2(&self.features);
        let nb = autotune_linalg::norm2(&other.features);
        if na <= 0.0 || nb <= 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// RBF kernel similarity `exp(-d² / 2l²)` — the "kernel function"
    /// between workloads the tutorial mentions (slide 89).
    pub fn kernel_similarity(&self, other: &Fingerprint, lengthscale: f64) -> f64 {
        let d2 = autotune_linalg::squared_distance(&self.features, &other.features);
        (-d2 / (2.0 * lengthscale * lengthscale)).exp()
    }

    /// Averages several fingerprints (centroid of repeated observations of
    /// the same workload).
    pub fn mean_of(prints: &[Fingerprint]) -> Option<Fingerprint> {
        let first = prints.first()?;
        let d = first.dim();
        let mut acc = vec![0.0; d];
        for p in prints {
            assert_eq!(p.dim(), d, "fingerprint dimension mismatch");
            autotune_linalg::axpy(1.0, &p.features, &mut acc);
        }
        for a in acc.iter_mut() {
            *a /= prints.len() as f64;
        }
        Some(Fingerprint { features: acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::from_features(v.to_vec())
    }

    #[test]
    fn distance_is_a_metric() {
        let a = fp(&[0.0, 0.0]);
        let b = fp(&[3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = fp(&[1.0, 0.0]);
        let b = fp(&[2.0, 0.0]);
        let c = fp(&[0.0, 1.0]);
        let d = fp(&[-1.0, 0.0]);
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-12);
        assert!(a.cosine_similarity(&c).abs() < 1e-12);
        assert!((a.cosine_similarity(&d) + 1.0).abs() < 1e-12);
        assert_eq!(a.cosine_similarity(&fp(&[0.0, 0.0])), 0.0);
    }

    #[test]
    fn kernel_similarity_decays() {
        let a = fp(&[0.0]);
        assert!((a.kernel_similarity(&fp(&[0.0]), 1.0) - 1.0).abs() < 1e-12);
        let near = a.kernel_similarity(&fp(&[0.5]), 1.0);
        let far = a.kernel_similarity(&fp(&[3.0]), 1.0);
        assert!(near > far && far > 0.0);
    }

    #[test]
    fn mean_of_fingerprints() {
        let m = Fingerprint::mean_of(&[fp(&[0.0, 2.0]), fp(&[2.0, 4.0])]).unwrap();
        assert_eq!(m.features(), &[1.0, 3.0]);
        assert!(Fingerprint::mean_of(&[]).is_none());
    }

    #[test]
    fn from_telemetry_produces_14_features() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sim = autotune_sim::RedisSim::new();
        use autotune_sim::SimSystem;
        let r = sim.run_trial(
            &sim.space().default_config(),
            &autotune_sim::Workload::kv_cache(10_000.0),
            &autotune_sim::Environment::medium(),
            &mut rng,
        );
        let f = Fingerprint::from_telemetry(&r.telemetry);
        assert_eq!(f.dim(), 14);
    }
}
